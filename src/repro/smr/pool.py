"""The pool of candidate replicas available for inclusion.

§3.2: "there exists a large pool of m nodes among which at least 2n/3 are
honest nodes ... from which honest replicas will propose to add new nodes."
Every replica holds the same view of the pool (candidate ids in the same
order), which keeps the inclusion proposals of honest replicas consistent and
the deterministic ``choose`` function meaningful.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.common.errors import ConfigurationError
from repro.common.types import ReplicaId


class CandidatePool:
    """An ordered pool of candidate replica ids, consumed as replicas join."""

    def __init__(self, candidates: Sequence[ReplicaId]):
        self._candidates: List[ReplicaId] = list(dict.fromkeys(candidates))
        self._used: set = set()

    def __len__(self) -> int:
        return len(self.available())

    def available(self) -> List[ReplicaId]:
        """Candidates not yet included, in pool order."""
        return [c for c in self._candidates if c not in self._used]

    def take(self, count: int) -> List[ReplicaId]:
        """Return (without consuming) the next ``count`` available candidates.

        Mirrors ``pool.take(|cons-exclude|)`` in Alg. 1 line 41: the candidates
        are only *proposed*; they are consumed when the inclusion consensus
        decides (:meth:`mark_included`).
        """
        if count < 0:
            raise ConfigurationError("cannot take a negative number of candidates")
        return self.available()[:count]

    def mark_included(self, replicas: Iterable[ReplicaId]) -> None:
        """Consume candidates that the inclusion consensus decided to add."""
        for replica in replicas:
            self._used.add(replica)

    def contains(self, replica: ReplicaId) -> bool:
        """True when ``replica`` is an available candidate."""
        return replica in self._candidates and replica not in self._used

    @staticmethod
    def disjoint_from_committee(
        committee_size: int, pool_size: int
    ) -> "CandidatePool":
        """Create a pool of ``pool_size`` fresh ids after the initial committee."""
        if pool_size < 0:
            raise ConfigurationError("pool size cannot be negative")
        start = committee_size
        return CandidatePool(list(range(start, start + pool_size)))
