"""State machine replication layer: the base replica, ASMR and membership change."""

from repro.smr.replica import BaseReplica
from repro.smr.pool import CandidatePool
from repro.smr.membership import MembershipChange, MembershipOutcome
from repro.smr.asmr import ASMRReplica, InstanceRecord

__all__ = [
    "BaseReplica",
    "CandidatePool",
    "MembershipChange",
    "MembershipOutcome",
    "ASMRReplica",
    "InstanceRecord",
]
