"""Membership change — Algorithm 1 of the paper.

A membership change runs two consecutive consensus instances:

* the **exclusion consensus** decides a set of proofs of fraud (and hence a
  set of deceitful replicas to exclude).  It runs over the reduced committee
  ``C' = C \\ culprits(pofs)``: since at least ``ceil(n/3)`` deceitful replicas
  have already been identified before the change starts, the remaining
  deceitful ratio within ``C'`` is below one third and consensus is safe
  (Lemma .1 of the paper).
* the **inclusion consensus** decides which candidates from the pool replace
  the excluded replicas.  It runs over the updated committee ``C \\ excluded``
  and applies a deterministic ``choose`` function to the union of the decided
  proposals so that exactly ``|excluded|`` candidates join, picked evenly
  across proposals (Alg. 1 lines 41–48).

Implementation note (documented deviation): the paper lets replicas shrink
``C'`` *while* the exclusion consensus runs as new PoFs arrive (lines 23–27).
Here honest replicas fix ``C'`` from the PoFs they hold when the change starts
and keep re-broadcasting newly learnt PoFs; because PoFs are extracted from the
same pair of conflicting certificates exchanged all-to-all during
confirmation, honest replicas hold identical PoF sets in every scenario the
simulator exercises, so the fixed-committee run decides the same exclusions.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.common.types import ReplicaId
from repro.consensus.host import ProtocolHost
from repro.consensus.proofs import ProofOfFraud
from repro.consensus.sbc import SBCDecision, SetByzantineConsensus
from repro.network.topic import Topic, topic
from repro.smr.pool import CandidatePool


@dataclasses.dataclass
class MembershipOutcome:
    """Result of one completed membership change."""

    epoch: int
    excluded: List[ReplicaId]
    included: List[ReplicaId]
    exclusion_started_at: float
    exclusion_decided_at: float
    inclusion_decided_at: float

    @property
    def exclusion_duration(self) -> float:
        """Wall-clock (simulated) duration of the exclusion consensus."""
        return self.exclusion_decided_at - self.exclusion_started_at

    @property
    def inclusion_duration(self) -> float:
        """Wall-clock (simulated) duration of the inclusion consensus."""
        return self.inclusion_decided_at - self.exclusion_decided_at


def choose_included(
    count: int, decided_proposals: Sequence[Sequence[ReplicaId]]
) -> List[ReplicaId]:
    """The deterministic ``choose`` function of Alg. 1 line 44.

    Candidates are picked round-robin across the decided proposals (sorted for
    determinism) until ``count`` distinct candidates are selected, which
    distributes inclusions as evenly as possible across decisions.
    """
    ordered_proposals = [list(p) for p in sorted(decided_proposals, key=list)]
    chosen: List[ReplicaId] = []
    seen: Set[ReplicaId] = set()
    index = 0
    while len(chosen) < count:
        progressed = False
        for proposal in ordered_proposals:
            if index < len(proposal):
                candidate = proposal[index]
                progressed = True
                if candidate not in seen:
                    seen.add(candidate)
                    chosen.append(candidate)
                    if len(chosen) == count:
                        break
        if not progressed:
            break
        index += 1
    return chosen


class _RestrictedHost(ProtocolHost):
    """A host view restricted to the exclusion committee ``C'``.

    Thresholds (quorum sizes) inside the exclusion consensus must be computed
    over ``C'``, not over the full committee ``C`` — that is what makes the
    exclusion consensus safe despite ``d >= n/3`` (Lemma .1).
    """

    def __init__(self, base: ProtocolHost, committee: Iterable[ReplicaId]):
        self._base = base
        self._committee = sorted(committee)
        self.telemetry = base.telemetry

    @property
    def replica_id(self) -> ReplicaId:
        return self._base.replica_id

    def committee(self) -> Sequence[ReplicaId]:
        return list(self._committee)

    @property
    def now(self) -> float:
        return self._base.now

    def schedule(self, delay: float, callback) -> int:
        return self._base.schedule(delay, callback)

    def sign(self, payload: Any):
        return self._base.sign(payload)

    def verify(self, payload: Any, signed) -> bool:
        return self._base.verify(payload, signed)

    @property
    def verify_digest(self):
        # Delegated as an attribute so a base host without the digest-first
        # entry point keeps this host without it too (getattr discovery).
        return getattr(self._base, "verify_digest")

    @property
    def verification_token(self):
        return getattr(self._base, "verification_token", None)

    def emit(self, protocol, kind, body, recipients=None):
        targets = list(recipients) if recipients is not None else list(self._committee)
        self._base.emit(protocol, kind, body, recipients=targets)

    def emit_to(self, recipient, protocol, kind, body):
        self._base.emit_to(recipient, protocol, kind, body)

    def component_decided(self, protocol, decision):
        self._base.component_decided(protocol, decision)


class MembershipChange:
    """One epoch of exclusion + inclusion consensus at a single replica."""

    def __init__(
        self,
        host: ProtocolHost,
        epoch: int,
        committee: Sequence[ReplicaId],
        pofs: Dict[ReplicaId, ProofOfFraud],
        pool: CandidatePool,
        on_complete: Callable[[MembershipOutcome], None],
    ):
        self.host = host
        self.epoch = epoch
        self.initial_committee = sorted(committee)
        self.pofs = dict(pofs)
        self.pool = pool
        self.on_complete = on_complete
        self.started_at = host.now
        self.exclusion_decided_at: Optional[float] = None
        self.outcome: Optional[MembershipOutcome] = None
        self.excluded: List[ReplicaId] = []
        self.included: List[ReplicaId] = []

        # C' = C \ culprits already identified locally (Alg. 1 line 20).
        self.exclusion_committee = [
            replica for replica in self.initial_committee if replica not in self.pofs
        ]
        self._exclusion_host = _RestrictedHost(host, self.exclusion_committee)
        self.exclusion = SetByzantineConsensus(
            host=self._exclusion_host,
            instance=epoch,
            on_decide=self._on_exclusion_decided,
            proposal_validator=self._validate_exclusion_proposal,
            protocol_prefix=topic("excl"),
        )
        self.inclusion: Optional[SetByzantineConsensus] = None
        self._inclusion_host: Optional[_RestrictedHost] = None

    # -- routing -----------------------------------------------------------------

    def owns_topic(self, message_topic: Topic) -> bool:
        """True when ``message_topic`` belongs to this membership change epoch."""
        if self.exclusion.owns_topic(message_topic):
            return True
        return self.inclusion is not None and self.inclusion.owns_topic(message_topic)

    def handle(self, message_topic: Topic, sender: ReplicaId, kind: str, body: Dict[str, Any]) -> None:
        """Route messages to the exclusion or inclusion consensus."""
        if self.exclusion.owns_topic(message_topic):
            self.exclusion.handle(message_topic, sender, kind, body)
        elif self.inclusion is not None and self.inclusion.owns_topic(message_topic):
            self.inclusion.handle(message_topic, sender, kind, body)

    # -- exclusion consensus -------------------------------------------------------

    def start(self) -> None:
        """Propose this replica's PoF set to the exclusion consensus."""
        proposal = [pof.to_payload() for _, pof in sorted(self.pofs.items())]
        self.exclusion.propose(proposal)

    def _validate_exclusion_proposal(self, proposer: ReplicaId, value: Any) -> bool:
        """Exclusion proposals must be lists of valid PoFs on current members."""
        if not isinstance(value, list) or not value:
            return False
        for payload in value:
            try:
                pof = ProofOfFraud.from_payload(payload)
            except (KeyError, TypeError, ValueError):
                return False
            if not pof.verify(self.host):
                return False
            if pof.culprit not in self.initial_committee:
                return False
        return True

    def _on_exclusion_decided(self, decision: SBCDecision) -> None:
        self.exclusion_decided_at = self.host.now
        telemetry = self.host.telemetry
        if telemetry is not None:
            telemetry.histogram("membership.exclusion_s").observe(
                self.exclusion_decided_at - self.started_at
            )
        culprit_set: Set[ReplicaId] = set()
        for payload_list in decision.decided_payloads():
            if not isinstance(payload_list, list):
                # Adopted-unvalidated slots (SBCDecision.unvalidated_slots)
                # may carry arbitrary shapes; PoFs are re-verified below.
                continue
            for payload in payload_list:
                try:
                    pof = ProofOfFraud.from_payload(payload)
                except (KeyError, TypeError, ValueError):
                    continue
                if pof.verify(self.host) and pof.culprit in self.initial_committee:
                    culprit_set.add(pof.culprit)
                    self.pofs.setdefault(pof.culprit, pof)
        self.excluded = sorted(culprit_set)
        self._start_inclusion()

    # -- inclusion consensus -----------------------------------------------------------

    def _start_inclusion(self) -> None:
        updated_committee = [
            replica for replica in self.initial_committee if replica not in self.excluded
        ]
        self._inclusion_host = _RestrictedHost(self.host, updated_committee)
        self.inclusion = SetByzantineConsensus(
            host=self._inclusion_host,
            instance=self.epoch,
            on_decide=self._on_inclusion_decided,
            proposal_validator=self._validate_inclusion_proposal,
            protocol_prefix=topic("incl"),
        )
        proposal = self.pool.take(len(self.excluded))
        self.inclusion.propose(list(proposal))

    def _validate_inclusion_proposal(self, proposer: ReplicaId, value: Any) -> bool:
        """Inclusion proposals must be lists of available pool candidates."""
        if not isinstance(value, list):
            return False
        if len(value) > max(len(self.excluded), len(self.initial_committee)):
            return False
        return all(isinstance(candidate, int) for candidate in value)

    def _on_inclusion_decided(self, decision: SBCDecision) -> None:
        # Re-screen shape: adopted-unvalidated slots bypass the proposal
        # validator, and choose_included must only ever see candidate ids.
        decided_lists = [
            [candidate for candidate in p if isinstance(candidate, int)]
            for p in decision.decided_payloads()
            if isinstance(p, list)
        ]
        self.included = choose_included(len(self.excluded), decided_lists)
        self.pool.mark_included(self.included)
        assert self.exclusion_decided_at is not None
        telemetry = self.host.telemetry
        if telemetry is not None:
            telemetry.histogram("membership.inclusion_s").observe(
                self.host.now - self.exclusion_decided_at
            )
            telemetry.counter("membership.excluded_replicas").inc(len(self.excluded))
            telemetry.counter("membership.included_replicas").inc(len(self.included))
        self.outcome = MembershipOutcome(
            epoch=self.epoch,
            excluded=list(self.excluded),
            included=list(self.included),
            exclusion_started_at=self.started_at,
            exclusion_decided_at=self.exclusion_decided_at,
            inclusion_decided_at=self.host.now,
        )
        self.on_complete(self.outcome)
