"""The base replica: a simulated process hosting protocol components.

A :class:`BaseReplica` is both a :class:`~repro.network.simulator.Process`
(it receives messages from the simulator) and a
:class:`~repro.consensus.host.ProtocolHost` (components use it for identity,
signing, verification and emission).  Incoming messages are routed to the
component that owns the message's protocol name.

The emission path carries the hook where deceitful behaviour plugs in: when an
:class:`~repro.adversary.behaviors.AttackStrategy` is installed, outgoing
broadcasts pass through it and may be rewritten per partition (equivocation).
Honest replicas have no strategy and broadcast uniformly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Protocol, Sequence

from repro.common.types import FaultKind, ReplicaId
from repro.consensus.host import ProtocolHost
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SignedPayload, Signer
from repro.network.message import Message
from repro.network.simulator import Process


class ProtocolComponent(Protocol):
    """Anything that can own protocol names and handle their messages."""

    def owns_protocol(self, protocol: str) -> bool:
        ...

    def handle(self, protocol: str, sender: ReplicaId, kind: str, body: Dict[str, Any]) -> None:
        ...


class BaseReplica(Process, ProtocolHost):
    """A replica process that dispatches messages to protocol components."""

    def __init__(
        self,
        replica_id: ReplicaId,
        committee: Sequence[ReplicaId],
        signer: Signer,
        registry: KeyRegistry,
        fault: FaultKind = FaultKind.HONEST,
    ):
        Process.__init__(self, replica_id)
        self._committee: List[ReplicaId] = sorted(committee)
        self._signer = signer
        self._registry = registry
        self.fault = fault
        self.attack_strategy: Optional[Any] = None
        self._components: List[ProtocolComponent] = []
        # Count of messages this replica chose to ignore (unknown protocol).
        self.unrouted_messages = 0

    # -- ProtocolHost: identity and committee ------------------------------------

    @property
    def replica_id(self) -> ReplicaId:  # type: ignore[override]
        return self._replica_id

    @replica_id.setter
    def replica_id(self, value: ReplicaId) -> None:
        self._replica_id = value

    def committee(self) -> Sequence[ReplicaId]:
        return list(self._committee)

    def committee_size(self) -> int:
        return len(self._committee)

    def update_committee(self, committee: Iterable[ReplicaId]) -> None:
        """Replace this replica's committee view (membership changes)."""
        self._committee = sorted(committee)

    # -- ProtocolHost: crypto ------------------------------------------------------

    def sign(self, payload: Any) -> SignedPayload:
        return self._signer.sign(payload)

    def verify(self, payload: Any, signed: SignedPayload) -> bool:
        return self._registry.verify(payload, signed)

    @property
    def registry(self) -> KeyRegistry:
        """The PKI shared by the deployment."""
        return self._registry

    # -- ProtocolHost: time ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        return self.set_timer(delay, callback)

    # -- ProtocolHost: emission ---------------------------------------------------------

    def emit(
        self,
        protocol: str,
        kind: str,
        body: Dict[str, Any],
        recipients: Optional[Iterable[ReplicaId]] = None,
    ) -> None:
        targets = list(recipients) if recipients is not None else list(self._committee)
        if self.attack_strategy is not None:
            handled = self.attack_strategy.rewrite_broadcast(
                replica=self, protocol=protocol, kind=kind, body=body, recipients=targets
            )
            if handled:
                return
        self.broadcast(protocol, kind, body, recipients=targets)

    def emit_to(self, recipient: ReplicaId, protocol: str, kind: str, body: Dict[str, Any]) -> None:
        self.send_to(recipient, protocol, kind, body)

    def component_decided(self, protocol: str, decision: Any) -> None:
        """Components deliver decisions through dedicated callbacks instead."""

    # -- component routing ------------------------------------------------------------------

    def register_component(self, component: ProtocolComponent) -> None:
        """Add a component to the routing table (checked in registration order)."""
        self._components.append(component)

    def unregister_component(self, component: ProtocolComponent) -> None:
        """Remove a component from the routing table."""
        if component in self._components:
            self._components.remove(component)

    def route(self, protocol: str, sender: ReplicaId, kind: str, body: Dict[str, Any]) -> bool:
        """Route a message to the owning component; returns False when unowned."""
        for component in self._components:
            if component.owns_protocol(protocol):
                component.handle(protocol, sender, kind, body)
                return True
        return False

    def on_message(self, message: Message) -> None:
        if self.fault is FaultKind.BENIGN:
            # Benign replicas commit omission-style faults: they stay mute and
            # ignore the protocol entirely (§3.2 "benign fault").
            return
        if self.attack_strategy is not None and not self.attack_strategy.filter_incoming(
            self, message
        ):
            return
        if not self.route(message.protocol, message.sender, message.kind, message.body):
            self.unrouted_messages += 1
            self.on_unrouted(message)

    def on_unrouted(self, message: Message) -> None:
        """Hook for subclasses that create components lazily (e.g. new instances)."""
