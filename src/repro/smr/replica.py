"""The base replica: a simulated process hosting protocol components.

A :class:`BaseReplica` is both a :class:`~repro.network.router.RoutedProcess`
(it receives messages from the simulator and dispatches them through its
:class:`~repro.network.router.Router`) and a
:class:`~repro.consensus.host.ProtocolHost` (components use it for identity,
signing, verification and emission).  Components register a handler per topic
prefix — e.g. one Set Byzantine Consensus instance owns ``("sbc", epoch,
instance)`` — and incoming messages reach them in O(topic depth) dict lookups.

The emission path carries the hook where deceitful behaviour plugs in: when an
:class:`~repro.adversary.behaviors.AttackStrategy` is installed, outgoing
broadcasts pass through it and may be rewritten per partition (equivocation).
Honest replicas have no strategy and broadcast uniformly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.common.types import FaultKind, ReplicaId
from repro.consensus.host import ProtocolHost
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SignedPayload, Signer
from repro.network.message import Message
from repro.network.router import RoutedProcess
from repro.network.topic import Topic, TopicLike


class BaseReplica(RoutedProcess, ProtocolHost):
    """A replica process that dispatches messages to registered topic handlers."""

    def __init__(
        self,
        replica_id: ReplicaId,
        committee: Sequence[ReplicaId],
        signer: Signer,
        registry: KeyRegistry,
        fault: FaultKind = FaultKind.HONEST,
    ):
        RoutedProcess.__init__(self, replica_id)
        self._committee: List[ReplicaId] = sorted(committee)
        self._signer = signer
        self._registry = registry
        self.fault = fault
        self.attack_strategy: Optional[Any] = None

    # -- ProtocolHost: identity and committee ------------------------------------

    @property
    def replica_id(self) -> ReplicaId:  # type: ignore[override]
        return self._replica_id

    @replica_id.setter
    def replica_id(self, value: ReplicaId) -> None:
        self._replica_id = value

    def committee(self) -> Sequence[ReplicaId]:
        return list(self._committee)

    def committee_size(self) -> int:
        return len(self._committee)

    def update_committee(self, committee: Iterable[ReplicaId]) -> None:
        """Replace this replica's committee view (membership changes)."""
        self._committee = sorted(committee)

    # -- ProtocolHost: crypto ------------------------------------------------------
    #
    # Each primitive runs inside its own profiler bucket when the obs plane is
    # active (``crypto.sign`` / ``crypto.verify``), so signing and
    # verification cost is attributed separately from protocol dispatch; the
    # ``obs is None`` fast path keeps disabled-mode overhead at one attribute
    # load per call.

    def sign(self, payload: Any) -> SignedPayload:
        obs = self.obs
        if obs is None:
            return self._signer.sign(payload)
        profiler = obs.profiler
        profiler.enter("crypto.sign")
        try:
            return self._signer.sign(payload)
        finally:
            profiler.exit()

    def verify(self, payload: Any, signed: SignedPayload) -> bool:
        obs = self.obs
        if obs is None:
            return self._registry.verify(payload, signed)
        profiler = obs.profiler
        profiler.enter("crypto.verify")
        try:
            return self._registry.verify(payload, signed)
        finally:
            profiler.exit()

    def verify_digest(self, digest: str, signed: SignedPayload) -> bool:
        obs = self.obs
        if obs is None:
            return self._registry.verify_digest(digest, signed)
        profiler = obs.profiler
        profiler.enter("crypto.verify")
        try:
            return self._registry.verify_digest(digest, signed)
        finally:
            profiler.exit()

    @property
    def verification_token(self) -> int:
        return self._registry.verification_token

    @property
    def registry(self) -> KeyRegistry:
        """The PKI shared by the deployment."""
        return self._registry

    # -- ProtocolHost: time ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        return self.set_timer(delay, callback)

    # -- ProtocolHost: emission ---------------------------------------------------------

    def emit(
        self,
        protocol: TopicLike,
        kind: str,
        body: Dict[str, Any],
        recipients: Optional[Iterable[ReplicaId]] = None,
    ) -> None:
        targets = list(recipients) if recipients is not None else self._committee
        if self.attack_strategy is not None:
            handled = self.attack_strategy.rewrite_broadcast(
                replica=self, protocol=protocol, kind=kind, body=body, recipients=targets
            )
            if handled:
                return
        self.broadcast(protocol, kind, body, recipients=targets)

    def emit_to(self, recipient: ReplicaId, protocol: TopicLike, kind: str, body: Dict[str, Any]) -> None:
        self.send_to(recipient, protocol, kind, body)

    def component_decided(self, protocol: TopicLike, decision: Any) -> None:
        """Components deliver decisions through dedicated callbacks instead."""

    # -- message routing ------------------------------------------------------------------

    def route(self, topic: Topic, sender: ReplicaId, kind: str, body: Dict[str, Any]) -> bool:
        """Dispatch a message through the router; returns False when unowned."""
        return self.router.dispatch(topic, sender, kind, body)

    def on_message(self, message: Message) -> None:
        if self.fault is FaultKind.BENIGN:
            # Benign replicas commit omission-style faults: they stay mute and
            # ignore the protocol entirely (§3.2 "benign fault").
            return
        if self.attack_strategy is not None and not self.attack_strategy.filter_incoming(
            self, message
        ):
            return
        RoutedProcess.on_message(self, message)

    def on_unrouted(self, message: Message) -> None:
        """Hook for subclasses that create handlers lazily (e.g. new instances)."""
