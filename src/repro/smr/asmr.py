"""ASMR — the Accountable State Machine Replication at the heart of ZLB.

Each replica runs the five phases of Figure 2 for every consensus index:

① **ASMR consensus** — one accountable SBC instance decides a set of proposals.
② **Confirmation** — the replica broadcasts its decision (digest, content and
   certificates) and waits for matching confirmations; a conflicting
   confirmation reveals a disagreement.
③ **Exclusion consensus** — once ``ceil(n/3)`` proofs of fraud are gathered
   the replica stops its pending consensus and runs the exclusion consensus of
   the membership change (Alg. 1).
④ **Inclusion consensus** — new candidates from the pool replace the excluded
   replicas.
⑤ **Reconciliation** — the decisions of the conflicting branches are merged
   (the Blockchain Manager turns this into a block merge, Alg. 2).

The replica is application-agnostic: the payment system plugs in through the
``proposal_factory`` (what to propose), ``proposal_validator`` (is a proposal
acceptable) and the ``on_commit`` / ``on_merge`` / ``on_exclude`` callbacks.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.config import ProtocolConfig
from repro.common.types import FaultKind, ReplicaId, recovery_threshold
from repro.consensus.certificates import Certificate, certificate_from_payload
from repro.consensus.proofs import (
    GroupedVotes,
    ProofOfFraud,
    extract_pofs_from_grouped,
    group_votes,
    merge_pofs,
)
from repro.consensus.sbc import SBCDecision, SetByzantineConsensus
from repro.crypto.hashing import hash_payload
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signer
from repro.network.message import Message
from repro.network.topic import Topic, topic
from repro.smr.membership import MembershipChange, MembershipOutcome
from repro.smr.pool import CandidatePool
from repro.smr.replica import BaseReplica

#: Default assumed deceitful ratio used to size the confirmation quorum
#: (the paper requires messages from more than (delta + 1/3) * n replicas).
DEFAULT_CONFIRMATION_DELTA = 5.0 / 9.0

#: Bounded identity-keyed memos for the CONFIRM disagreement path.  CONFIRM
#: bodies cross the simulated wire *by reference*: every recipient dispatches
#: the same dict object, so parsing the carried certificates and hashing the
#: carried proposals once per broadcast (instead of once per recipient)
#: changes nothing but the host clock.  Entries pin the keyed object itself,
#: which keeps its ``id()`` stable for the lifetime of the cache entry;
#: clear-on-cap bounds memory on arbitrarily long runs.
_MEMO_MAX = 1 << 14
_CONFIRM_GROUPED: Dict[int, Tuple[Any, GroupedVotes]] = {}
_LOCAL_GROUPED: Dict[int, Tuple[Any, GroupedVotes]] = {}
_PROPOSAL_DIGESTS: Dict[int, Tuple[Any, str]] = {}


def _confirm_grouped_votes(body: Dict[str, Any]) -> GroupedVotes:
    """Votes carried by a CONFIRM body's certificates, parsed+grouped once."""
    key = id(body)
    hit = _CONFIRM_GROUPED.get(key)
    if hit is not None and hit[0] is body:
        return hit[1]
    votes: List[Any] = []
    for payload in list(body.get("binary_certificates", {}).values()) + list(
        body.get("rbc_certificates", {}).values()
    ):
        try:
            certificate = certificate_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            continue
        votes.extend(certificate.votes)
    if len(_CONFIRM_GROUPED) >= _MEMO_MAX:
        _CONFIRM_GROUPED.clear()
    grouped = group_votes(votes)
    _CONFIRM_GROUPED[key] = (body, grouped)
    return grouped


def _decision_grouped_votes(decision: Any) -> GroupedVotes:
    """The decision's justification votes grouped once per decision object."""
    key = id(decision)
    hit = _LOCAL_GROUPED.get(key)
    if hit is not None and hit[0] is decision:
        return hit[1]
    if len(_LOCAL_GROUPED) >= _MEMO_MAX:
        _LOCAL_GROUPED.clear()
    grouped = group_votes(decision.justification_votes)
    _LOCAL_GROUPED[key] = (decision, grouped)
    return grouped


def _proposal_digest(value: Any) -> str:
    """``hash_payload(value)`` memoised by object identity.

    Proposal payloads are immutable once broadcast and shared by reference
    between the local decision record and every CONFIRM that carries them.
    """
    key = id(value)
    hit = _PROPOSAL_DIGESTS.get(key)
    if hit is not None and hit[0] is value:
        return hit[1]
    digest = hash_payload(value)
    if len(_PROPOSAL_DIGESTS) >= _MEMO_MAX:
        _PROPOSAL_DIGESTS.clear()
    _PROPOSAL_DIGESTS[key] = (value, digest)
    return digest


@dataclasses.dataclass
class InstanceRecord:
    """Book-keeping for one consensus index at one replica."""

    instance: int
    epoch: int
    committee: Tuple[ReplicaId, ...]
    started_at: float
    decision: Optional[SBCDecision] = None
    decided_at: Optional[float] = None
    confirmed_at: Optional[float] = None
    aborted: bool = False
    # Digests decided by other replicas that conflict with ours.
    conflicting_digests: Set[str] = dataclasses.field(default_factory=set)
    # Slots on which some remote decision disagreed with ours.
    disagreeing_slots: Set[ReplicaId] = dataclasses.field(default_factory=set)
    matching_confirmations: Set[ReplicaId] = dataclasses.field(default_factory=set)

    @property
    def disagreed(self) -> bool:
        """True when at least one conflicting decision was observed."""
        return bool(self.conflicting_digests)


class ASMRReplica(BaseReplica):
    """A replica running accountable SMR with membership changes.

    Routing: every protocol layer registers a handler on the replica's
    hierarchical router at construction time —

    * ``("asmr", "confirm")`` / ``("asmr", "pofs")`` / ``("asmr", "catchup")``
      for the confirmation/accountability/catch-up phases;
    * ``("sbc",)`` as a fallback that lazily starts consensus instances other
      replicas already began (each started instance then registers its own,
      deeper ``("sbc", epoch, instance)`` prefix, shadowing the fallback);
    * ``("excl",)`` / ``("incl",)`` forwarding to the active membership change
      or buffering until one starts.
    """

    CONFIRM_TOPIC = topic("asmr", "confirm")
    POFS_TOPIC = topic("asmr", "pofs")
    CATCHUP_TOPIC = topic("asmr", "catchup")
    SBC_ROOT = topic("sbc")
    EXCLUSION_ROOT = topic("excl")
    INCLUSION_ROOT = topic("incl")

    def __init__(
        self,
        replica_id: ReplicaId,
        committee: Sequence[ReplicaId],
        signer: Signer,
        registry: KeyRegistry,
        pool: Optional[CandidatePool] = None,
        config: Optional[ProtocolConfig] = None,
        fault: FaultKind = FaultKind.HONEST,
        proposal_factory: Optional[Callable[[int], Any]] = None,
        proposal_validator: Optional[Callable[[ReplicaId, Any], bool]] = None,
        on_commit: Optional[Callable[[int, SBCDecision], None]] = None,
        on_merge: Optional[Callable[[int, Dict[ReplicaId, Any]], None]] = None,
        on_exclude: Optional[Callable[[List[ReplicaId]], None]] = None,
        standby: bool = False,
    ):
        super().__init__(replica_id, committee, signer, registry, fault=fault)
        self.config = config or ProtocolConfig()
        self.pool = pool or CandidatePool([])
        self.proposal_factory = proposal_factory or (
            lambda instance: {"instance": instance, "proposer": replica_id, "txs": []}
        )
        self.proposal_validator = proposal_validator
        self.on_commit = on_commit
        self.on_merge = on_merge
        self.on_exclude = on_exclude
        #: A standby replica belongs to the candidate pool: it stays passive
        #: until an inclusion consensus adds it to the committee.
        self.standby = standby

        self.epoch = 0
        self.target_instances = 0
        self.next_instance = 0
        self.instances: Dict[int, InstanceRecord] = {}
        self._sbc: Dict[int, SetByzantineConsensus] = {}
        self.pofs: Dict[ReplicaId, ProofOfFraud] = {}
        self.detected_at: Optional[float] = None
        self.membership_change: Optional[MembershipChange] = None
        self.membership_outcomes: List[MembershipOutcome] = []
        self.excluded_replicas: Set[ReplicaId] = set()
        self.catchup_completed_at: Optional[float] = None
        self.catchup_blocks_verified = 0
        self._pending_confirms: Dict[int, List[Tuple[ReplicaId, Dict[str, Any]]]] = {}
        self._buffered_membership: List[Tuple[Topic, ReplicaId, str, Dict[str, Any]]] = []
        #: Open per-instance root spans (tracing enabled only).
        self._instance_spans: Dict[int, Any] = {}

        router = self.router
        router.register(self.CONFIRM_TOPIC, self._route_confirm)
        router.register(self.POFS_TOPIC, self._route_pofs)
        router.register(self.CATCHUP_TOPIC, self._route_catchup)
        router.register(self.SBC_ROOT, self._route_lazy_sbc)
        router.register(self.EXCLUSION_ROOT, self._route_membership)
        router.register(self.INCLUSION_ROOT, self._route_membership)

    # -- driving the replica -----------------------------------------------------------

    def on_start(self) -> None:
        if not self.standby and self.target_instances > 0:
            self._maybe_start_next_instance()

    def submit_instances(self, count: int) -> None:
        """Ask the replica to run ``count`` more consensus instances."""
        self.target_instances += count
        if self._transport is not None and not self.standby:
            self._maybe_start_next_instance()

    def _maybe_start_next_instance(self) -> None:
        if self.standby or self.fault is FaultKind.BENIGN:
            return
        if self.membership_change is not None and self.membership_change.outcome is None:
            return
        if self.next_instance >= self.target_instances:
            return
        previous = self.instances.get(self.next_instance - 1)
        if self.next_instance > 0 and previous is not None:
            if previous.decision is None and not previous.aborted:
                return
        instance = self.next_instance
        self.next_instance += 1
        self._start_instance(instance)

    def _start_instance(self, instance: int) -> None:
        record = InstanceRecord(
            instance=instance,
            epoch=self.epoch,
            committee=tuple(self.committee()),
            started_at=self.now,
        )
        self.instances[instance] = record
        tracing = self.tracing
        span = None
        if tracing is not None:
            # The instance's span: everything this replica proposes for the
            # instance — the INIT broadcast and the whole causal cascade it
            # triggers at other replicas — chains under it.  A proposer
            # starting cold opens a fresh trace; a lazy start (triggered by
            # another replica's message) chains under that delivery instead.
            tracer = tracing.tracer
            span = tracer.start_span(
                "asmr.instance",
                self.replica_id,
                self.now,
                epoch=self.epoch,
                instance=instance,
            )
            self._instance_spans[instance] = span
            previous = tracer.activate(span.ctx)
        try:
            component = SetByzantineConsensus(
                host=self,
                instance=instance,
                on_decide=self._on_sbc_decided,
                proposal_validator=self.proposal_validator,
                protocol_prefix=self.SBC_ROOT.child(self.epoch),
            )
            self._sbc[instance] = component
            # The instance's ("sbc", epoch, instance) prefix shadows the lazy
            # fallback registered at ("sbc",).
            self.router.register(component.topic, component.handle)
            if tracing is not None:
                tracing.tracer.event(
                    "sbc.propose", self.replica_id, self.now, instance=instance
                )
            component.propose(self.proposal_factory(instance))
        finally:
            if span is not None:
                tracing.tracer.restore(previous)

    # -- ① consensus ---------------------------------------------------------------------

    def _on_sbc_decided(self, decision: SBCDecision) -> None:
        record = self.instances.get(decision.instance)
        if record is None or record.decision is not None or record.aborted:
            return
        record.decision = decision
        record.decided_at = self.now
        if self.telemetry is not None:
            self.telemetry.histogram("asmr.instance_decide_s").observe(
                record.decided_at - record.started_at
            )
        tracing = self.tracing
        if tracing is not None:
            tracer = tracing.tracer
            tracer.event(
                "asmr.decide",
                self.replica_id,
                self.now,
                instance=decision.instance,
                digest=decision.digest,
            )
            span = self._instance_spans.pop(decision.instance, None)
            if span is not None:
                tracer.finish(span, self.now)
            if tracing.monitors is not None:
                tracing.monitors.on_decision(
                    self.replica_id,
                    record.epoch,
                    decision.instance,
                    decision.digest,
                    self.now,
                )
        if self.on_commit is not None:
            self.on_commit(decision.instance, decision)
        if self.config.confirmation_enabled:
            self._broadcast_confirmation(decision)
        self._process_pending_confirms(decision.instance)
        self._maybe_start_next_instance()

    # -- ② confirmation --------------------------------------------------------------------

    def confirmation_quorum(self) -> int:
        """Messages required to confirm: more than (delta + 1/3) * n, capped at n."""
        n = self.committee_size()
        needed = int((DEFAULT_CONFIRMATION_DELTA + 1.0 / 3.0) * n) + 1
        return min(n, needed)

    def _broadcast_confirmation(self, decision: SBCDecision) -> None:
        body = {
            "instance": decision.instance,
            "digest": decision.digest,
            "bitmask": dict(decision.bitmask),
            "proposals": dict(decision.proposals),
            "binary_certificates": {
                slot: cert.to_payload()
                for slot, cert in decision.binary_certificates.items()
            },
            "rbc_certificates": {
                slot: cert.to_payload()
                for slot, cert in decision.rbc_certificates.items()
            },
        }
        self.emit(self.CONFIRM_TOPIC.child(decision.instance), "CONFIRM", body)

    def _handle_confirm(self, sender: ReplicaId, body: Dict[str, Any]) -> None:
        instance = int(body.get("instance", -1))
        record = self.instances.get(instance)
        if record is None or record.decision is None:
            self._pending_confirms.setdefault(instance, []).append((sender, body))
            return
        local = record.decision
        remote_digest = body.get("digest")
        if remote_digest == local.digest:
            record.matching_confirmations.add(sender)
            if (
                record.confirmed_at is None
                and len(record.matching_confirmations) + 1 >= self.confirmation_quorum()
            ):
                record.confirmed_at = self.now
                if self.telemetry is not None and record.decided_at is not None:
                    self.telemetry.histogram("asmr.confirm_s").observe(
                        record.confirmed_at - record.decided_at
                    )
            return
        # Disagreement: another honest replica decided a different set.
        if self.telemetry is not None and not record.conflicting_digests:
            self.telemetry.counter("zlb.disagreement_instances").inc()
            self.telemetry.timeline("zlb.recovery").mark("disagreement", self.now)
        if not record.conflicting_digests:
            self.log.info(
                "disagreement on instance %s: remote %s decided %s, local %s",
                instance,
                sender,
                remote_digest,
                local.digest,
            )
            tracing = self.tracing
            if tracing is not None:
                tracing.tracer.event(
                    "asmr.disagreement",
                    self.replica_id,
                    self.now,
                    instance=instance,
                    remote=sender,
                )
                if tracing.monitors is not None:
                    tracing.monitors.on_disagreement(
                        self.replica_id, instance, self.now
                    )
        record.conflicting_digests.add(str(remote_digest))
        self._record_disagreeing_slots(record, body)
        self._reconcile(record, body)
        self._extract_pofs_from_confirm(record, body)

    def _process_pending_confirms(self, instance: int) -> None:
        for sender, body in self._pending_confirms.pop(instance, []):
            self._handle_confirm(sender, body)

    def _record_disagreeing_slots(self, record: InstanceRecord, body: Dict[str, Any]) -> None:
        local = record.decision
        assert local is not None
        remote_bitmask = body.get("bitmask", {})
        remote_proposals = body.get("proposals", {})
        slots = set(local.bitmask) | set(remote_bitmask)
        for slot in slots:
            local_bit = local.bitmask.get(slot, 0)
            remote_bit = remote_bitmask.get(slot, 0)
            if local_bit != remote_bit:
                record.disagreeing_slots.add(slot)
                continue
            if local_bit == 1 and remote_bit == 1:
                local_digest = _proposal_digest(local.proposals.get(slot))
                remote_digest = _proposal_digest(remote_proposals.get(slot))
                if local_digest != remote_digest:
                    record.disagreeing_slots.add(slot)

    # -- ⑤ reconciliation -------------------------------------------------------------------

    def _reconcile(self, record: InstanceRecord, body: Dict[str, Any]) -> None:
        remote_proposals = body.get("proposals", {})
        if not isinstance(remote_proposals, dict) or not remote_proposals:
            return
        if self.on_merge is not None:
            self.on_merge(record.instance, remote_proposals)

    # -- accountability: PoF extraction and gossip ----------------------------------------------

    def _extract_pofs_from_confirm(self, record: InstanceRecord, body: Dict[str, Any]) -> None:
        local = record.decision
        assert local is not None
        # Equivalent to extracting over justification votes + the body's
        # certificate votes, but each side is grouped once (per decision /
        # per broadcast body) and culprits that already have a PoF are
        # skipped — merge_pofs would drop them anyway.
        new_pofs = extract_pofs_from_grouped(
            _decision_grouped_votes(local),
            _confirm_grouped_votes(body),
            skip=self.pofs,
        )
        added = merge_pofs(self.pofs, new_pofs, verifier=self)
        if added:
            self._broadcast_pofs(added)
        self._after_pof_update()

    def _broadcast_pofs(self, pofs: Iterable[ProofOfFraud]) -> None:
        body = {"pofs": [pof.to_payload() for pof in pofs]}
        self.emit(self.POFS_TOPIC, "POFS", body)

    def _handle_pofs(self, sender: ReplicaId, body: Dict[str, Any]) -> None:
        payloads = body.get("pofs", [])
        received: List[ProofOfFraud] = []
        for payload in payloads:
            try:
                received.append(ProofOfFraud.from_payload(payload))
            except (KeyError, TypeError, ValueError):
                continue
        added = merge_pofs(self.pofs, received, verifier=self)
        if added:
            # Re-broadcast newly learnt PoFs (Alg. 1 line 26).
            self._broadcast_pofs(added)
        self._after_pof_update()

    def pof_threshold(self) -> int:
        """Number of distinct culprits required to start a membership change."""
        if self.config.pof_threshold is not None:
            return self.config.pof_threshold
        return recovery_threshold(self.committee_size())

    def _after_pof_update(self) -> None:
        if self.telemetry is not None:
            self.telemetry.gauge("zlb.pofs", replica=self.replica_id).set(
                len(self.pofs)
            )
        if self.pofs and self.detected_at is None:
            if len(self.pofs) >= self.pof_threshold():
                self.detected_at = self.now
                self.log.info(
                    "coalition detected: %s proof(s) of fraud against %s",
                    len(self.pofs),
                    sorted(self.pofs),
                )
                if self.telemetry is not None:
                    self.telemetry.timeline("zlb.recovery").mark(
                        "detected", self.detected_at
                    )
        self._maybe_start_membership_change()

    # -- ③/④ membership change --------------------------------------------------------------------

    def _maybe_start_membership_change(self) -> None:
        if self.membership_change is not None:
            return
        if len(self.pofs) < self.pof_threshold():
            return
        # Stop the pending ASMR consensus (Alg. 1 line 19).
        for record in self.instances.values():
            if record.decision is None:
                record.aborted = True
        relevant_pofs = {
            culprit: pof
            for culprit, pof in self.pofs.items()
            if culprit in set(self.committee())
        }
        if self.telemetry is not None:
            self.telemetry.timeline("zlb.recovery").mark("exclusion_started", self.now)
        self.log.info(
            "membership change started (epoch %s): excluding %s",
            self.epoch,
            sorted(relevant_pofs),
        )
        self.membership_change = MembershipChange(
            host=self,
            epoch=self.epoch,
            committee=self.committee(),
            pofs=relevant_pofs,
            pool=self.pool,
            on_complete=self._on_membership_complete,
        )
        self.membership_change.start()
        self._replay_buffered_membership()

    def _replay_buffered_membership(self) -> None:
        buffered, self._buffered_membership = self._buffered_membership, []
        for message_topic, sender, kind, body in buffered:
            if self.membership_change is not None and self.membership_change.owns_topic(
                message_topic
            ):
                self.membership_change.handle(message_topic, sender, kind, body)
            else:
                self._buffered_membership.append((message_topic, sender, kind, body))

    def _on_membership_complete(self, outcome: MembershipOutcome) -> None:
        if self.telemetry is not None:
            timeline = self.telemetry.timeline("zlb.recovery")
            timeline.mark("excluded", outcome.exclusion_decided_at)
            timeline.mark("included", outcome.inclusion_decided_at)
        self.membership_outcomes.append(outcome)
        self.excluded_replicas.update(outcome.excluded)
        self.log.info(
            "membership change complete: excluded %s, included %s",
            outcome.excluded,
            outcome.included,
        )
        new_committee = [
            replica for replica in self.committee() if replica not in outcome.excluded
        ]
        new_committee.extend(outcome.included)
        self.update_committee(new_committee)
        if self.on_exclude is not None and outcome.excluded:
            self.on_exclude(list(outcome.excluded))
        # Send the chain state to the replicas that just joined (Fig. 5 right).
        for replica in outcome.included:
            self._send_catchup(replica)
        # Clear the treated PoFs (Alg. 1 line 39) and prepare the next epoch.
        for culprit in outcome.excluded:
            self.pofs.pop(culprit, None)
        self.membership_change = None
        self.epoch += 1
        # Restart the aborted consensus instances with the new committee
        # (Alg. 1 line 49 / Fig. 2 "goto ①").
        aborted = sorted(
            instance
            for instance, record in self.instances.items()
            if record.aborted and record.decision is None
        )
        for instance in aborted:
            old_component = self._sbc.pop(instance, None)
            if old_component is not None:
                self.router.unregister(old_component.topic)
            del self.instances[instance]
        if aborted:
            self.next_instance = min(self.next_instance, aborted[0])
        self._maybe_start_next_instance()

    # -- catch-up of newly included replicas ------------------------------------------------------------

    def _send_catchup(self, replica: ReplicaId) -> None:
        blocks = []
        for instance in sorted(self.instances):
            record = self.instances[instance]
            if record.decision is None:
                continue
            blocks.append(
                {
                    "instance": instance,
                    "digest": record.decision.digest,
                    "bitmask": dict(record.decision.bitmask),
                    "proposals": dict(record.decision.proposals),
                    "binary_certificates": {
                        slot: cert.to_payload()
                        for slot, cert in record.decision.binary_certificates.items()
                    },
                    "committee": list(record.committee),
                }
            )
        self.emit_to(
            replica,
            self.CATCHUP_TOPIC,
            "CATCHUP",
            {
                "blocks": blocks,
                # The new replica adopts the post-change view so it can take
                # part in the restarted instances right away.
                "epoch": self.epoch + 1,
                "committee": [
                    r for r in self.committee() if r not in self.excluded_replicas
                ],
                "target_instances": self.target_instances,
                "next_instance": max(
                    (i + 1 for i in self.decided_instances()), default=0
                ),
            },
        )

    def _handle_catchup(self, sender: ReplicaId, body: Dict[str, Any]) -> None:
        if self.catchup_completed_at is not None:
            return
        blocks = body.get("blocks", [])
        verified = 0
        for block in blocks:
            committee = block.get("committee", list(self.committee()))
            for payload in block.get("binary_certificates", {}).values():
                try:
                    certificate = certificate_from_payload(payload)
                except (KeyError, TypeError, ValueError):
                    continue
                if not certificate.is_valid(self, committee):
                    break
            else:
                verified += 1
        self.catchup_blocks_verified = verified
        self.catchup_completed_at = self.now
        if not self.standby:
            return
        # Join the committee: adopt the sender's post-membership-change view.
        self.standby = False
        new_committee = body.get("committee")
        if new_committee and self.replica_id in new_committee:
            self.update_committee(new_committee)
        self.epoch = max(self.epoch, int(body.get("epoch", self.epoch)))
        self.target_instances = max(
            self.target_instances, int(body.get("target_instances", 0))
        )
        self.next_instance = max(
            self.next_instance, int(body.get("next_instance", 0))
        )
        self._maybe_start_next_instance()

    # -- message routing ---------------------------------------------------------------------------------------

    def _route_confirm(self, message_topic: Topic, sender: ReplicaId, kind: str, body: Dict[str, Any]) -> None:
        self._handle_confirm(sender, body)

    def _route_pofs(self, message_topic: Topic, sender: ReplicaId, kind: str, body: Dict[str, Any]) -> None:
        self._handle_pofs(sender, body)

    def _route_catchup(self, message_topic: Topic, sender: ReplicaId, kind: str, body: Dict[str, Any]) -> None:
        self._handle_catchup(sender, body)

    def _route_membership(self, message_topic: Topic, sender: ReplicaId, kind: str, body: Dict[str, Any]) -> None:
        """Forward exclusion/inclusion traffic to the active membership change,
        buffering messages that no active change owns (other epochs, or phases
        this replica has not reached yet)."""
        change = self.membership_change
        if change is not None and change.owns_topic(message_topic):
            change.handle(message_topic, sender, kind, body)
        else:
            self._buffered_membership.append((message_topic, sender, kind, body))

    def _route_lazy_sbc(self, message_topic: Topic, sender: ReplicaId, kind: str, body: Dict[str, Any]) -> None:
        """Create consensus instances lazily when another replica started first.

        Fallback at ``("sbc",)``: only reached while no started instance owns
        the deeper ``("sbc", epoch, instance)`` prefix.
        """
        if self.standby or self.fault is FaultKind.BENIGN:
            return
        segments = message_topic.segments
        if len(segments) < 3:
            return
        epoch, instance = segments[1], segments[2]
        if not isinstance(epoch, int) or not isinstance(instance, int):
            return
        if epoch != self.epoch or instance in self.instances:
            return
        if instance > self.target_instances:
            # Never seen and beyond anything we expect to run: ignore.
            return
        # Catch up with the instance another replica already started.
        while self.next_instance <= instance:
            to_start = self.next_instance
            self.next_instance += 1
            self._start_instance(to_start)
        if instance in self.instances:
            # Started above: the instance's own prefix now shadows this
            # fallback.  (When ``next_instance`` already moved past an
            # instance this replica never ran — a replica included mid-epoch
            # adopts the sender's view — the message is dropped, as before.)
            self.route(message_topic, sender, kind, body)

    # -- metrics ---------------------------------------------------------------------------------------------------

    def decided_instances(self) -> List[int]:
        """Indices of instances with a local decision, in order."""
        return sorted(
            instance
            for instance, record in self.instances.items()
            if record.decision is not None
        )

    def total_disagreeing_slots(self) -> int:
        """Total number of (instance, slot) pairs on which this replica observed
        a decision conflicting with its own — the paper's "disagreements"."""
        return sum(len(record.disagreeing_slots) for record in self.instances.values())

    def disagreement_instances(self) -> List[int]:
        """Instances on which a disagreement was observed."""
        return sorted(
            instance
            for instance, record in self.instances.items()
            if record.disagreed
        )
