"""The worker↔launcher JSON-lines protocol, in one place.

Workers speak newline-delimited JSON on stdout; the launcher's collector
threads parse each line and route it by its ``event`` field.  Both sides
import the event names and the frame builders from here so the protocol
cannot drift between them.

Event kinds (one dict per line, ``event`` selects the shape):

* ``ready`` — listener bound; carries ``epoch_offset``, the worker's
  ``time.time() - loop.time()`` estimate that maps its monotonic event
  timestamps onto the shared wall clock (the causal-merge anchor).
* ``connected`` — all peer dials completed; carries the peer list.
* ``obs`` — periodic observability frame (only with ``--obs``): committed
  counters, rates, sliding p50/p99 time-to-commit, mempool depth, span
  summary, per-instance commit digests, monitor violations and the flight
  ring increment since the previous frame.
* ``report`` — exactly once at the end: final counters, latencies, zero-loss
  accounting; with ``--obs`` also the full span/event sets for the merged
  cluster trace.

Everything here must stay cheap and dependency-light: the worker emits on
its event loop and the launcher parses on collector threads.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Dict, Optional

EVENT_READY = "ready"
EVENT_CONNECTED = "connected"
EVENT_OBS = "obs"
EVENT_REPORT = "report"

#: Flight-ring events shipped per obs frame at most; a worker drowning in
#: traffic degrades to a sparser ring at the launcher, never to giant frames.
MAX_RING_EVENTS_PER_FRAME = 256

#: Spans/events shipped in one final report at most (newest kept).  An n=4
#: smoke workload produces a few hundred; the cap only guards pathology.
MAX_REPORT_SPANS = 20_000


def emit(payload: Dict[str, Any], stream: Any = None) -> None:
    """Write one protocol frame as a JSON line and flush it.

    Flushing per frame is the liveness contract: the launcher's dashboard
    and crash forensics are only as fresh as the worker's last flushed line.
    """
    out = stream if stream is not None else sys.stdout
    out.write(json.dumps(payload) + "\n")
    out.flush()


def parse_line(line: str) -> Optional[Dict[str, Any]]:
    """Parse one stdout line into a protocol frame, or ``None`` if it is not
    one (stray prints and tracebacks land in the launcher's stderr tail)."""
    line = line.strip()
    if not line or not line.startswith("{"):
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(payload, dict) or "event" not in payload:
        return None
    return payload


def epoch_offset(loop: Any) -> float:
    """This process's monotonic→wall-clock offset (``time.time() - loop.time()``).

    Sampled once per worker; the launcher adds it to event/span timestamps to
    place every process on one shared timeline (good to NTP/scheduling noise,
    which is plenty for causal forensics).
    """
    return time.time() - loop.time()


def ready_frame(replica_id: int, offset: float) -> Dict[str, Any]:
    return {
        "event": EVENT_READY,
        "replica_id": replica_id,
        "epoch_offset": offset,
    }


def connected_frame(replica_id: int, peers: Any) -> Dict[str, Any]:
    return {
        "event": EVENT_CONNECTED,
        "replica_id": replica_id,
        "peers": list(peers),
    }
