"""Per-replica subprocess: one ZLB node on an asyncio transport.

Launched by :mod:`repro.cluster.launcher` as ``python -m repro.cluster.worker
--replica-id I ...``.  The worker rebuilds its slice of the deployment from
the :class:`~repro.cluster.fixture.ClusterSpec` encoded in its flags, serves
its endpoint, dials its peers, feeds its workload share into the mempool and
runs consensus until every transaction in the cluster is committed locally.

It speaks the one-line-JSON protocol of :mod:`repro.cluster.protocol` on
stdout: ``ready`` once the listener is bound, ``connected`` once every peer
dial completed, periodic ``obs`` frames while ``--obs`` is set, and exactly
one final ``report``.

With ``--obs`` the worker activates the full observability stack the
simulator cells enjoy — a telemetry registry, a tracing runtime (tracer in a
per-replica id namespace, flight recorder, online invariant monitors with the
ledger baseline registered) and a :class:`~repro.obs.series.StreamingSampler`
— and streams periodic obs frames: committed counters, events/sec, mempool
depth, sliding p50/p99 time-to-commit, per-instance commit digests (the
launcher's cross-replica agreement input), any monitor violations and the
flight-recorder ring increment since the previous frame.  The final report
additionally carries the worker's spans and trace events so the launcher can
merge one cluster-wide causal trace.  Without ``--obs`` the worker emits zero
obs frames and its report is byte-identical to the plain protocol.

``SIGTERM`` drains cleanly: the worker stops waiting, emits its report with
``"status": "terminated"`` and exits 0, so a launcher-initiated shutdown is
distinguishable from a crash (no report, non-zero exit).
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Any, Dict, List, Optional

from repro.cluster import protocol as wire
from repro.cluster.fixture import ClusterSpec, build_node, endpoints_for
from repro.network.asyncio_transport import AsyncioTransport
from repro.telemetry.core import TelemetryRegistry

#: How often the commit-completion poll wakes up.
POLL_INTERVAL_S = 0.02

#: Default cadence of obs frames in wall-clock seconds.
DEFAULT_OBS_CADENCE_S = 0.25

#: Default per-replica flight-recorder ring capacity.
DEFAULT_RING_CAPACITY = 512

#: Per-instance commit digests carried per obs frame (newest instances).
COMMIT_DIGEST_WINDOW = 8


def _parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(prog="repro.cluster.worker")
    parser.add_argument("--replica-id", type=int, required=True)
    parser.add_argument("--n", type=int, required=True)
    parser.add_argument("--transport", choices=("uds", "tcp"), default="uds")
    parser.add_argument("--socket-dir", default="")
    parser.add_argument("--base-port", type=int, default=0)
    parser.add_argument("--transactions", type=int, default=200)
    parser.add_argument("--batch-size", type=int, default=50)
    parser.add_argument("--accounts", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--obs", action="store_true")
    parser.add_argument("--obs-cadence", type=float, default=DEFAULT_OBS_CADENCE_S)
    parser.add_argument("--ring", type=int, default=DEFAULT_RING_CAPACITY)
    return parser.parse_args(argv)


class _ObsShipper:
    """Builds the periodic obs frames of one worker.

    Holds the incremental-shipping cursors: the flight-ring sequence number
    and violation count already sent, and the committed count at the previous
    frame (for the per-frame tx/s rate).
    """

    def __init__(self, replica_id, replica, transport, tracing, sampler, loop):
        self.replica_id = replica_id
        self.replica = replica
        self.transport = transport
        self.tracing = tracing
        self.sampler = sampler
        self.loop = loop
        self.frames_sent = 0
        self._last_ring_seq = -1
        self._last_violations = 0
        self._last_committed = 0
        self._last_t: Optional[float] = None

    def frame(self) -> Dict[str, Any]:
        now = self.loop.time()
        transport = self.transport
        blockchain = self.replica.blockchain
        self.sampler.tick(now, transport.messages_delivered)

        committed = blockchain.transactions_committed
        if self._last_t is None:
            tx_per_s = 0.0
        else:
            tx_per_s = (committed - self._last_committed) / max(
                now - self._last_t, 1e-9
            )
        self._last_committed = committed
        self._last_t = now

        by_instance = blockchain.blocks_by_instance
        recent = sorted(by_instance)[-COMMIT_DIGEST_WINDOW:]
        commits = {
            str(instance): by_instance[instance].block_hash for instance in recent
        }

        recorder = self.tracing.recorder
        ring = recorder.events_since(self._last_ring_seq)
        if len(ring) > wire.MAX_RING_EVENTS_PER_FRAME:
            ring = ring[-wire.MAX_RING_EVENTS_PER_FRAME :]
        if ring:
            self._last_ring_seq = ring[-1]["seq"]

        monitors = self.tracing.monitors
        fresh_violations = [
            violation.to_dict()
            for violation in monitors.violations[self._last_violations :]
        ]
        self._last_violations = len(monitors.violations)

        self.frames_sent += 1
        return {
            "event": wire.EVENT_OBS,
            "replica_id": self.replica_id,
            "t": now,
            "committed": committed,
            "blocks": len(by_instance),
            "tx_per_s": tx_per_s,
            "events_per_sec": self.sampler.events_per_sec,
            "mempool": len(blockchain.mempool),
            "peers": len(transport.connected_peers()),
            "messages_delivered": transport.messages_delivered,
            "commit_latency": self.sampler.quantile_current("commit_latency_s"),
            "spans": len(self.tracing.tracer.spans),
            "commits": commits,
            "violations": fresh_violations,
            "ring": ring,
        }

    def report_extra(self) -> Dict[str, Any]:
        """The obs block of the final report: spans, events, monitor status."""
        tracer = self.tracing.tracer
        spans = [span.to_dict() for span in tracer.spans]
        if len(spans) > wire.MAX_REPORT_SPANS:
            spans = spans[-wire.MAX_REPORT_SPANS :]
        events = tracer.events
        if len(events) > wire.MAX_REPORT_SPANS:
            events = events[-wire.MAX_REPORT_SPANS :]
        return {
            "frames_sent": self.frames_sent,
            "spans": spans,
            "events": events,
            "monitors": self.tracing.monitors.status(),
            "recorder_events": len(self.tracing.recorder),
        }


async def _run(spec: ClusterSpec, replica_id: int, args) -> int:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    terminated = False

    def _on_sigterm() -> None:
        nonlocal terminated
        terminated = True
        stop.set()

    loop.add_signal_handler(signal.SIGTERM, _on_sigterm)
    loop.add_signal_handler(signal.SIGINT, _on_sigterm)

    telemetry = TelemetryRegistry()
    node = build_node(spec, replica_id)
    replica = node.replica

    tracing = obs = None
    if args.obs:
        from repro.obs.core import ObsRuntime
        from repro.tracing.core import TraceRuntime, replica_id_base

        tracing = TraceRuntime.enabled(
            recorder_capacity=args.ring, id_base=replica_id_base(replica_id)
        )
        tracing.monitors.register_ledger(
            replica_id, replica.blockchain.conserved_total()
        )
        obs = ObsRuntime.enabled(cadence_s=args.obs_cadence)
        mempool = replica.blockchain.mempool
        obs.sampler.register_gauge("mempool.pending", lambda: float(len(mempool)))
        obs.sampler.register_gauge(
            "mempool.pending_bytes", lambda: float(mempool.pending_bytes)
        )

    transport = AsyncioTransport(
        replica_id,
        endpoints_for(spec),
        telemetry=telemetry,
        tracing=tracing,
        obs=obs,
    )
    transport.add_process(replica)
    await transport.start()
    offset = wire.epoch_offset(loop)
    wire.emit(wire.ready_frame(replica_id, offset))
    await transport.connect(timeout=spec.timeout)
    wire.emit(wire.connected_frame(replica_id, transport.connected_peers()))

    # Wall-clock time-to-commit: stamp every share transaction at admission,
    # close the interval when the commit callback lands its block.
    admit_times: Dict[str, float] = {}
    latencies: List[float] = []
    original_on_commit = replica.on_commit

    def _hooked_on_commit(instance: int, decision) -> None:
        original_on_commit(instance, decision)
        block = replica.blockchain.blocks_by_instance.get(instance)
        if block is None:
            return
        now = loop.time()
        for transaction in block.transactions:
            admitted_at = admit_times.pop(transaction.tx_id, None)
            if admitted_at is not None:
                latencies.append(now - admitted_at)
        if replica.blockchain.transactions_committed >= node.total_transactions:
            stop.set()

    replica.on_commit = _hooked_on_commit

    shipper: Optional[_ObsShipper] = None
    obs_timer: Optional[int] = None
    if args.obs:
        shipper = _ObsShipper(replica_id, replica, transport, tracing, obs.sampler, loop)

        def _ship() -> None:
            nonlocal obs_timer
            wire.emit(shipper.frame())
            obs_timer = transport.schedule(args.obs_cadence, _ship, owner=replica_id)

        obs_timer = transport.schedule(args.obs_cadence, _ship, owner=replica_id)

    started_at = loop.time()
    accepted = replica.submit_transactions(node.share)
    admitted_at = loop.time()
    for transaction in node.share:
        admit_times.setdefault(transaction.tx_id, admitted_at)

    transport.start_processes()
    replica.submit_instances(node.instances_needed)

    deadline = started_at + spec.timeout
    while not stop.is_set():
        remaining = deadline - loop.time()
        if remaining <= 0:
            break
        try:
            await asyncio.wait_for(stop.wait(), timeout=min(remaining, POLL_INTERVAL_S))
        except asyncio.TimeoutError:
            if replica.blockchain.transactions_committed >= node.total_transactions:
                break
            # Liveness: under real concurrency a slow proposal can miss an
            # instance's decided union, stranding its transactions in the
            # proposer's mempool.  Whenever every requested instance has
            # decided but the chain is still short of the workload, every
            # worker symmetrically budgets one more instance to drain the
            # stragglers (peers join instances up to their own target).
            if (
                replica.next_instance >= replica.target_instances
                and len(replica.decided_instances()) >= replica.target_instances
            ):
                replica.submit_instances(1)
    finished_at = loop.time()
    if obs_timer is not None:
        transport.cancel(obs_timer)

    committed = replica.blockchain.transactions_committed
    done = committed >= node.total_transactions
    if terminated:
        status = "terminated"
    elif done:
        status = "ok"
    else:
        status = "timeout"
    report = {
        "event": wire.EVENT_REPORT,
        "status": status,
        "replica_id": replica_id,
        "accepted": accepted,
        "committed": committed,
        "total_transactions": node.total_transactions,
        "blocks": len(replica.blockchain.blocks_by_instance),
        "duration_s": finished_at - started_at,
        "commit_latencies_s": latencies,
        "conserved_ok": (
            replica.blockchain.conserved_total() == node.conserved_baseline
        ),
        "commit_rejected": replica.blockchain.stats.commit_rejected,
        "transport": {
            "messages_sent": transport.messages_sent,
            "messages_delivered": transport.messages_delivered,
            "messages_dropped": transport.messages_dropped,
            "bytes_sent": transport.bytes_sent,
        },
        "chain": replica.chain_summary(),
        "telemetry": telemetry.snapshot(),
    }
    if shipper is not None:
        # One last frame so the launcher's dashboard/forensics see the final
        # state (and the tail of the flight ring) even on a drain.
        wire.emit(shipper.frame())
        report["epoch_offset"] = offset
        report["obs"] = shipper.report_extra()
    wire.emit(report)
    await transport.close()
    return 0 if status in ("ok", "terminated") else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    spec = ClusterSpec(
        n=args.n,
        transport=args.transport,
        transactions=args.transactions,
        batch_size=args.batch_size,
        accounts=args.accounts,
        seed=args.seed,
        socket_dir=args.socket_dir,
        base_port=args.base_port,
        timeout=args.timeout,
        obs=args.obs,
    )
    return asyncio.run(_run(spec, args.replica_id, args))


if __name__ == "__main__":
    sys.exit(main())
