"""Per-replica subprocess: one ZLB node on an asyncio transport.

Launched by :mod:`repro.cluster.launcher` as ``python -m repro.cluster.worker
--replica-id I ...``.  The worker rebuilds its slice of the deployment from
the :class:`~repro.cluster.fixture.ClusterSpec` encoded in its flags, serves
its endpoint, dials its peers, feeds its workload share into the mempool and
runs consensus until every transaction in the cluster is committed locally.

It speaks a one-line-JSON protocol on stdout:

* ``{"event": "ready", ...}`` once the listener is bound (the launcher can
  tail progress, but workers self-synchronise by retrying dials).
* ``{"event": "report", ...}`` exactly once at the end — committed counts,
  per-transaction wall-clock commit latencies, zero-loss accounting, the
  transport's byte/message counters and a telemetry snapshot.

``SIGTERM`` drains cleanly: the worker stops waiting, emits its report with
``"status": "terminated"`` and exits 0, so a launcher-initiated shutdown is
distinguishable from a crash (no report, non-zero exit).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import Any, Dict, List, Optional

from repro.cluster.fixture import ClusterSpec, build_node, endpoints_for
from repro.network.asyncio_transport import AsyncioTransport
from repro.telemetry.core import TelemetryRegistry

#: How often the commit-completion poll wakes up.
POLL_INTERVAL_S = 0.02


def _parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(prog="repro.cluster.worker")
    parser.add_argument("--replica-id", type=int, required=True)
    parser.add_argument("--n", type=int, required=True)
    parser.add_argument("--transport", choices=("uds", "tcp"), default="uds")
    parser.add_argument("--socket-dir", default="")
    parser.add_argument("--base-port", type=int, default=0)
    parser.add_argument("--transactions", type=int, default=200)
    parser.add_argument("--batch-size", type=int, default=50)
    parser.add_argument("--accounts", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=60.0)
    return parser.parse_args(argv)


def _emit(payload: Dict[str, Any]) -> None:
    sys.stdout.write(json.dumps(payload) + "\n")
    sys.stdout.flush()


async def _run(spec: ClusterSpec, replica_id: int) -> int:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    terminated = False

    def _on_sigterm() -> None:
        nonlocal terminated
        terminated = True
        stop.set()

    loop.add_signal_handler(signal.SIGTERM, _on_sigterm)
    loop.add_signal_handler(signal.SIGINT, _on_sigterm)

    telemetry = TelemetryRegistry()
    node = build_node(spec, replica_id)
    replica = node.replica
    transport = AsyncioTransport(
        replica_id, endpoints_for(spec), telemetry=telemetry
    )
    transport.add_process(replica)
    await transport.start()
    _emit({"event": "ready", "replica_id": replica_id})
    await transport.connect(timeout=spec.timeout)
    _emit(
        {
            "event": "connected",
            "replica_id": replica_id,
            "peers": sorted(transport._writers),
        }
    )

    # Wall-clock time-to-commit: stamp every share transaction at admission,
    # close the interval when the commit callback lands its block.
    admit_times: Dict[str, float] = {}
    latencies: List[float] = []
    original_on_commit = replica.on_commit

    def _hooked_on_commit(instance: int, decision) -> None:
        original_on_commit(instance, decision)
        block = replica.blockchain.blocks_by_instance.get(instance)
        if block is None:
            return
        now = loop.time()
        for transaction in block.transactions:
            admitted_at = admit_times.pop(transaction.tx_id, None)
            if admitted_at is not None:
                latencies.append(now - admitted_at)
        if replica.blockchain.transactions_committed >= node.total_transactions:
            stop.set()

    replica.on_commit = _hooked_on_commit

    started_at = loop.time()
    accepted = replica.submit_transactions(node.share)
    admitted_at = loop.time()
    for transaction in node.share:
        admit_times.setdefault(transaction.tx_id, admitted_at)

    transport.start_processes()
    replica.submit_instances(node.instances_needed)

    deadline = started_at + spec.timeout
    while not stop.is_set():
        remaining = deadline - loop.time()
        if remaining <= 0:
            break
        try:
            await asyncio.wait_for(stop.wait(), timeout=min(remaining, POLL_INTERVAL_S))
        except asyncio.TimeoutError:
            if replica.blockchain.transactions_committed >= node.total_transactions:
                break
            # Liveness: under real concurrency a slow proposal can miss an
            # instance's decided union, stranding its transactions in the
            # proposer's mempool.  Whenever every requested instance has
            # decided but the chain is still short of the workload, every
            # worker symmetrically budgets one more instance to drain the
            # stragglers (peers join instances up to their own target).
            if (
                replica.next_instance >= replica.target_instances
                and len(replica.decided_instances()) >= replica.target_instances
            ):
                replica.submit_instances(1)
    finished_at = loop.time()

    committed = replica.blockchain.transactions_committed
    done = committed >= node.total_transactions
    if terminated:
        status = "terminated"
    elif done:
        status = "ok"
    else:
        status = "timeout"
    _emit(
        {
            "event": "report",
            "status": status,
            "replica_id": replica_id,
            "accepted": accepted,
            "committed": committed,
            "total_transactions": node.total_transactions,
            "blocks": len(replica.blockchain.blocks_by_instance),
            "duration_s": finished_at - started_at,
            "commit_latencies_s": latencies,
            "conserved_ok": (
                replica.blockchain.conserved_total() == node.conserved_baseline
            ),
            "commit_rejected": replica.blockchain.stats.commit_rejected,
            "transport": {
                "messages_sent": transport.messages_sent,
                "messages_delivered": transport.messages_delivered,
                "messages_dropped": transport.messages_dropped,
                "bytes_sent": transport.bytes_sent,
            },
            "chain": replica.chain_summary(),
            "telemetry": telemetry.snapshot(),
        }
    )
    await transport.close()
    return 0 if status in ("ok", "terminated") else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    spec = ClusterSpec(
        n=args.n,
        transport=args.transport,
        transactions=args.transactions,
        batch_size=args.batch_size,
        accounts=args.accounts,
        seed=args.seed,
        socket_dir=args.socket_dir,
        base_port=args.base_port,
        timeout=args.timeout,
    )
    return asyncio.run(_run(spec, args.replica_id))


if __name__ == "__main__":
    sys.exit(main())
