"""Launcher-side aggregation plane: live dashboard, monitors, forensics.

:class:`ClusterWatcher` is the single sink for every protocol frame the
collector threads parse off worker stdout.  It folds them into three views:

* a **live dashboard** — one row per replica (status, connected peers,
  committed, tx/s, sliding p99 time-to-commit, mempool depth, age of the
  last obs frame), redrawn in place on a TTY exactly like the sweep watcher;
* **serve state** — :meth:`state` (JSON) and :meth:`prometheus_text`
  (Prometheus text format), the duck-typed surface
  :class:`repro.obs.serve.WatchServer` publishes over loopback HTTP;
* **forensics** — per-worker flight-ring increments and epoch offsets
  accumulated as they stream in, plus per-worker spans/events from final
  reports, causally merged onto one shared cluster clock for the flight dump
  and the Chrome trace artifact.

The drain loop follows the sweep watcher's robustness rule: frames arrive
through a queue read with a short timeout, and every timeout still refreshes
the rendering, so a wedged or killed worker stalls *its row* (age climbing,
status degraded) instead of freezing the dashboard.  A SIGKILL'd worker's
already-shipped ring increments stay in the watcher — its last causal events
survive it, which is the whole point of crash forensics.

The watcher also runs the launcher-level online invariant monitor that no
single worker can check: **cross-replica commit agreement**.  Workers attach
per-instance block digests to their obs frames; the first instance where two
replicas disagree raises a violation (safety, not liveness — lag is fine,
conflicting commits are not).  Worker-local monitors (zero-loss accounting,
supply conservation) stream their violations in the same frames and are
aggregated here with replica attribution.
"""

from __future__ import annotations

import json
import sys
import threading
from collections import deque
from time import perf_counter
from typing import Any, Deque, Dict, List, Optional, TextIO

from repro.cluster import protocol as wire
from repro.tracing.recorder import merge_worker_events

#: Flight events retained per replica at the launcher (newest kept).  Workers
#: ship bounded increments; this bounds the launcher against long runs.
FLIGHT_RETAIN_PER_REPLICA = 4096

#: An obs-enabled replica whose last frame is older than this many seconds is
#: rendered as stalled (its process may still be alive — the row degrades,
#: the dashboard keeps refreshing).
STALL_AFTER_S = 2.0


class ReplicaRow:
    """Latest known state of one replica, as seen from its frames."""

    __slots__ = (
        "replica_id",
        "status",
        "peers",
        "committed",
        "total",
        "blocks",
        "tx_per_s",
        "events_per_sec",
        "mempool",
        "latency",
        "frames",
        "spans",
        "violations",
        "last_frame_wall",
    )

    def __init__(self, replica_id: int) -> None:
        self.replica_id = replica_id
        self.status = "starting"
        self.peers = 0
        self.committed = 0
        self.total: Optional[int] = None
        self.blocks = 0
        self.tx_per_s = 0.0
        self.events_per_sec = 0.0
        self.mempool = 0
        self.latency: Dict[str, float] = {}
        self.frames = 0
        self.spans = 0
        self.violations = 0
        self.last_frame_wall: Optional[float] = None

    def frame_age_s(self) -> Optional[float]:
        """Seconds since this replica's last obs frame (None before the first)."""
        if self.last_frame_wall is None:
            return None
        return perf_counter() - self.last_frame_wall

    def stalled(self) -> bool:
        age = self.frame_age_s()
        return (
            age is not None
            and age > STALL_AFTER_S
            and self.status not in ("done", "crashed", "terminated")
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "replica_id": self.replica_id,
            "status": self.status,
            "peers": self.peers,
            "committed": self.committed,
            "total": self.total,
            "blocks": self.blocks,
            "tx_per_s": self.tx_per_s,
            "events_per_sec": self.events_per_sec,
            "mempool": self.mempool,
            "latency": dict(self.latency),
            "frames": self.frames,
            "spans": self.spans,
            "violations": self.violations,
            "frame_age_s": self.frame_age_s(),
            "stalled": self.stalled(),
        }


class ClusterWatcher:
    """Aggregates worker protocol frames; renders, serves and merges them."""

    def __init__(
        self,
        n: int,
        total_transactions: int = 0,
        out: Optional[TextIO] = None,
        render: bool = False,
        refresh_s: float = 0.5,
        poll_s: float = 0.2,
    ) -> None:
        self.n = n
        self.total_transactions = total_transactions
        self.out = out if out is not None else sys.stderr
        self.render_enabled = render
        self.refresh_s = refresh_s
        self.poll_s = poll_s
        self.rows: Dict[int, ReplicaRow] = {
            replica_id: ReplicaRow(replica_id) for replica_id in range(n)
        }
        #: Launcher-detected + worker-reported invariant violations.
        self.violations: List[Dict[str, Any]] = []
        self.obs_frames = 0
        self._epoch_offsets: Dict[int, float] = {}
        self._flight: Dict[int, Deque[Dict[str, Any]]] = {}
        self._report_obs: Dict[int, Dict[str, Any]] = {}
        #: instance -> {replica_id: block digest} for the agreement monitor.
        self._digests: Dict[int, Dict[int, str]] = {}
        self._disagreed: set = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_render = 0.0
        self._rendered_lines = 0
        self._isatty = bool(getattr(self.out, "isatty", lambda: False)())

    # -- ingestion -------------------------------------------------------------

    def ingest(self, frame: Dict[str, Any]) -> None:
        """Fold one protocol frame into the aggregate state (thread-safe)."""
        event = frame.get("event")
        replica_id = frame.get("replica_id")
        if not isinstance(replica_id, int):
            return
        with self._lock:
            row = self.rows.get(replica_id)
            if row is None:
                row = self.rows[replica_id] = ReplicaRow(replica_id)
            if event == wire.EVENT_READY:
                row.status = "ready"
                offset = frame.get("epoch_offset")
                if isinstance(offset, (int, float)):
                    self._epoch_offsets[replica_id] = float(offset)
            elif event == wire.EVENT_CONNECTED:
                row.status = "connected"
                row.peers = len(frame.get("peers") or ())
            elif event == wire.EVENT_OBS:
                self._ingest_obs(row, frame)
            elif event == wire.EVENT_REPORT:
                self._ingest_report(row, frame)
        self._maybe_render()

    def _ingest_obs(self, row: ReplicaRow, frame: Dict[str, Any]) -> None:
        replica_id = row.replica_id
        self.obs_frames += 1
        row.frames += 1
        row.last_frame_wall = perf_counter()
        if row.status in ("starting", "ready", "connected"):
            row.status = "running"
        row.committed = int(frame.get("committed") or 0)
        row.blocks = int(frame.get("blocks") or 0)
        row.tx_per_s = float(frame.get("tx_per_s") or 0.0)
        row.events_per_sec = float(frame.get("events_per_sec") or 0.0)
        row.mempool = int(frame.get("mempool") or 0)
        row.peers = int(frame.get("peers") or row.peers)
        row.spans = int(frame.get("spans") or row.spans)
        latency = frame.get("commit_latency")
        if isinstance(latency, dict) and latency:
            row.latency = {key: float(value) for key, value in latency.items()}
        for violation in frame.get("violations") or ():
            row.violations += 1
            record = dict(violation)
            record["replica_id"] = replica_id
            self.violations.append(record)
        ring = frame.get("ring") or ()
        if ring:
            buffer = self._flight.get(replica_id)
            if buffer is None:
                buffer = self._flight[replica_id] = deque(
                    maxlen=FLIGHT_RETAIN_PER_REPLICA
                )
            buffer.extend(ring)
        commits = frame.get("commits")
        if isinstance(commits, dict):
            self._check_agreement(replica_id, commits)

    def _check_agreement(self, replica_id: int, commits: Dict[str, str]) -> None:
        """Cross-replica commit agreement: same instance ⇒ same block digest."""
        for instance_key, digest in commits.items():
            try:
                instance = int(instance_key)
            except (TypeError, ValueError):
                continue
            seen = self._digests.setdefault(instance, {})
            seen[replica_id] = digest
            if instance in self._disagreed:
                continue
            distinct = set(seen.values())
            if len(distinct) > 1:
                self._disagreed.add(instance)
                self.violations.append(
                    {
                        "invariant": "commit-agreement",
                        "replica_id": replica_id,
                        "instance": instance,
                        "detail": (
                            f"instance {instance} committed with conflicting "
                            f"digests across replicas: "
                            + ", ".join(
                                f"r{rid}={seen[rid][:12]}" for rid in sorted(seen)
                            )
                        ),
                    }
                )

    def _ingest_report(self, row: ReplicaRow, frame: Dict[str, Any]) -> None:
        replica_id = row.replica_id
        status = frame.get("status")
        row.status = "done" if status == "ok" else str(status)
        row.committed = int(frame.get("committed") or row.committed)
        row.total = int(frame.get("total_transactions") or 0) or row.total
        row.blocks = int(frame.get("blocks") or row.blocks)
        offset = frame.get("epoch_offset")
        if isinstance(offset, (int, float)):
            self._epoch_offsets[replica_id] = float(offset)
        obs = frame.get("obs")
        if isinstance(obs, dict):
            self._report_obs[replica_id] = obs
            monitors = obs.get("monitors")
            if isinstance(monitors, dict):
                for violation in monitors.get("violations") or ():
                    record = dict(violation)
                    record["replica_id"] = replica_id
                    if record not in self.violations:
                        row.violations += 1
                        self.violations.append(record)

    def note_crash(self, replica_id: int, exit_code: Any) -> None:
        """Mark a replica that exited without a report (collector-thread safe)."""
        with self._lock:
            row = self.rows.get(replica_id)
            if row is None:
                row = self.rows[replica_id] = ReplicaRow(replica_id)
            row.status = "crashed"
        self._maybe_render()

    # -- queue pump ------------------------------------------------------------

    def start(self, queue: Any) -> None:
        """Drain ``queue`` on a daemon thread until :meth:`finish`."""
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._pump, args=(queue,), name="cluster-watch", daemon=True
        )
        self._thread.start()

    def _pump(self, queue: Any) -> None:
        import queue as queue_mod

        while True:
            try:
                frame = queue.get(timeout=self.poll_s)
            except queue_mod.Empty:
                # No frame is still news: ages climb, stalled rows degrade.
                self._maybe_render()
                if self._stop.is_set():
                    return
                continue
            except (OSError, EOFError, ValueError):
                return
            self.ingest(frame)

    def finish(self) -> None:
        """Stop the pump after a final drain pass and render the end state."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(self.poll_s * 10, 2.0))
            self._thread = None
        if self.render_enabled:
            self.render(force=True)

    # -- rendering -------------------------------------------------------------

    def _maybe_render(self) -> None:
        if not self.render_enabled:
            return
        if perf_counter() - self._last_render >= self.refresh_s:
            self.render()

    def render(self, force: bool = False) -> None:
        now = perf_counter()
        if not force and now - self._last_render < self.refresh_s:
            return
        self._last_render = now
        with self._lock:
            lines = self._table_lines()
        if self._isatty:
            if self._rendered_lines:
                self.out.write(f"\x1b[{self._rendered_lines}F\x1b[J")
            self.out.write("\n".join(lines) + "\n")
            self._rendered_lines = len(lines)
        else:
            for line in lines:
                self.out.write(line + "\n")
        self.out.flush()

    def _table_lines(self) -> List[str]:
        committed = min(
            (row.committed for row in self.rows.values()), default=0
        )
        total = self.total_transactions or max(
            (row.total or 0 for row in self.rows.values()), default=0
        )
        header = f"cluster: {committed}/{total} tx committed everywhere"
        if self.violations:
            header += f"  !! {len(self.violations)} violation(s)"
        lines = [
            header,
            (
                f"  {'replica':<8} {'status':<11} {'peers':>5} {'tx':>7} "
                f"{'tx/s':>8} {'p99(ms)':>8} {'mempool':>8} {'age':>6}"
            ),
        ]
        for replica_id in sorted(self.rows):
            row = self.rows[replica_id]
            p99 = row.latency.get("p99")
            p99_text = f"{p99 * 1000.0:7.1f}" if p99 is not None else "     --"
            age = row.frame_age_s()
            age_text = f"{age:5.1f}s" if age is not None else "    --"
            status = "stalled" if row.stalled() else row.status
            lines.append(
                f"  {replica_id:<8} {status:<11} {row.peers:>5} "
                f"{row.committed:>7} {row.tx_per_s:>8.1f} {p99_text:>8} "
                f"{row.mempool:>8} {age_text:>6}"
            )
        return lines

    # -- serve surface (WatchServer reads these) -------------------------------

    def state(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "n": self.n,
                "total_transactions": self.total_transactions,
                "obs_frames": self.obs_frames,
                "violations": list(self.violations),
                "replicas": [
                    self.rows[replica_id].to_dict()
                    for replica_id in sorted(self.rows)
                ],
            }

    def prometheus_text(self) -> str:
        """Prometheus text-format gauges of the live cluster state."""
        state = self.state()
        lines = [
            "# TYPE repro_cluster_replicas gauge",
            f"repro_cluster_replicas {state['n']}",
            "# TYPE repro_cluster_obs_frames_total counter",
            f"repro_cluster_obs_frames_total {state['obs_frames']}",
            "# TYPE repro_cluster_violations_total counter",
            f"repro_cluster_violations_total {len(state['violations'])}",
            "# TYPE repro_cluster_replica_committed_total counter",
            "# TYPE repro_cluster_replica_tx_per_s gauge",
            "# TYPE repro_cluster_replica_peers gauge",
            "# TYPE repro_cluster_replica_mempool gauge",
            "# TYPE repro_cluster_commit_latency_seconds gauge",
            "# TYPE repro_cluster_replica_frame_age_seconds gauge",
        ]
        for row in state["replicas"]:
            label = f'replica="{row["replica_id"]}"'
            lines.append(
                f"repro_cluster_replica_committed_total{{{label}}} "
                f"{row['committed']}"
            )
            lines.append(
                f"repro_cluster_replica_tx_per_s{{{label}}} "
                f"{row['tx_per_s']:.3f}"
            )
            lines.append(f"repro_cluster_replica_peers{{{label}}} {row['peers']}")
            lines.append(
                f"repro_cluster_replica_mempool{{{label}}} {row['mempool']}"
            )
            for quantile, value in sorted(row["latency"].items()):
                lines.append(
                    f"repro_cluster_commit_latency_seconds"
                    f'{{{label},quantile="{quantile}"}} {value:.6f}'
                )
            age = row["frame_age_s"]
            if age is not None:
                lines.append(
                    f"repro_cluster_replica_frame_age_seconds{{{label}}} "
                    f"{age:.3f}"
                )
        return "\n".join(lines) + "\n"

    # -- forensics: causal merge across workers --------------------------------

    def merged_flight_events(self) -> List[Dict[str, Any]]:
        """Every worker's flight-ring events on one shared cluster clock.

        Includes events from workers that later died: increments shipped in
        obs frames survive their sender.  Ordering is ``(t_cluster, worker,
        seq)`` — wall-clock alignment via each worker's epoch offset, then
        per-worker record order.
        """
        with self._lock:
            events_by_worker = {
                replica_id: list(buffer)
                for replica_id, buffer in self._flight.items()
            }
            offsets = dict(self._epoch_offsets)
        return merge_worker_events(events_by_worker, offsets)

    def merged_spans(self) -> Dict[str, List[Dict[str, Any]]]:
        """Per-worker report spans/events mapped onto the cluster clock.

        Returns ``{"spans": [...], "events": [...]}`` with ``start``/``end``
        (spans) and ``t`` (events) shifted by each worker's epoch offset and
        normalised so the earliest point is zero — the shape
        :func:`repro.tracing.export.chrome_trace_from_records` consumes.
        """
        with self._lock:
            report_obs = {
                replica_id: obs for replica_id, obs in self._report_obs.items()
            }
            offsets = dict(self._epoch_offsets)
        spans: List[Dict[str, Any]] = []
        events: List[Dict[str, Any]] = []
        for replica_id, obs in report_obs.items():
            offset = offsets.get(replica_id, 0.0)
            for span in obs.get("spans") or ():
                shifted = dict(span)
                shifted["start"] = span["start"] + offset
                if span.get("end") is not None:
                    shifted["end"] = span["end"] + offset
                spans.append(shifted)
            for event in obs.get("events") or ():
                shifted = dict(event)
                shifted["t"] = event["t"] + offset
                events.append(shifted)
        base = min(
            [span["start"] for span in spans] + [event["t"] for event in events],
            default=0.0,
        )
        for span in spans:
            span["start"] -= base
            if span.get("end") is not None:
                span["end"] -= base
        for event in events:
            event["t"] -= base
        spans.sort(key=lambda span: (span["start"], str(span["replica"])))
        events.sort(key=lambda event: (event["t"], str(event["replica"])))
        return {"spans": spans, "events": events}

    def write_flight_dump(self, path: Any) -> str:
        """Write the merged flight-recorder timeline as JSONL; returns path."""
        from repro.tracing.recorder import dump_merged_jsonl

        return dump_merged_jsonl(path, self.merged_flight_events())

    def write_chrome_trace(self, path: Any) -> str:
        """Write the merged cluster Chrome trace JSON; returns the path."""
        from repro.tracing.export import chrome_trace_from_records

        merged = self.merged_spans()
        trace = chrome_trace_from_records(
            merged["spans"],
            merged["events"],
            clock="cluster wall-clock seconds (epoch-aligned), scaled to us",
        )
        path = str(path)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace, handle)
        return path
