"""Real-cluster deployment: ZLB replicas as OS processes over sockets.

``python -m repro.cluster`` boots an n-replica localhost cluster in which
every replica is a separate OS process running the unmodified protocol stack
on an :class:`~repro.network.asyncio_transport.AsyncioTransport` (TCP or
UNIX-domain sockets), drives the payment workload through it and reports
*wall-clock* throughput and p50/p99 time-to-commit.

The package splits into:

* :mod:`repro.cluster.fixture` — deterministic per-process reconstruction of
  the deployment (keys, genesis, workload shares) so every worker builds the
  byte-identical genesis without any coordination traffic.
* :mod:`repro.cluster.worker` — the per-replica subprocess entry point.
* :mod:`repro.cluster.launcher` — spawns workers, watches for crashes,
  aggregates their reports.
"""

from repro.cluster.fixture import ClusterSpec, build_node, endpoints_for
from repro.cluster.launcher import ClusterResult, run_cluster

__all__ = [
    "ClusterSpec",
    "ClusterResult",
    "build_node",
    "endpoints_for",
    "run_cluster",
]
