"""Real-cluster deployment: ZLB replicas as OS processes over sockets.

``python -m repro.cluster`` boots an n-replica localhost cluster in which
every replica is a separate OS process running the unmodified protocol stack
on an :class:`~repro.network.asyncio_transport.AsyncioTransport` (TCP or
UNIX-domain sockets), drives the payment workload through it and reports
*wall-clock* throughput and p50/p99 time-to-commit.

The package splits into:

* :mod:`repro.cluster.fixture` — deterministic per-process reconstruction of
  the deployment (keys, genesis, workload shares) so every worker builds the
  byte-identical genesis without any coordination traffic.
* :mod:`repro.cluster.protocol` — the worker↔launcher JSON-lines protocol
  (ready/connected/obs/report frames, epoch offsets).
* :mod:`repro.cluster.worker` — the per-replica subprocess entry point; with
  ``--obs`` it activates tracing + sampling and streams live obs frames.
* :mod:`repro.cluster.watch` — launcher-side aggregation plane: live
  dashboard, Prometheus/JSON serve surface, cross-replica invariant
  monitors, causal flight-dump and trace merging.
* :mod:`repro.cluster.launcher` — spawns workers, watches for crashes,
  aggregates their reports and writes the forensics artifacts.
"""

from repro.cluster.fixture import ClusterSpec, build_node, endpoints_for
from repro.cluster.launcher import ClusterResult, run_cluster
from repro.cluster.watch import ClusterWatcher

__all__ = [
    "ClusterSpec",
    "ClusterResult",
    "ClusterWatcher",
    "build_node",
    "endpoints_for",
    "run_cluster",
]
