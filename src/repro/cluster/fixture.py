"""Deterministic cluster fixture: every worker rebuilds the same deployment.

A real cluster has no central ``ZLBSystem.create`` call: each OS process must
construct its own replica, and all of them must agree on the genesis block,
the PKI and the client workload *without exchanging a byte*.  This module
makes that reconstruction a pure function of :class:`ClusterSpec` — the same
spec (committee size, seed, workload shape) always yields the same genesis
UTXO ids, the same provisioned keys and the same transaction stream,
mirroring the construction order of :meth:`repro.zlb.system.ZLBSystem.create`
(workload allocations first, then one deposit account per committee member).

The workload is split the way :meth:`ZLBSystem.submit_workload` spreads it in
simulation — transaction ``i`` goes to replica ``i % n`` — so simulated and
real runs of the same spec commit the same transactions from the same
mempools.
"""

from __future__ import annotations

import dataclasses
import math
import os
from typing import Dict, List, Tuple

from repro.common.config import ProtocolConfig
from repro.common.errors import ConfigurationError
from repro.common.types import ReplicaId
from repro.crypto.keys import KeyRegistry
from repro.ledger.block import make_genesis_block
from repro.ledger.transaction import Transaction
from repro.ledger.workload import TransferWorkload
from repro.network.asyncio_transport import Endpoint
from repro.smr.pool import CandidatePool
from repro.zlb.blockchain_manager import BlockchainManager, replica_deposit_account
from repro.zlb.node import ZLBReplica
from repro.zlb.payment import DepositPolicy


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """Everything a worker needs to rebuild its slice of the deployment.

    Attributes:
        n: committee size (all replicas honest — the cluster backend measures
            the fault-free data path; attacks stay in the simulator).
        transport: ``"uds"`` or ``"tcp"``.
        transactions: total client transfers driven through the cluster.
        batch_size: transactions per proposal.
        accounts: number of funded client accounts in the workload.
        seed: seed for keys, workload and genesis (determinism anchor).
        socket_dir: directory for UNIX-domain socket files (``uds`` only).
        base_port: first TCP port; replica ``i`` listens on ``base_port + i``
            (``tcp`` only).
        timeout: per-worker wall-clock budget in seconds.
        obs: activate the observability stack in every worker (tracing +
            streaming sampler + invariant monitors) and stream periodic obs
            frames to the launcher.  Strictly observational: the committed
            chain of a given seed is identical with ``obs`` on or off.
    """

    n: int = 4
    transport: str = "uds"
    transactions: int = 200
    batch_size: int = 50
    accounts: int = 16
    seed: int = 0
    socket_dir: str = ""
    base_port: int = 0
    timeout: float = 60.0
    obs: bool = False

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError("cluster needs at least one replica")
        if self.transport not in ("uds", "tcp"):
            raise ConfigurationError(f"unknown transport {self.transport!r}")
        if self.transactions < 0:
            raise ConfigurationError("transactions must be non-negative")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")

    @property
    def committee(self) -> List[ReplicaId]:
        return list(range(self.n))

    @property
    def instances_needed(self) -> int:
        """Consensus instances required to drain every replica's share.

        Each instance commits the union of every replica's next batch, so the
        budget is set by the largest per-replica share.
        """
        if self.transactions == 0:
            return 0
        largest_share = math.ceil(self.transactions / self.n)
        return math.ceil(largest_share / self.batch_size)


def endpoints_for(spec: ClusterSpec) -> Dict[ReplicaId, Endpoint]:
    """The full replica-id → listening-endpoint map of the deployment."""
    endpoints: Dict[ReplicaId, Endpoint] = {}
    for replica_id in spec.committee:
        if spec.transport == "uds":
            if not spec.socket_dir:
                raise ConfigurationError("uds transport needs a socket_dir")
            endpoints[replica_id] = Endpoint.uds(
                os.path.join(spec.socket_dir, f"replica-{replica_id}.sock")
            )
        else:
            if spec.base_port <= 0:
                raise ConfigurationError("tcp transport needs a base_port")
            endpoints[replica_id] = Endpoint.tcp(
                "127.0.0.1", spec.base_port + replica_id
            )
    return endpoints


@dataclasses.dataclass
class ClusterNode:
    """One worker's locally reconstructed slice of the deployment."""

    replica: ZLBReplica
    #: This replica's share of the client workload (``tx i → replica i % n``).
    share: List[Transaction]
    #: Total transfers across the whole cluster (the commit target: SBC
    #: decides unions, so every replica commits every transaction).
    total_transactions: int
    #: Consensus instances this replica must request to drain the workload.
    instances_needed: int
    #: Conserved value (UTXO supply + deposits) at genesis — the zero-loss
    #: baseline the final state is checked against.
    conserved_baseline: int


def build_node(spec: ClusterSpec, replica_id: ReplicaId) -> ClusterNode:
    """Deterministically rebuild replica ``replica_id`` of the deployment.

    Mirrors ``ZLBSystem.create`` exactly: same key provisioning, same genesis
    allocation order (workload accounts, then per-replica deposits), same
    batch size — so every worker derives the identical genesis block hash and
    UTXO table, and cross-replica signatures verify.
    """
    committee = spec.committee
    if replica_id not in committee:
        raise ConfigurationError(
            f"replica {replica_id} is not in the committee of size {spec.n}"
        )
    keys = KeyRegistry.provision(committee)
    workload = TransferWorkload(
        num_accounts=spec.accounts, seed=spec.seed, initial_balance=1_000_000
    )
    deposit_policy = DepositPolicy(
        gain_bound=100_000, deposit_factor=1.0, finalization_blockdepth=5
    )
    allocations: List[Tuple[str, int]] = list(workload.genesis_allocations)
    per_replica_deposit = deposit_policy.per_replica_deposit(spec.n)
    for member in committee:
        allocations.append((replica_deposit_account(member), per_replica_deposit))
    genesis_block, genesis_utxos = make_genesis_block(allocations)

    blockchain = BlockchainManager(
        replica_id=replica_id,
        initial_deposit=deposit_policy.coalition_deposit,
        batch_size=spec.batch_size,
        genesis=(genesis_block, genesis_utxos),
    )
    replica = ZLBReplica(
        replica_id=replica_id,
        committee=committee,
        signer=keys.signer_for(replica_id),
        registry=keys.registry,
        blockchain=blockchain,
        pool=CandidatePool([]),
        config=ProtocolConfig(batch_size=spec.batch_size),
    )

    transactions = workload.batch(spec.transactions)
    share = [
        transaction
        for index, transaction in enumerate(transactions)
        if index % spec.n == replica_id
    ]
    return ClusterNode(
        replica=replica,
        share=share,
        total_transactions=len(transactions),
        instances_needed=spec.instances_needed,
        conserved_baseline=blockchain.conserved_total(),
    )
