"""``python -m repro.cluster``: boot a real localhost cluster and report.

Example::

    PYTHONPATH=src python -m repro.cluster --n 4 --transport uds \\
        --transactions 200 --batch-size 50

prints wall-clock throughput and p50/p99 time-to-commit measured across the
whole committee, and exits non-zero if any replica crashed, timed out or
violated zero-loss accounting.  ``--json`` writes the full machine-readable
result (per-replica reports and telemetry snapshots included).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cluster.fixture import ClusterSpec
from repro.cluster.launcher import run_cluster
from repro.common.logging import configure_logging


def _parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro.cluster",
        description="Run an n-replica ZLB cluster as OS processes on localhost.",
    )
    parser.add_argument("--n", type=int, default=4, help="committee size")
    parser.add_argument(
        "--transport",
        choices=("uds", "tcp"),
        default="uds",
        help="socket flavour between replicas (default: uds)",
    )
    parser.add_argument(
        "--transactions", type=int, default=200, help="client transfers to drive"
    )
    parser.add_argument(
        "--batch-size", type=int, default=50, help="transactions per proposal"
    )
    parser.add_argument(
        "--accounts", type=int, default=16, help="funded client accounts"
    )
    parser.add_argument("--seed", type=int, default=0, help="determinism seed")
    parser.add_argument(
        "--base-port",
        type=int,
        default=0,
        help="first TCP port (tcp only; 0 = pick a free window)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="wall-clock budget in seconds"
    )
    parser.add_argument(
        "--json", default=None, help="write the full JSON result to this path"
    )
    parser.add_argument("--log-level", default=None, help="e.g. info, debug")
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    configure_logging(args.log_level)
    spec = ClusterSpec(
        n=args.n,
        transport=args.transport,
        transactions=args.transactions,
        batch_size=args.batch_size,
        accounts=args.accounts,
        seed=args.seed,
        base_port=args.base_port,
        timeout=args.timeout,
    )
    result = run_cluster(spec)

    print(
        f"cluster n={spec.n} transport={spec.transport} "
        f"transactions={result.total_transactions} "
        f"batch={spec.batch_size} seed={spec.seed}"
    )
    print(
        f"  committed {result.committed}/{result.total_transactions} "
        f"in {result.duration_s:.2f}s wall clock "
        f"({result.throughput_tx_per_s:.1f} tx/s)"
    )
    if result.latency_p50_s is not None:
        print(
            f"  time-to-commit p50 {result.latency_p50_s * 1000:.1f}ms "
            f"p99 {result.latency_p99_s * 1000:.1f}ms"
        )
    print(f"  zero-loss accounting: {'ok' if result.zero_loss else 'VIOLATED'}")
    for replica_id, code in sorted(result.crashes.items()):
        print(f"  replica {replica_id} crashed (exit code {code})")
    for replica_id, report in sorted(result.reports.items()):
        if report["status"] != "ok":
            print(f"  replica {replica_id} finished with status {report['status']}")
    print(f"  result: {'OK' if result.ok else 'FAILED'}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_json(), handle, indent=2, sort_keys=True)
        print(f"  wrote {args.json}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
