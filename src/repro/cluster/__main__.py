"""``python -m repro.cluster``: boot a real localhost cluster and report.

Example::

    PYTHONPATH=src python -m repro.cluster --n 4 --transport uds \\
        --transactions 200 --batch-size 50

prints wall-clock throughput and p50/p99 time-to-commit measured across the
whole committee, and exits non-zero if any replica crashed, timed out,
violated zero-loss accounting or tripped an online invariant monitor.

Observability flags:

* ``--obs`` — activate the tracing/sampling stack in every worker; workers
  stream live obs frames and ship their spans for the merged cluster trace.
* ``--watch`` — live per-replica dashboard on stderr (in-place on a TTY).
* ``--serve PORT`` — loopback HTTP endpoint with Prometheus ``/metrics`` and
  JSON ``/state`` (implies nothing else; combine with ``--obs`` for the full
  per-replica series).
* ``--artifacts DIR`` — where the merged Chrome trace (always, with
  ``--obs``) and the crash/violation flight dump get written.
* ``--json PATH`` writes the compact machine-readable result;
  ``--json-full`` switches it to the exhaustive per-replica reports.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cluster.fixture import ClusterSpec
from repro.cluster.launcher import run_cluster
from repro.common.logging import configure_logging


def _parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro.cluster",
        description="Run an n-replica ZLB cluster as OS processes on localhost.",
    )
    parser.add_argument("--n", type=int, default=4, help="committee size")
    parser.add_argument(
        "--transport",
        choices=("uds", "tcp"),
        default="uds",
        help="socket flavour between replicas (default: uds)",
    )
    parser.add_argument(
        "--transactions", type=int, default=200, help="client transfers to drive"
    )
    parser.add_argument(
        "--batch-size", type=int, default=50, help="transactions per proposal"
    )
    parser.add_argument(
        "--accounts", type=int, default=16, help="funded client accounts"
    )
    parser.add_argument("--seed", type=int, default=0, help="determinism seed")
    parser.add_argument(
        "--base-port",
        type=int,
        default=0,
        help="first TCP port (tcp only; 0 = pick a free window)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="wall-clock budget in seconds"
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="activate cross-process tracing, sampling and invariant monitors",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="live per-replica dashboard on stderr",
    )
    parser.add_argument(
        "--serve",
        type=int,
        default=None,
        metavar="PORT",
        help="loopback HTTP endpoint (/metrics, /state); 0 picks a free port",
    )
    parser.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="directory for the merged trace / flight-dump artifacts",
    )
    parser.add_argument(
        "--json", default=None, help="write the compact JSON result to this path"
    )
    parser.add_argument(
        "--json-full",
        action="store_true",
        help="make --json exhaustive (full per-replica reports)",
    )
    parser.add_argument("--log-level", default=None, help="e.g. info, debug")
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    configure_logging(args.log_level)
    spec = ClusterSpec(
        n=args.n,
        transport=args.transport,
        transactions=args.transactions,
        batch_size=args.batch_size,
        accounts=args.accounts,
        seed=args.seed,
        base_port=args.base_port,
        timeout=args.timeout,
        obs=args.obs,
    )
    result = run_cluster(
        spec,
        watch=args.watch,
        serve_port=args.serve,
        artifacts_dir=args.artifacts,
    )

    print(
        f"cluster n={spec.n} transport={spec.transport} "
        f"transactions={result.total_transactions} "
        f"batch={spec.batch_size} seed={spec.seed}"
        + (" obs" if spec.obs else "")
    )
    print(
        f"  committed {result.committed}/{result.total_transactions} "
        f"in {result.duration_s:.2f}s wall clock "
        f"({result.throughput_tx_per_s:.1f} tx/s)"
    )
    if result.latency_p50_s is not None:
        print(
            f"  time-to-commit p50 {result.latency_p50_s * 1000:.1f}ms "
            f"p99 {result.latency_p99_s * 1000:.1f}ms"
        )
    print(f"  zero-loss accounting: {'ok' if result.zero_loss else 'VIOLATED'}")
    if result.obs_frames:
        print(f"  obs frames received: {result.obs_frames}")
    for violation in result.violations:
        print(
            f"  INVARIANT VIOLATION [{violation.get('invariant')}] "
            f"{violation.get('detail')}"
        )
    for replica_id, code in sorted(result.crashes.items()):
        print(f"  replica {replica_id} crashed (exit code {code})")
    for replica_id, report in sorted(result.reports.items()):
        if report["status"] != "ok":
            print(f"  replica {replica_id} finished with status {report['status']}")
    if result.trace_dump:
        print(f"  merged cluster trace: {result.trace_dump}")
    if result.flight_dump:
        print(f"  merged flight dump: {result.flight_dump}")
    print(f"  result: {'OK' if result.ok else 'FAILED'}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                result.to_json(full=args.json_full),
                handle,
                indent=2,
                sort_keys=True,
            )
        print(f"  wrote {args.json}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
