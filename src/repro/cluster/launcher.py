"""The cluster launcher: spawn workers, watch them, aggregate their reports.

:func:`run_cluster` boots one OS process per replica (``python -m
repro.cluster.worker``), tails each worker's stdout for protocol frames
(:mod:`repro.cluster.protocol`), and folds the per-replica results into a
:class:`ClusterResult` with cluster-wide throughput and p50/p99 wall-clock
time-to-commit.

Every frame also feeds the :class:`~repro.cluster.watch.ClusterWatcher`
aggregation plane: a live in-place dashboard (``watch=True``), a loopback
HTTP endpoint serving Prometheus ``/metrics`` and JSON ``/state``
(``serve_port=``), the cross-replica commit-agreement monitor, and the
crash-forensics store (flight-ring increments + epoch offsets).  With
``spec.obs`` and an ``artifacts_dir``, the launcher writes a causally merged
Chrome trace of the whole cluster after the run — and, on any crash or
invariant violation, a merged flight dump whose timeline includes the dead
worker's last shipped events.

Failure handling is explicit rather than hopeful:

* a worker that exits without emitting its report is recorded as **crashed**
  (exit code captured, one log line per crash) — the launcher never hangs on
  a dead replica;
* on overall timeout or operator interrupt every surviving worker gets
  ``SIGTERM`` and a grace period to drain (workers report ``"terminated"``
  and exit 0), then ``SIGKILL``;
* a worker that merely *stalls* degrades its dashboard row (frame age
  climbing, status ``stalled``) while the rest of the plane keeps refreshing
  — the watcher drains its queue with a timeout, never a blocking read.
"""

from __future__ import annotations

import dataclasses
import os
import queue as queue_mod
import socket
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from repro.analysis.metrics import summarize_latencies
from repro.cluster import protocol as wire
from repro.cluster.fixture import ClusterSpec
from repro.cluster.watch import ClusterWatcher
from repro.common.logging import get_logger

log = get_logger("repro.cluster")

#: Seconds a SIGTERM'd worker gets to drain before SIGKILL.
TERM_GRACE_S = 5.0

#: Artifact file names under ``artifacts_dir``.
TRACE_ARTIFACT = "cluster-trace.json"
FLIGHT_ARTIFACT = "cluster-flight.jsonl"


@dataclasses.dataclass
class WorkerHandle:
    """One spawned worker process and the collector state around it."""

    replica_id: int
    process: subprocess.Popen
    report: Optional[Dict[str, Any]] = None
    ready: bool = False
    stderr_tail: List[str] = dataclasses.field(default_factory=list)

    @property
    def crashed(self) -> bool:
        """Exited without delivering a report (distinct from a clean drain)."""
        code = self.process.returncode
        return code is not None and self.report is None


@dataclasses.dataclass
class ClusterResult:
    """Aggregated outcome of one real-cluster run."""

    ok: bool
    spec: ClusterSpec
    duration_s: float
    committed: int
    total_transactions: int
    throughput_tx_per_s: float
    latency_p50_s: Optional[float]
    latency_p99_s: Optional[float]
    zero_loss: bool
    crashes: Dict[int, int]  # replica id -> exit code
    reports: Dict[int, Dict[str, Any]]
    #: Invariant violations (worker-local monitors + launcher agreement).
    violations: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: Obs frames received across all workers (0 in a no-obs run).
    obs_frames: int = 0
    #: Paths of written artifacts (None when not written).
    trace_dump: Optional[str] = None
    flight_dump: Optional[str] = None
    #: Bound port of the live HTTP endpoint, if one was served.
    serve_port: Optional[int] = None

    def to_json(self, full: bool = False) -> Dict[str, Any]:
        """JSON-serialisable summary.

        The default is the *compact* form committed as ``BENCH_cluster.json``:
        cluster aggregates plus per-replica counters — no raw latency arrays,
        no telemetry snapshots, no span sets (those can run to megabytes; the
        artifacts directory is where the big forensics files go).  ``full``
        restores the exhaustive per-replica reports.
        """
        payload: Dict[str, Any] = {
            "ok": self.ok,
            "n": self.spec.n,
            "transport": self.spec.transport,
            "transactions": self.total_transactions,
            "batch_size": self.spec.batch_size,
            "seed": self.spec.seed,
            "obs": self.spec.obs,
            "duration_s": self.duration_s,
            "committed": self.committed,
            "throughput_tx_per_s": self.throughput_tx_per_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "zero_loss": self.zero_loss,
            "obs_frames": self.obs_frames,
            "violations": list(self.violations),
            "crashes": {str(rid): code for rid, code in self.crashes.items()},
        }
        if full:
            payload["replicas"] = {
                str(rid): report for rid, report in self.reports.items()
            }
        else:
            payload["replicas"] = {
                str(rid): _compact_report(report)
                for rid, report in self.reports.items()
            }
        return payload


def _compact_report(report: Dict[str, Any]) -> Dict[str, Any]:
    """Per-replica counters only: drop raw latency arrays, telemetry and spans."""
    latencies = report.get("commit_latencies_s") or []
    summary = summarize_latencies(latencies)
    compact = {
        key: report[key]
        for key in (
            "status",
            "accepted",
            "committed",
            "total_transactions",
            "blocks",
            "duration_s",
            "conserved_ok",
            "commit_rejected",
            "transport",
            "chain",
        )
        if key in report
    }
    compact["latency_count"] = len(latencies)
    compact["latency_p50_s"] = summary.get("p50") if latencies else None
    compact["latency_p99_s"] = summary.get("p99") if latencies else None
    obs = report.get("obs")
    if isinstance(obs, dict):
        compact["obs_frames_sent"] = obs.get("frames_sent")
        compact["spans"] = len(obs.get("spans") or ())
    return compact


def _free_tcp_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _pick_base_port(n: int) -> int:
    """A base port whose ``n``-port window is free right now.

    Localhost-smoke quality (there is a bind race between probe and worker),
    which is all the launcher promises; collisions surface as worker crashes.
    """
    for _ in range(32):
        base = _free_tcp_port()
        if all(_is_free(base + offset) for offset in range(1, n)):
            return base
    raise RuntimeError("could not find a free TCP port window")


def _is_free(port: int) -> bool:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        try:
            probe.bind(("127.0.0.1", port))
        except OSError:
            return False
        return True


def _worker_argv(spec: ClusterSpec, replica_id: int) -> List[str]:
    argv = [
        sys.executable,
        "-m",
        "repro.cluster.worker",
        "--replica-id",
        str(replica_id),
        "--n",
        str(spec.n),
        "--transport",
        spec.transport,
        "--socket-dir",
        spec.socket_dir,
        "--base-port",
        str(spec.base_port),
        "--transactions",
        str(spec.transactions),
        "--batch-size",
        str(spec.batch_size),
        "--accounts",
        str(spec.accounts),
        "--seed",
        str(spec.seed),
        "--timeout",
        str(spec.timeout),
    ]
    if spec.obs:
        argv.append("--obs")
    return argv


def _collect_stdout(handle: WorkerHandle, frames: "queue_mod.Queue") -> None:
    stream = handle.process.stdout
    if stream is None:
        return
    for line in stream:
        payload = wire.parse_line(line)
        if payload is None:
            if line.strip():
                handle.stderr_tail.append(line.strip())
            continue
        event = payload.get("event")
        if event == wire.EVENT_READY:
            handle.ready = True
        elif event == wire.EVENT_REPORT:
            handle.report = payload
        try:
            frames.put_nowait(payload)
        except Exception:  # noqa: BLE001 - obs must never block the collector
            pass


def _collect_stderr(handle: WorkerHandle) -> None:
    stream = handle.process.stderr
    if stream is None:
        return
    for line in stream:
        handle.stderr_tail.append(line.rstrip())
        del handle.stderr_tail[:-20]


def _terminate(handles: List[WorkerHandle]) -> None:
    for handle in handles:
        if handle.process.poll() is None:
            handle.process.terminate()
    deadline = time.monotonic() + TERM_GRACE_S
    for handle in handles:
        remaining = deadline - time.monotonic()
        try:
            handle.process.wait(timeout=max(0.1, remaining))
        except subprocess.TimeoutExpired:
            handle.process.kill()
            handle.process.wait()


def run_cluster(
    spec: ClusterSpec,
    watch: bool = False,
    serve_port: Optional[int] = None,
    artifacts_dir: Optional[str] = None,
) -> ClusterResult:
    """Boot the cluster described by ``spec``, wait for it, aggregate results.

    Args:
        spec: the deterministic deployment description.
        watch: render the live per-replica dashboard to stderr (in-place on
            a TTY, periodic lines otherwise).
        serve_port: bind a loopback HTTP endpoint on this port (0 picks an
            ephemeral one; see ``ClusterResult.serve_port``) serving the live
            state as Prometheus ``/metrics`` and JSON ``/state``.
        artifacts_dir: directory for forensics artifacts.  With ``spec.obs``
            the merged cluster Chrome trace is always written there; the
            merged flight dump is written on any crash or invariant
            violation.
    """
    cleanup_dir: Optional[tempfile.TemporaryDirectory] = None
    if spec.transport == "uds" and not spec.socket_dir:
        cleanup_dir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        spec = dataclasses.replace(spec, socket_dir=cleanup_dir.name)
    if spec.transport == "tcp" and spec.base_port <= 0:
        spec = dataclasses.replace(spec, base_port=_pick_base_port(spec.n))

    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )

    watcher = ClusterWatcher(
        n=spec.n, total_transactions=spec.transactions, render=watch
    )
    frames: "queue_mod.Queue" = queue_mod.Queue()
    watcher.start(frames)
    server = None
    bound_port: Optional[int] = None
    if serve_port is not None:
        from repro.obs.serve import WatchServer

        server = WatchServer(watcher, serve_port)
        server.start()
        bound_port = server.port
        log.info("cluster obs endpoint on http://127.0.0.1:%d", bound_port)

    handles: List[WorkerHandle] = []
    threads: List[threading.Thread] = []
    started_at = time.monotonic()
    try:
        for replica_id in spec.committee:
            process = subprocess.Popen(
                _worker_argv(spec, replica_id),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            handle = WorkerHandle(replica_id=replica_id, process=process)
            handles.append(handle)
            thread = threading.Thread(
                target=_collect_stdout, args=(handle, frames), daemon=True
            )
            thread.start()
            threads.append(thread)
            thread = threading.Thread(
                target=_collect_stderr, args=(handle,), daemon=True
            )
            thread.start()
            threads.append(thread)

        # Wait until every worker exits, a worker crashes, or the overall
        # budget runs out.  Workers self-terminate once their chain holds the
        # full workload, so the happy path is "all exited 0 with reports".
        deadline = started_at + spec.timeout + TERM_GRACE_S
        while time.monotonic() < deadline:
            states = [handle.process.poll() for handle in handles]
            if all(code is not None for code in states):
                break
            crashed = [handle for handle in handles if handle.crashed]
            if crashed:
                for handle in crashed:
                    log.error(
                        "replica %d crashed (exit code %s)%s",
                        handle.replica_id,
                        handle.process.returncode,
                        (
                            ": " + handle.stderr_tail[-1]
                            if handle.stderr_tail
                            else ""
                        ),
                    )
                    watcher.note_crash(
                        handle.replica_id, handle.process.returncode
                    )
                _terminate(handles)
                break
            time.sleep(0.05)
        else:
            log.error(
                "cluster timed out after %.1fs; terminating workers", spec.timeout
            )
        _terminate(handles)
        for thread in threads:
            thread.join(timeout=1.0)
    except BaseException:
        _terminate(handles)
        raise
    finally:
        watcher.finish()
        if server is not None:
            server.stop()
        if cleanup_dir is not None:
            cleanup_dir.cleanup()
    duration = time.monotonic() - started_at

    reports = {
        handle.replica_id: handle.report
        for handle in handles
        if handle.report is not None
    }
    crashes = {
        handle.replica_id: handle.process.returncode
        for handle in handles
        if handle.crashed
    }
    total = max(
        (report["total_transactions"] for report in reports.values()),
        default=spec.transactions,
    )
    committed = min(
        (report["committed"] for report in reports.values()), default=0
    )
    pooled: List[float] = []
    for report in reports.values():
        pooled.extend(report.get("commit_latencies_s", ()))
    latency = summarize_latencies(pooled)
    zero_loss = bool(reports) and all(
        report["conserved_ok"] and report["commit_rejected"] == 0
        for report in reports.values()
    )
    violations = list(watcher.violations)
    ok = (
        not crashes
        and not violations
        and len(reports) == spec.n
        and committed >= total
        and zero_loss
        and all(report["status"] == "ok" for report in reports.values())
    )

    trace_dump = flight_dump = None
    if artifacts_dir is not None and spec.obs:
        os.makedirs(artifacts_dir, exist_ok=True)
        trace_dump = watcher.write_chrome_trace(
            os.path.join(artifacts_dir, TRACE_ARTIFACT)
        )
        log.info("merged cluster trace written to %s", trace_dump)
        if crashes or violations:
            flight_dump = watcher.write_flight_dump(
                os.path.join(artifacts_dir, FLIGHT_ARTIFACT)
            )
            log.error(
                "crash/violation forensics: merged flight dump at %s "
                "(%d crash(es), %d violation(s))",
                flight_dump,
                len(crashes),
                len(violations),
            )

    return ClusterResult(
        ok=ok,
        spec=spec,
        duration_s=duration,
        committed=committed,
        total_transactions=total,
        throughput_tx_per_s=(committed / duration if duration > 0 else 0.0),
        latency_p50_s=latency.get("p50") if pooled else None,
        latency_p99_s=latency.get("p99") if pooled else None,
        zero_loss=zero_loss,
        crashes=crashes,
        reports=reports,
        violations=violations,
        obs_frames=watcher.obs_frames,
        trace_dump=trace_dump,
        flight_dump=flight_dump,
        serve_port=bound_port,
    )
