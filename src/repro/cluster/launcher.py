"""The cluster launcher: spawn workers, watch them, aggregate their reports.

:func:`run_cluster` boots one OS process per replica (``python -m
repro.cluster.worker``), tails each worker's stdout for its one-line-JSON
report, and folds the per-replica results into a :class:`ClusterResult` with
cluster-wide throughput and p50/p99 wall-clock time-to-commit.

Failure handling is explicit rather than hopeful:

* a worker that exits without emitting its report is recorded as **crashed**
  (exit code captured, one log line per crash) — the launcher never hangs on
  a dead replica;
* on overall timeout or operator interrupt every surviving worker gets
  ``SIGTERM`` and a grace period to drain (workers report ``"terminated"``
  and exit 0), then ``SIGKILL``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from repro.analysis.metrics import summarize_latencies
from repro.cluster.fixture import ClusterSpec
from repro.common.logging import get_logger

log = get_logger("repro.cluster")

#: Seconds a SIGTERM'd worker gets to drain before SIGKILL.
TERM_GRACE_S = 5.0


@dataclasses.dataclass
class WorkerHandle:
    """One spawned worker process and the collector state around it."""

    replica_id: int
    process: subprocess.Popen
    report: Optional[Dict[str, Any]] = None
    ready: bool = False
    stderr_tail: List[str] = dataclasses.field(default_factory=list)

    @property
    def crashed(self) -> bool:
        """Exited without delivering a report (distinct from a clean drain)."""
        code = self.process.returncode
        return code is not None and self.report is None


@dataclasses.dataclass
class ClusterResult:
    """Aggregated outcome of one real-cluster run."""

    ok: bool
    spec: ClusterSpec
    duration_s: float
    committed: int
    total_transactions: int
    throughput_tx_per_s: float
    latency_p50_s: Optional[float]
    latency_p99_s: Optional[float]
    zero_loss: bool
    crashes: Dict[int, int]  # replica id -> exit code
    reports: Dict[int, Dict[str, Any]]

    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable summary (worker telemetry snapshots included)."""
        return {
            "ok": self.ok,
            "n": self.spec.n,
            "transport": self.spec.transport,
            "transactions": self.total_transactions,
            "batch_size": self.spec.batch_size,
            "seed": self.spec.seed,
            "duration_s": self.duration_s,
            "committed": self.committed,
            "throughput_tx_per_s": self.throughput_tx_per_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "zero_loss": self.zero_loss,
            "crashes": {str(rid): code for rid, code in self.crashes.items()},
            "replicas": {str(rid): report for rid, report in self.reports.items()},
        }


def _free_tcp_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _pick_base_port(n: int) -> int:
    """A base port whose ``n``-port window is free right now.

    Localhost-smoke quality (there is a bind race between probe and worker),
    which is all the launcher promises; collisions surface as worker crashes.
    """
    for _ in range(32):
        base = _free_tcp_port()
        if all(_is_free(base + offset) for offset in range(1, n)):
            return base
    raise RuntimeError("could not find a free TCP port window")


def _is_free(port: int) -> bool:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        try:
            probe.bind(("127.0.0.1", port))
        except OSError:
            return False
        return True


def _worker_argv(spec: ClusterSpec, replica_id: int) -> List[str]:
    return [
        sys.executable,
        "-m",
        "repro.cluster.worker",
        "--replica-id",
        str(replica_id),
        "--n",
        str(spec.n),
        "--transport",
        spec.transport,
        "--socket-dir",
        spec.socket_dir,
        "--base-port",
        str(spec.base_port),
        "--transactions",
        str(spec.transactions),
        "--batch-size",
        str(spec.batch_size),
        "--accounts",
        str(spec.accounts),
        "--seed",
        str(spec.seed),
        "--timeout",
        str(spec.timeout),
    ]


def _collect_stdout(handle: WorkerHandle) -> None:
    stream = handle.process.stdout
    if stream is None:
        return
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            handle.stderr_tail.append(line)
            continue
        if payload.get("event") == "ready":
            handle.ready = True
        elif payload.get("event") == "report":
            handle.report = payload


def _collect_stderr(handle: WorkerHandle) -> None:
    stream = handle.process.stderr
    if stream is None:
        return
    for line in stream:
        handle.stderr_tail.append(line.rstrip())
        del handle.stderr_tail[:-20]


def _terminate(handles: List[WorkerHandle]) -> None:
    for handle in handles:
        if handle.process.poll() is None:
            handle.process.terminate()
    deadline = time.monotonic() + TERM_GRACE_S
    for handle in handles:
        remaining = deadline - time.monotonic()
        try:
            handle.process.wait(timeout=max(0.1, remaining))
        except subprocess.TimeoutExpired:
            handle.process.kill()
            handle.process.wait()


def run_cluster(spec: ClusterSpec) -> ClusterResult:
    """Boot the cluster described by ``spec``, wait for it, aggregate results."""
    cleanup_dir: Optional[tempfile.TemporaryDirectory] = None
    if spec.transport == "uds" and not spec.socket_dir:
        cleanup_dir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        spec = dataclasses.replace(spec, socket_dir=cleanup_dir.name)
    if spec.transport == "tcp" and spec.base_port <= 0:
        spec = dataclasses.replace(spec, base_port=_pick_base_port(spec.n))

    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )

    handles: List[WorkerHandle] = []
    threads: List[threading.Thread] = []
    started_at = time.monotonic()
    try:
        for replica_id in spec.committee:
            process = subprocess.Popen(
                _worker_argv(spec, replica_id),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            handle = WorkerHandle(replica_id=replica_id, process=process)
            handles.append(handle)
            for target in (_collect_stdout, _collect_stderr):
                thread = threading.Thread(target=target, args=(handle,), daemon=True)
                thread.start()
                threads.append(thread)

        # Wait until every worker exits, a worker crashes, or the overall
        # budget runs out.  Workers self-terminate once their chain holds the
        # full workload, so the happy path is "all exited 0 with reports".
        deadline = started_at + spec.timeout + TERM_GRACE_S
        while time.monotonic() < deadline:
            states = [handle.process.poll() for handle in handles]
            if all(code is not None for code in states):
                break
            crashed = [handle for handle in handles if handle.crashed]
            if crashed:
                for handle in crashed:
                    log.error(
                        "replica %d crashed (exit code %s)%s",
                        handle.replica_id,
                        handle.process.returncode,
                        (
                            ": " + handle.stderr_tail[-1]
                            if handle.stderr_tail
                            else ""
                        ),
                    )
                _terminate(handles)
                break
            time.sleep(0.05)
        else:
            log.error(
                "cluster timed out after %.1fs; terminating workers", spec.timeout
            )
        _terminate(handles)
        for thread in threads:
            thread.join(timeout=1.0)
    except BaseException:
        _terminate(handles)
        raise
    finally:
        if cleanup_dir is not None:
            cleanup_dir.cleanup()
    duration = time.monotonic() - started_at

    reports = {
        handle.replica_id: handle.report
        for handle in handles
        if handle.report is not None
    }
    crashes = {
        handle.replica_id: handle.process.returncode
        for handle in handles
        if handle.crashed
    }
    total = max(
        (report["total_transactions"] for report in reports.values()),
        default=spec.transactions,
    )
    committed = min(
        (report["committed"] for report in reports.values()), default=0
    )
    pooled: List[float] = []
    for report in reports.values():
        pooled.extend(report.get("commit_latencies_s", ()))
    latency = summarize_latencies(pooled)
    zero_loss = bool(reports) and all(
        report["conserved_ok"] and report["commit_rejected"] == 0
        for report in reports.values()
    )
    ok = (
        not crashes
        and len(reports) == spec.n
        and committed >= total
        and zero_loss
        and all(report["status"] == "ok" for report in reports.values())
    )
    return ClusterResult(
        ok=ok,
        spec=spec,
        duration_s=duration,
        committed=committed,
        total_transactions=total,
        throughput_tx_per_s=(committed / duration if duration > 0 else 0.0),
        latency_p50_s=latency.get("p50") if pooled else None,
        latency_p99_s=latency.get("p99") if pooled else None,
        zero_loss=zero_loss,
        crashes=crashes,
        reports=reports,
    )
