"""UTXO transactions.

A transaction consumes unspent outputs (UTXOs) of one or more source accounts
and produces new outputs for recipient accounts (plus change back to the
sources), exactly as described in §4.2.2.  Transactions are signed by every
source account; the paper pads transactions to roughly 400 bytes (the size it
benchmarks with), which :func:`Transaction.wire_size` models.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import InvalidTransactionError
from repro.crypto.hashing import hash_payload
from repro.crypto.signatures import SignedPayload
from repro.obs.core import current_profiler
from repro.ledger.wallet import (
    Wallet,
    address_matches_material,
    verify_wallet_signature,
)

#: The paper benchmarks with ~400-byte Bitcoin transactions (§5).
PAPER_TX_SIZE_BYTES = 400


@dataclasses.dataclass(frozen=True)
class TxInput:
    """A reference to a UTXO being consumed.

    Attributes:
        utxo_id: identifier of the unspent output (``"<tx_id>:<index>"``).
        account: the account that owns the referenced output.
        amount: the value of the referenced output (recorded for convenience
            and for deposit-based refunds during merges, Alg. 2 line 22).
    """

    utxo_id: str
    account: str
    amount: int

    def to_payload(self) -> Dict[str, Any]:
        return {"utxo_id": self.utxo_id, "account": self.account, "amount": self.amount}


@dataclasses.dataclass(frozen=True)
class TxOutput:
    """A newly created output assigning ``amount`` coins to ``account``."""

    account: str
    amount: int

    def to_payload(self) -> Dict[str, Any]:
        return {"account": self.account, "amount": self.amount}


@dataclasses.dataclass
class Transaction:
    """A signed UTXO transaction.

    Attributes:
        inputs: UTXOs consumed, all owned by the signing source accounts.
        outputs: outputs produced (recipients plus change).
        nonce: strictly increasing per-source sequence number (§4.2.4).
        signatures: one signature per distinct source account over the body.
        public_materials: verification material per source account, embedded
            so validation is self-contained (like Bitcoin's scriptSig).
        signer_names: wallet name per source account (used to bind simulated
            addresses to their verification material).
    """

    inputs: Tuple[TxInput, ...]
    outputs: Tuple[TxOutput, ...]
    nonce: int = 0
    signatures: Dict[str, SignedPayload] = dataclasses.field(default_factory=dict)
    public_materials: Dict[str, Any] = dataclasses.field(default_factory=dict)
    signer_names: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Memoised identity/encoding caches.  Inputs, outputs and the nonce are
    #: fixed at construction (signatures are added later but are not part of
    #: the body hash), so these never go stale.  Transactions are re-hashed on
    #: every proposal digest, confirmation cross-check and block commit — the
    #: hottest non-network path of the simulator — which is why both the id
    #: and the canonical encoding are cached.
    _tx_id: Optional[str] = dataclasses.field(
        default=None, init=False, repr=False, compare=False
    )
    _canonical: Optional[bytes] = dataclasses.field(
        default=None, init=False, repr=False, compare=False
    )
    #: Memoised full-verification outcome, fingerprinted by the signature and
    #: key-material counts: builders add signatures after construction (cache
    #: miss) and tests strip them (count changes, cache miss again).  Replacing
    #: a signature value in place without changing the counts would evade the
    #: fingerprint — nothing in the simulator mutates signatures that way.
    _valid_cache: Optional[Tuple[int, int, bool]] = dataclasses.field(
        default=None, init=False, repr=False, compare=False
    )

    # -- identity ------------------------------------------------------------

    def body_payload(self) -> Dict[str, Any]:
        """The signed portion of the transaction (everything but signatures)."""
        return {
            "inputs": [tx_input.to_payload() for tx_input in self.inputs],
            "outputs": [tx_output.to_payload() for tx_output in self.outputs],
            "nonce": self.nonce,
        }

    @property
    def tx_id(self) -> str:
        """Content-derived transaction identifier (hash of the body)."""
        tx_id = self._tx_id
        if tx_id is None:
            tx_id = hash_payload(self.body_payload())
            self._tx_id = tx_id
        return tx_id

    def to_payload(self) -> Dict[str, Any]:
        return {"tx_id": self.tx_id, "body": self.body_payload()}

    def canonical_bytes_cached(self) -> bytes:
        """Memoised canonical encoding used by :mod:`repro.crypto.hashing`."""
        encoded = self._canonical
        if encoded is None:
            from repro.crypto.hashing import canonical_bytes

            encoded = b"O" + canonical_bytes(self.to_payload())
            self._canonical = encoded
        return encoded

    # -- accessors -----------------------------------------------------------

    @property
    def source_accounts(self) -> Tuple[str, ...]:
        """Distinct source accounts, in first-appearance order."""
        seen: List[str] = []
        for tx_input in self.inputs:
            if tx_input.account not in seen:
                seen.append(tx_input.account)
        return tuple(seen)

    @property
    def recipient_accounts(self) -> Tuple[str, ...]:
        """Distinct recipient accounts, in first-appearance order."""
        seen: List[str] = []
        for tx_output in self.outputs:
            if tx_output.account not in seen:
                seen.append(tx_output.account)
        return tuple(seen)

    def total_input(self) -> int:
        """Sum of the values of all consumed UTXOs."""
        return sum(tx_input.amount for tx_input in self.inputs)

    def total_output(self) -> int:
        """Sum of the values of all produced outputs."""
        return sum(tx_output.amount for tx_output in self.outputs)

    def output_utxo_id(self, index: int) -> str:
        """Identifier of the ``index``-th output once this transaction commits."""
        return f"{self.tx_id}:{index}"

    def wire_size(self) -> int:
        """Approximate serialised size, floored at the paper's 400 bytes."""
        approximate = (
            80 * len(self.inputs) + 48 * len(self.outputs) + 96 * len(self.signatures)
        )
        return max(PAPER_TX_SIZE_BYTES, approximate)

    def conflicts_with(self, other: "Transaction") -> bool:
        """True when the two transactions spend at least one common UTXO."""
        mine = {tx_input.utxo_id for tx_input in self.inputs}
        theirs = {tx_input.utxo_id for tx_input in other.inputs}
        return bool(mine & theirs)

    # -- verification --------------------------------------------------------

    def verify_shape(self) -> None:
        """Check structural validity (no signature or UTXO-existence checks)."""
        if not self.inputs:
            raise InvalidTransactionError("transaction has no inputs")
        if not self.outputs:
            raise InvalidTransactionError("transaction has no outputs")
        if any(tx_output.amount <= 0 for tx_output in self.outputs):
            raise InvalidTransactionError("outputs must carry positive amounts")
        if any(tx_input.amount <= 0 for tx_input in self.inputs):
            raise InvalidTransactionError("inputs must carry positive amounts")
        seen_inputs = {tx_input.utxo_id for tx_input in self.inputs}
        if len(seen_inputs) != len(self.inputs):
            raise InvalidTransactionError("transaction spends the same UTXO twice")
        if self.total_output() > self.total_input():
            raise InvalidTransactionError(
                f"outputs ({self.total_output()}) exceed inputs ({self.total_input()})"
            )

    def verify_signatures(self) -> None:
        """Check that every source account signed the body and owns its address."""
        profiler = current_profiler()
        if profiler is not None:
            with profiler.section("crypto.verify"):
                self._verify_signatures_body()
            return
        self._verify_signatures_body()

    def _verify_signatures_body(self) -> None:
        body = self.body_payload()
        for account in self.source_accounts:
            signed = self.signatures.get(account)
            material = self.public_materials.get(account)
            if signed is None or material is None:
                raise InvalidTransactionError(
                    f"missing signature or key material for source account {account}"
                )
            if not address_matches_material(
                account, signed.scheme, material, self.signer_names.get(account)
            ):
                raise InvalidTransactionError(
                    f"address {account} is not bound to the provided key material"
                )
            if not verify_wallet_signature(body, signed, material):
                raise InvalidTransactionError(
                    f"invalid signature for source account {account}"
                )

    def verify(self) -> None:
        """Full stateless verification: shape plus signatures."""
        self.verify_shape()
        self.verify_signatures()

    def is_valid(self) -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify()
        except InvalidTransactionError:
            return False
        return True

    def is_valid_cached(self) -> bool:
        """Memoised :meth:`is_valid`.

        The simulator passes transaction objects by reference, so the same
        transaction is re-verified at every replica it reaches (proposal
        validation, commit screening, merges).  Signature verification
        dominates that cost; one global check per object is enough.
        """
        fingerprint = (len(self.signatures), len(self.public_materials))
        cached = self._valid_cache
        if cached is not None and cached[:2] == fingerprint:
            return cached[2]
        ok = self.is_valid()
        self._valid_cache = (fingerprint[0], fingerprint[1], ok)
        return ok


def build_transfer(
    wallet: Wallet,
    inputs: Sequence[TxInput],
    recipients: Sequence[Tuple[str, int]],
    nonce: int = 0,
    change_account: Optional[str] = None,
) -> Transaction:
    """Build and sign a single-source transfer.

    Consumes ``inputs`` (which must all belong to ``wallet``) and pays each
    ``(account, amount)`` in ``recipients``; any remaining value goes back to
    ``change_account`` (defaults to the wallet's own address).
    """
    for tx_input in inputs:
        if tx_input.account != wallet.address:
            raise InvalidTransactionError(
                f"input {tx_input.utxo_id} belongs to {tx_input.account}, "
                f"not to {wallet.address}"
            )
    total_in = sum(tx_input.amount for tx_input in inputs)
    total_out = sum(amount for _, amount in recipients)
    if total_out > total_in:
        raise InvalidTransactionError(
            f"cannot send {total_out} from inputs worth {total_in}"
        )
    outputs = [TxOutput(account=account, amount=amount) for account, amount in recipients]
    change = total_in - total_out
    if change > 0:
        outputs.append(
            TxOutput(account=change_account or wallet.address, amount=change)
        )
    transaction = Transaction(
        inputs=tuple(inputs), outputs=tuple(outputs), nonce=nonce
    )
    signed = wallet.sign(transaction.body_payload())
    transaction.signatures[wallet.address] = signed
    transaction.public_materials[wallet.address] = wallet.public_material()
    transaction.signer_names[wallet.address] = wallet.name
    return transaction


def build_multi_source_transfer(
    wallets_and_inputs: Sequence[Tuple[Wallet, Sequence[TxInput]]],
    recipients: Sequence[Tuple[str, int]],
    nonce: int = 0,
) -> Transaction:
    """Build a transfer consuming inputs from several source wallets.

    Change (if any) is returned to the first wallet.
    """
    if not wallets_and_inputs:
        raise InvalidTransactionError("at least one source wallet is required")
    all_inputs: List[TxInput] = []
    for wallet, inputs in wallets_and_inputs:
        for tx_input in inputs:
            if tx_input.account != wallet.address:
                raise InvalidTransactionError(
                    f"input {tx_input.utxo_id} does not belong to wallet {wallet.name}"
                )
            all_inputs.append(tx_input)
    total_in = sum(tx_input.amount for tx_input in all_inputs)
    total_out = sum(amount for _, amount in recipients)
    if total_out > total_in:
        raise InvalidTransactionError("recipients exceed available inputs")
    outputs = [TxOutput(account=account, amount=amount) for account, amount in recipients]
    change = total_in - total_out
    if change > 0:
        outputs.append(
            TxOutput(account=wallets_and_inputs[0][0].address, amount=change)
        )
    transaction = Transaction(
        inputs=tuple(all_inputs), outputs=tuple(outputs), nonce=nonce
    )
    body = transaction.body_payload()
    for wallet, _ in wallets_and_inputs:
        transaction.signatures[wallet.address] = wallet.sign(body)
        transaction.public_materials[wallet.address] = wallet.public_material()
        transaction.signer_names[wallet.address] = wallet.name
    return transaction
