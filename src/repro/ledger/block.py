"""Blocks and the genesis block.

A block batches the transactions decided by one consensus instance.  Because
ZLB solves *Set* Byzantine Consensus, a decided "block" at index ``k`` is the
union of several proposals; the block records which proposers contributed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.types import ReplicaId
from repro.crypto.hashing import hash_payload
from repro.crypto.merkle import merkle_root
from repro.ledger.transaction import Transaction, TxOutput
from repro.ledger.utxo import UTXO


@dataclasses.dataclass
class Block:
    """A block of transactions at a given consensus index.

    Attributes:
        index: the consensus instance that decided this block.
        parent_hash: hash of the previous block on this replica's branch.
        transactions: the decided, validated transactions.
        proposers: replicas whose proposals contributed transactions.
        timestamp: simulated time at which the block was decided.
    """

    index: int
    parent_hash: str
    transactions: Tuple[Transaction, ...]
    proposers: Tuple[ReplicaId, ...] = ()
    timestamp: float = 0.0

    def header_payload(self) -> Dict[str, object]:
        """The hashed block header."""
        return {
            "index": self.index,
            "parent_hash": self.parent_hash,
            "merkle_root": self.merkle_root,
            "proposers": list(self.proposers),
            "tx_count": len(self.transactions),
        }

    @property
    def merkle_root(self) -> str:
        """Merkle root over the transaction ids (computed once per block).

        Blocks are content-immutable after construction — ``transactions`` is
        a tuple and no caller mutates a decided block — so the root is cached
        in the instance dict, keeping repeated header serialisation and
        cross-replica conflict checks off the hashing path.
        """
        cached = self.__dict__.get("_merkle_root")
        if cached is None:
            cached = merkle_root([tx.tx_id for tx in self.transactions])
            self.__dict__["_merkle_root"] = cached
        return cached

    @property
    def block_hash(self) -> str:
        """Content-derived block identifier (computed once per block)."""
        cached = self.__dict__.get("_block_hash")
        if cached is None:
            cached = hash_payload(self.header_payload())
            self.__dict__["_block_hash"] = cached
        return cached

    def to_payload(self) -> Dict[str, object]:
        return self.header_payload()

    def tx_ids(self) -> List[str]:
        """Transaction ids in block order."""
        return [tx.tx_id for tx in self.transactions]

    def conflicts_with(self, other: "Block") -> bool:
        """True when the blocks sit at the same index but differ in content."""
        return self.index == other.index and self.block_hash != other.block_hash

    def total_output_value(self) -> int:
        """Sum of every output in the block — the 'gain' G of Appendix B."""
        return sum(tx.total_output() for tx in self.transactions)


GENESIS_PARENT = "0" * 64


def make_genesis_block(
    allocations: Sequence[Tuple[str, int]], timestamp: float = 0.0
) -> Tuple[Block, List[UTXO]]:
    """Create the genesis block assigning initial balances.

    Returns the block and the initial UTXO set (one UTXO per allocation).  The
    genesis transactions have no inputs; they are exempt from the normal
    verification path and only ever applied at chain construction.
    """
    transactions: List[Transaction] = []
    utxos: List[UTXO] = []
    for index, (account, amount) in enumerate(allocations):
        # The nonce is the allocation index so that identical (account, amount)
        # allocations still yield distinct transactions and distinct UTXO ids.
        transaction = Transaction(
            inputs=(),
            outputs=(TxOutput(account=account, amount=amount),),
            nonce=index,
        )
        transactions.append(transaction)
        utxos.append(
            UTXO(
                utxo_id=transaction.output_utxo_id(0),
                account=account,
                amount=amount,
            )
        )
    block = Block(
        index=0,
        parent_hash=GENESIS_PARENT,
        transactions=tuple(transactions),
        proposers=(),
        timestamp=timestamp,
    )
    return block, utxos
