"""Block merge — Algorithm 2 of the paper.

When a fork is detected, ZLB does not discard the conflicting blocks: it merges
them.  The blockchain record ``Omega`` keeps, next to the chain itself, a
*deposit* funded by the consensus replicas, the set of inputs whose funding had
to come from that deposit, and the set of punished account addresses.  Merging
a conflicting block walks its transactions: inputs that are still spendable are
consumed normally, inputs that were already consumed on the local branch are
refunded from the deposit (Alg. 2 lines 20–22), and outputs reaching punished
accounts are confiscated.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.errors import InvalidTransactionError, LedgerError
from repro.ledger.block import Block, make_genesis_block
from repro.ledger.transaction import Transaction, TxInput
from repro.ledger.utxo import UTXO, UTXOTable


@dataclasses.dataclass
class MergeOutcome:
    """Summary of one call to :meth:`BlockchainRecord.merge_block`."""

    merged_transactions: int = 0
    already_known: int = 0
    refunded_inputs: int = 0
    refunded_amount: int = 0
    confiscated_outputs: int = 0
    deposit_after: int = 0


class BlockchainRecord:
    """The blockchain state ``Omega`` of Algorithm 2.

    Attributes:
        deposit: coins currently held in the shared slashing deposit.
        inputs_deposit: inputs refunded from the deposit, pending reimbursement
            (Alg. 2 ``inputs-deposit``).
        punished_accounts: account addresses belonging to excluded deceitful
            replicas; their future outputs are confiscated into the deposit.
    """

    def __init__(
        self,
        genesis_allocations: Iterable[Tuple[str, int]] = (),
        initial_deposit: int = 0,
    ):
        genesis_block, genesis_utxos = make_genesis_block(list(genesis_allocations))
        self.blocks: List[Block] = [genesis_block]
        self.utxos = UTXOTable(genesis_utxos)
        self.known_tx_ids: Set[str] = {tx.tx_id for tx in genesis_block.transactions}
        self.deposit = initial_deposit
        self.inputs_deposit: Dict[str, TxInput] = {}
        self.punished_accounts: Set[str] = set()
        # Blocks observed on conflicting branches, kept for audit purposes.
        self.merged_blocks: List[Block] = []

    # -- plain chain growth ----------------------------------------------------

    @property
    def height(self) -> int:
        """Index of the latest appended block."""
        return self.blocks[-1].index

    @property
    def head_hash(self) -> str:
        """Hash of the latest appended block."""
        return self.blocks[-1].block_hash

    def contains_tx(self, tx_id: str) -> bool:
        """True when a transaction is already part of the record."""
        return tx_id in self.known_tx_ids

    def validate_for_append(self, transactions: Iterable[Transaction]) -> List[Transaction]:
        """Filter ``transactions`` down to the valid, applicable, non-duplicate ones.

        Used when building a block out of decided proposals: SBC-Validity only
        requires decided transactions to be valid and non-conflicting, so
        invalid or conflicting ones are dropped deterministically here.
        """
        accepted: List[Transaction] = []
        scratch = self.utxos.snapshot()
        for transaction in transactions:
            if transaction.tx_id in self.known_tx_ids:
                continue
            if not transaction.is_valid():
                continue
            if not scratch.can_apply(transaction):
                continue
            # Applying to the scratch table both reserves the consumed inputs
            # (so later conflicting transactions are dropped) and exposes the
            # freshly created outputs to later transactions in the same batch.
            scratch.apply_transaction(transaction)
            accepted.append(transaction)
        return accepted

    def append_block(
        self,
        transactions: Iterable[Transaction],
        proposers: Tuple[int, ...] = (),
        timestamp: float = 0.0,
        validate: bool = True,
    ) -> Block:
        """Append a new block on the local branch, applying its transactions."""
        txs = list(transactions)
        if validate:
            txs = self.validate_for_append(txs)
        block = Block(
            index=self.height + 1,
            parent_hash=self.head_hash,
            transactions=tuple(txs),
            proposers=proposers,
            timestamp=timestamp,
        )
        for transaction in txs:
            self.utxos.apply_transaction(transaction)
            self.known_tx_ids.add(transaction.tx_id)
        self.blocks.append(block)
        self._confiscate_punished_outputs(txs)
        return block

    # -- deposits and punishment ------------------------------------------------

    def fund_deposit(self, amount: int) -> None:
        """Add ``amount`` coins to the shared deposit (replica staking)."""
        if amount < 0:
            raise LedgerError("deposit funding must be non-negative")
        self.deposit += amount

    def punish_account(self, account: str) -> int:
        """Confiscate the account's unspent outputs into the deposit.

        Called by the application layer when the membership change excludes a
        deceitful replica (Alg. 1 line 38).  Returns the confiscated amount.
        """
        self.punished_accounts.add(account)
        confiscated = 0
        for utxo in list(self.utxos.utxos_of(account)):
            self.utxos.remove(utxo.utxo_id)
            confiscated += utxo.amount
        self.deposit += confiscated
        return confiscated

    def _confiscate_punished_outputs(self, transactions: Iterable[Transaction]) -> int:
        """Confiscate freshly created outputs addressed to punished accounts."""
        confiscated = 0
        for transaction in transactions:
            for index, tx_output in enumerate(transaction.outputs):
                if tx_output.account not in self.punished_accounts:
                    continue
                utxo_id = transaction.output_utxo_id(index)
                if self.utxos.contains(utxo_id):
                    self.utxos.remove(utxo_id)
                    self.deposit += tx_output.amount
                    confiscated += 1
        return confiscated

    # -- Algorithm 2: merging a conflicting block --------------------------------

    def merge_block(self, block: Block) -> MergeOutcome:
        """Merge a conflicting block received from another branch (Alg. 2).

        Every transaction not already known is committed through
        ``CommitTxMerge``: spendable inputs are consumed normally; inputs that
        were already spent on the local branch are refunded from the deposit.
        Outputs addressed to punished accounts are confiscated.  Finally,
        ``RefundInputs`` re-fills the deposit with any previously-refunded
        input that has become spendable again.
        """
        outcome = MergeOutcome()
        for transaction in block.transactions:
            if self.contains_tx(transaction.tx_id):
                outcome.already_known += 1
                continue
            self._commit_tx_merge(transaction, outcome)
            outcome.merged_transactions += 1
            for index, tx_output in enumerate(transaction.outputs):
                if tx_output.account in self.punished_accounts:
                    utxo_id = transaction.output_utxo_id(index)
                    if self.utxos.contains(utxo_id):
                        self.utxos.remove(utxo_id)
                        self.deposit += tx_output.amount
                        outcome.confiscated_outputs += 1
        self._refund_inputs(outcome)
        self.merged_blocks.append(block)
        outcome.deposit_after = self.deposit
        return outcome

    def _commit_tx_merge(self, transaction: Transaction, outcome: MergeOutcome) -> None:
        """``CommitTxMerge`` (Alg. 2 lines 17–23)."""
        for tx_input in transaction.inputs:
            if not self.utxos.contains(tx_input.utxo_id):
                # The input was spent on our branch: fund the conflict from the
                # deposit so no honest recipient loses coins.
                self.inputs_deposit[tx_input.utxo_id] = tx_input
                self.deposit -= tx_input.amount
                outcome.refunded_inputs += 1
                outcome.refunded_amount += tx_input.amount
            else:
                self.utxos.remove(tx_input.utxo_id)
        for index, tx_output in enumerate(transaction.outputs):
            utxo_id = transaction.output_utxo_id(index)
            if not self.utxos.contains(utxo_id):
                self.utxos.add(
                    UTXO(
                        utxo_id=utxo_id,
                        account=tx_output.account,
                        amount=tx_output.amount,
                    )
                )
        self.known_tx_ids.add(transaction.tx_id)

    def _refund_inputs(self, outcome: MergeOutcome) -> None:
        """``RefundInputs`` (Alg. 2 lines 24–28)."""
        for utxo_id, tx_input in list(self.inputs_deposit.items()):
            if self.utxos.contains(utxo_id):
                self.utxos.remove(utxo_id)
                self.deposit += tx_input.amount
                del self.inputs_deposit[utxo_id]

    # -- observability ------------------------------------------------------------

    def deposit_shortfall(self) -> int:
        """How far the deposit has gone negative (0 when fully funded).

        A positive shortfall means honest participants would have lost coins;
        the zero-loss analysis (Appendix B) chooses deposits so this stays 0.
        """
        return max(0, -self.deposit)

    def summary(self) -> Dict[str, int]:
        """Counts used by tests and experiment reports."""
        return {
            "height": self.height,
            "transactions": len(self.known_tx_ids),
            "utxos": len(self.utxos),
            "deposit": self.deposit,
            "pending_deposit_inputs": len(self.inputs_deposit),
            "punished_accounts": len(self.punished_accounts),
            "merged_blocks": len(self.merged_blocks),
        }
