"""The blockchain record ``Omega``: execution-validated commits and Algorithm 2.

When a fork is detected, ZLB does not discard the conflicting blocks: it merges
them.  The blockchain record keeps, next to the chain itself, a *deposit*
funded by the consensus replicas, the set of inputs whose funding had to come
from that deposit, and the set of punished account addresses.  Merging a
conflicting block walks its transactions: inputs that are still spendable are
consumed normally, inputs that were already consumed on the local branch are
refunded from the deposit (Alg. 2 lines 20–22), and outputs reaching punished
accounts are confiscated.

Two properties make the record *execution-validated*:

* **Stateful screening.**  Appends filter each block through a copy-on-write
  :class:`~repro.ledger.utxo.UTXOView` of the branch state (duplicates,
  structurally invalid transactions, intra-block double spends and unknown
  inputs are dropped and counted), and merges reject *phantom* transactions —
  ones whose inputs never existed anywhere in this record's history.  A
  phantom input is not a double spend: refunding it from the deposit would let
  an attacker mint claims against coins that were never at risk, so it is
  rejected instead of funded.
* **Fork awareness.**  Every state mutation is journalled (created ids,
  consumed UTXOs), so :meth:`view_at` can reconstruct the UTXO view at any
  block height as a cheap overlay.  Reconciliation replays the remote branch
  on a view based at the fork point, tracking the branch's divergent balances,
  and accounts the coalition's *actually realised* gain — the value of inputs
  genuinely spent on both branches — which is what the zero-loss analysis of
  Appendix B must compare against the seized deposits.

Merged transactions are fully verified — shape, signatures and execution
semantics.  A conflicting branch may have been decided by a colluding quorum
alone, so its content cannot be assumed to have passed any honest proposal
validator; signature verification is memoised per transaction object
(:meth:`~repro.ledger.transaction.Transaction.is_valid_cached`), so the common
case — transactions already verified at submission or proposal time — pays a
fingerprint comparison, not a re-verification.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import InvalidTransactionError, LedgerError
from repro.ledger.block import Block, make_genesis_block
from repro.ledger.transaction import Transaction, TxInput
from repro.ledger.utxo import UTXO, UTXOTable, UTXOView


@dataclasses.dataclass
class AppendReport:
    """Outcome of screening a batch of transactions for append.

    ``accepted`` apply cleanly, in order, to the branch view; the counters
    classify everything dropped.
    """

    accepted: List[Transaction] = dataclasses.field(default_factory=list)
    #: Already part of the record (benign redelivery, not an attack).
    duplicate: int = 0
    #: Structurally invalid or failing signature verification.
    invalid: int = 0
    #: Inputs spent earlier on this branch or by an earlier transaction of the
    #: same batch — a double-spend attempt.
    conflicting: int = 0
    #: Inputs that never existed in this record's history.
    phantom: int = 0

    @property
    def rejected(self) -> int:
        """Transactions dropped for any reason other than duplication."""
        return self.invalid + self.conflicting + self.phantom


@dataclasses.dataclass
class MergeOutcome:
    """Summary of one call to :meth:`BlockchainRecord.merge_block`."""

    merged_transactions: int = 0
    already_known: int = 0
    refunded_inputs: int = 0
    refunded_amount: int = 0
    confiscated_outputs: int = 0
    deposit_after: int = 0
    #: Transactions rejected by execution validation (shape or phantom inputs).
    rejected_transactions: int = 0
    #: Inputs referencing UTXOs that never existed in this record's history.
    phantom_inputs: int = 0
    #: Net value the coalition actually realised through this merge: deposit
    #: refunds for genuinely double-spent inputs, minus refunds recovered when
    #: a previously-funded input became spendable again (Alg. 2 lines 24–28).
    realized_gain: int = 0
    #: Per-account balance change of the remote branch relative to the fork
    #: base (the divergent balances the conflicting branch created).  Only
    #: populated when the caller knows the fork point — without one there is
    #: no base to diverge from.
    branch_balance_deltas: Dict[str, int] = dataclasses.field(default_factory=dict)


class BlockchainRecord:
    """The blockchain state ``Omega`` of Algorithm 2.

    Attributes:
        deposit: coins currently held in the shared slashing deposit.
        inputs_deposit: inputs refunded from the deposit, pending reimbursement
            (Alg. 2 ``inputs-deposit``).
        punished_accounts: account addresses belonging to excluded deceitful
            replicas; their future outputs are confiscated into the deposit.
        realized_attack_gain: cumulative value the coalition actually realised
            against this record (deposit-funded double spends, net of refunds).
        seized_total: cumulative value confiscated from punished accounts.
    """

    def __init__(
        self,
        genesis_allocations: Iterable[Tuple[str, int]] = (),
        initial_deposit: int = 0,
        genesis: Optional[Tuple[Block, Sequence[UTXO]]] = None,
    ):
        if genesis is not None:
            # A prebuilt genesis (block, utxos) lets a deployment hash the
            # genesis transactions once and share them across every replica's
            # record instead of rebuilding per replica.
            genesis_block, genesis_utxos = genesis
        else:
            genesis_block, genesis_utxos = make_genesis_block(list(genesis_allocations))
        self.blocks: List[Block] = [genesis_block]
        self.utxos = UTXOTable(genesis_utxos)
        self.known_tx_ids: Set[str] = {tx.tx_id for tx in genesis_block.transactions}
        self.deposit = initial_deposit
        self.inputs_deposit: Dict[str, TxInput] = {}
        self.punished_accounts: Set[str] = set()
        # Blocks observed on conflicting branches, kept for audit purposes.
        self.merged_blocks: List[Block] = []
        #: Every UTXO ever consumed on this record (spent, merged or seized),
        #: by id — distinguishes a genuine double spend (input consumed here)
        #: from a phantom input (never existed).
        self._consumed: Dict[str, UTXO] = {}
        #: Journal of state mutations as (created_ids, consumed_utxos) deltas;
        #: ``_height_seq[h]`` is the journal length right after block ``h``
        #: committed, so :meth:`view_at` can rewind to any height.
        self._journal: List[Tuple[Tuple[str, ...], Tuple[UTXO, ...]]] = []
        self._height_seq: Dict[int, int] = {genesis_block.index: 0}
        self.realized_attack_gain = 0
        self.seized_total = 0

    # -- plain chain growth ----------------------------------------------------

    @property
    def height(self) -> int:
        """Index of the latest appended block."""
        return self.blocks[-1].index

    @property
    def head_hash(self) -> str:
        """Hash of the latest appended block."""
        return self.blocks[-1].block_hash

    def contains_tx(self, tx_id: str) -> bool:
        """True when a transaction is already part of the record."""
        return tx_id in self.known_tx_ids

    def _record_delta(
        self, created_ids: Iterable[str], consumed: Iterable[UTXO]
    ) -> None:
        """Journal one mutation, cancelling transient outputs (created and
        consumed within the same delta) so rewinding never sees them."""
        consumed = list(consumed)
        for utxo in consumed:
            self._consumed[utxo.utxo_id] = utxo
        transient = set(created_ids) & {utxo.utxo_id for utxo in consumed}
        durable_created = tuple(uid for uid in created_ids if uid not in transient)
        durable_consumed = tuple(
            utxo for utxo in consumed if utxo.utxo_id not in transient
        )
        self._journal.append((durable_created, durable_consumed))

    # -- validation ------------------------------------------------------------

    def filter_for_append(
        self, transactions: Iterable[Transaction], assume_verified: bool = False
    ) -> AppendReport:
        """Screen ``transactions`` against the branch state before appending.

        SBC-Validity only requires decided transactions to be valid and
        non-conflicting, so offending ones are dropped deterministically and
        classified in the returned :class:`AppendReport`.  ``assume_verified``
        skips the (expensive) signature re-verification for transactions that
        already passed it upstream — the deployment pipeline verifies at
        mempool submission and again at proposal validation, so the commit
        path only re-checks shape and execution semantics.
        """
        report = AppendReport()
        view = self.utxos.overlay()
        batch_tx_ids: Set[str] = set()
        batch_spent: Set[str] = set()
        for transaction in transactions:
            if (
                transaction.tx_id in self.known_tx_ids
                or transaction.tx_id in batch_tx_ids
            ):
                report.duplicate += 1
                continue
            try:
                transaction.verify_shape()
            except InvalidTransactionError:
                report.invalid += 1
                continue
            if not assume_verified and not transaction.is_valid_cached():
                report.invalid += 1
                continue
            missing = [
                tx_input.utxo_id
                for tx_input in transaction.inputs
                if not view.contains(tx_input.utxo_id)
            ]
            if missing:
                # A missing input that was consumed — on this branch or by an
                # earlier transaction of this batch — is a double-spend
                # attempt; one that never existed anywhere is phantom.
                if any(
                    uid not in self._consumed and uid not in batch_spent
                    for uid in missing
                ):
                    report.phantom += 1
                else:
                    report.conflicting += 1
                continue
            try:
                # Applying to the view both reserves the consumed inputs (so
                # later conflicting transactions are dropped) and exposes the
                # freshly created outputs to later transactions in the batch.
                view.apply_transaction(transaction)
            except InvalidTransactionError:
                # Input exists but its account/amount disagree with the table.
                report.invalid += 1
                continue
            report.accepted.append(transaction)
            batch_tx_ids.add(transaction.tx_id)
            batch_spent.update(tx_input.utxo_id for tx_input in transaction.inputs)
        return report

    def validate_for_append(
        self, transactions: Iterable[Transaction]
    ) -> List[Transaction]:
        """Filter ``transactions`` down to the valid, applicable, non-duplicate
        ones (the list-only form of :meth:`filter_for_append`)."""
        return self.filter_for_append(transactions).accepted

    def append_block(
        self,
        transactions: Iterable[Transaction],
        proposers: Tuple[int, ...] = (),
        timestamp: float = 0.0,
        validate: bool = True,
        assume_verified: bool = False,
    ) -> Block:
        """Append a new block on the local branch, applying its transactions.

        With ``validate=False`` the caller vouches that the transactions were
        already screened with :meth:`filter_for_append` against the current
        state; the batch is then applied without re-checking.
        """
        txs = list(transactions)
        if validate:
            txs = self.filter_for_append(txs, assume_verified=assume_verified).accepted
        block = Block(
            index=self.height + 1,
            parent_hash=self.head_hash,
            transactions=tuple(txs),
            proposers=proposers,
            timestamp=timestamp,
        )
        created_ids: List[str] = []
        consumed: List[UTXO] = []
        for transaction in txs:
            consumed_tx, created_tx = self.utxos.apply_validated(transaction)
            consumed.extend(consumed_tx)
            created_ids.extend(utxo.utxo_id for utxo in created_tx)
            self.known_tx_ids.add(transaction.tx_id)
        self.blocks.append(block)
        consumed.extend(self._confiscate_punished_outputs(txs))
        self._record_delta(created_ids, consumed)
        self._height_seq[block.index] = len(self._journal)
        return block

    # -- fork-aware views -------------------------------------------------------

    def view_at(self, height: int) -> UTXOView:
        """Copy-on-write view of the UTXO state right after block ``height``.

        Rewinds the journal on top of the live table — O(mutations since
        ``height``), independent of table size.
        """
        seq = self._height_seq.get(height)
        if seq is None:
            raise LedgerError(f"no block at height {height}")
        view = self.utxos.overlay()
        for created_ids, consumed in reversed(self._journal[seq:]):
            for utxo_id in created_ids:
                if view.contains(utxo_id):
                    view.remove(utxo_id)
            for utxo in consumed:
                if not view.contains(utxo.utxo_id):
                    view.add(utxo)
        return view

    def branch_view(self, fork_height: Optional[int] = None) -> UTXOView:
        """View a conflicting branch starts from: the state at the fork point
        (or the current state when the fork point is unknown)."""
        if fork_height is None:
            return self.utxos.overlay()
        fork_height = max(0, min(fork_height, self.height))
        return self.view_at(fork_height)

    # -- deposits and punishment ------------------------------------------------

    def fund_deposit(self, amount: int) -> None:
        """Add ``amount`` coins to the shared deposit (replica staking)."""
        if amount < 0:
            raise LedgerError("deposit funding must be non-negative")
        self.deposit += amount

    def punish_account(self, account: str) -> int:
        """Confiscate the account's unspent outputs into the deposit.

        Called by the application layer when the membership change excludes a
        deceitful replica (Alg. 1 line 38).  Returns the confiscated amount.
        """
        self.punished_accounts.add(account)
        confiscated = 0
        seized: List[UTXO] = []
        for utxo in list(self.utxos.utxos_of(account)):
            self.utxos.remove(utxo.utxo_id)
            seized.append(utxo)
            confiscated += utxo.amount
        if seized:
            self._record_delta((), seized)
        self.deposit += confiscated
        self.seized_total += confiscated
        return confiscated

    def _confiscate_punished_outputs(
        self, transactions: Iterable[Transaction]
    ) -> List[UTXO]:
        """Confiscate freshly created outputs addressed to punished accounts;
        returns the seized UTXOs (for the caller's journal entry)."""
        seized: List[UTXO] = []
        for transaction in transactions:
            for index, tx_output in enumerate(transaction.outputs):
                if tx_output.account not in self.punished_accounts:
                    continue
                utxo_id = transaction.output_utxo_id(index)
                if self.utxos.contains(utxo_id):
                    seized.append(self.utxos.remove(utxo_id))
                    self.deposit += tx_output.amount
                    self.seized_total += tx_output.amount
        return seized

    # -- Algorithm 2: merging a conflicting block --------------------------------

    def merge_block(
        self, block: Block, fork_height: Optional[int] = None
    ) -> MergeOutcome:
        """Merge a conflicting block received from another branch (Alg. 2).

        Every transaction not already known is screened (shape, phantom
        inputs) and committed through ``CommitTxMerge``: spendable inputs are
        consumed normally; inputs that were genuinely consumed on the local
        branch are refunded from the deposit — that refund is the coalition's
        *realised gain*.  Transactions whose inputs never existed in this
        record's history are rejected: funding them would mint deposit claims
        for coins that were never at risk.  Outputs addressed to punished
        accounts are confiscated.  Finally, ``RefundInputs`` re-fills the
        deposit with any previously-refunded input that has become spendable
        again.

        ``fork_height`` (when known) bases the remote branch's copy-on-write
        view at the fork point, so the outcome reports the branch's divergent
        balances relative to the common prefix.
        """
        outcome = MergeOutcome()
        # Remote-branch replay (divergent balances) only makes sense relative
        # to a known fork point; merging without one skips the bookkeeping.
        # The replay runs on an overlay stacked on the fork-base view, so its
        # balance deltas describe the remote branch alone (not the rewind).
        branch_state = (
            self.branch_view(fork_height).overlay() if fork_height is not None else None
        )
        created_ids: List[str] = []
        consumed: List[UTXO] = []
        # Inputs consumed earlier *within this merge* (the journal's consumed
        # index is only written at the end): a later transaction of the same
        # block spending one of them is a genuine double spend to refund, not
        # a phantom to reject.
        merge_spent: Set[str] = set()
        # The loop below runs once per conflicting transaction on the merge
        # bench's hottest path; bind the per-iteration lookups once.
        known_tx_ids = self.known_tx_ids
        utxos_contains = self.utxos.contains
        consumed_index = self._consumed
        punished = self.punished_accounts
        for transaction in block.transactions:
            if transaction.tx_id in known_tx_ids:
                outcome.already_known += 1
                if branch_state is not None:
                    self._track_branch(branch_state, transaction)
                continue
            if not transaction.is_valid_cached():
                # Full verification, signatures included: the remote branch
                # may have been decided by a colluding quorum alone, so its
                # content never passed any honest proposal validator.  The
                # check is memoised per transaction object, so the common
                # case (transactions verified at proposal time) costs a
                # fingerprint comparison.
                outcome.rejected_transactions += 1
                continue
            phantom = 0
            for tx_input in transaction.inputs:
                uid = tx_input.utxo_id
                if (
                    not utxos_contains(uid)
                    and uid not in consumed_index
                    and uid not in merge_spent
                ):
                    phantom += 1
            if phantom:
                outcome.rejected_transactions += 1
                outcome.phantom_inputs += phantom
                continue
            # Replay on the remote branch's view *before* the canonical commit
            # mutates the live table the view overlays.
            if branch_state is not None:
                self._track_branch(branch_state, transaction)
            before = len(consumed)
            self._commit_tx_merge(transaction, outcome, created_ids, consumed)
            outcome.merged_transactions += 1
            if punished:
                for index, tx_output in enumerate(transaction.outputs):
                    if tx_output.account in punished:
                        utxo_id = transaction.output_utxo_id(index)
                        if utxos_contains(utxo_id):
                            consumed.append(self.utxos.remove(utxo_id))
                            self.deposit += tx_output.amount
                            self.seized_total += tx_output.amount
                            outcome.confiscated_outputs += 1
            if len(consumed) > before:
                merge_spent.update(utxo.utxo_id for utxo in consumed[before:])
        self._refund_inputs(outcome, consumed)
        self.merged_blocks.append(block)
        self._record_delta(created_ids, consumed)
        outcome.deposit_after = self.deposit
        if branch_state is not None:
            outcome.branch_balance_deltas = branch_state.balance_deltas()
        return outcome

    @staticmethod
    def _track_branch(
        branch_state: Optional[UTXOView], transaction: Transaction
    ) -> None:
        """Best-effort replay of a merged transaction on the remote branch's
        copy-on-write view (divergent-balance accounting only)."""
        if branch_state is None or not branch_state.can_apply(transaction):
            return
        try:
            branch_state.apply_transaction(transaction)
        except (InvalidTransactionError, LedgerError):
            pass

    def _commit_tx_merge(
        self,
        transaction: Transaction,
        outcome: MergeOutcome,
        created_ids: List[str],
        consumed: List[UTXO],
    ) -> None:
        """``CommitTxMerge`` (Alg. 2 lines 17–23)."""
        utxos = self.utxos
        utxos_contains = utxos.contains
        inputs_deposit = self.inputs_deposit
        for tx_input in transaction.inputs:
            uid = tx_input.utxo_id
            if utxos_contains(uid):
                consumed.append(utxos.remove(uid))
            else:
                # The input was genuinely spent on our branch (phantom inputs
                # were screened out above): fund the conflict from the deposit
                # so no honest recipient loses coins.  This is the coalition
                # actually realising a double spend.
                inputs_deposit[uid] = tx_input
                amount = tx_input.amount
                self.deposit -= amount
                outcome.refunded_inputs += 1
                outcome.refunded_amount += amount
                outcome.realized_gain += amount
                self.realized_attack_gain += amount
        for index, tx_output in enumerate(transaction.outputs):
            utxo_id = transaction.output_utxo_id(index)
            # Outputs have positive amounts by shape validation, so the
            # membership test here licenses the unchecked insert.
            if not utxos_contains(utxo_id):
                utxos._insert(
                    UTXO(
                        utxo_id=utxo_id,
                        account=tx_output.account,
                        amount=tx_output.amount,
                    )
                )
                created_ids.append(utxo_id)
        self.known_tx_ids.add(transaction.tx_id)

    def _refund_inputs(self, outcome: MergeOutcome, consumed: List[UTXO]) -> None:
        """``RefundInputs`` (Alg. 2 lines 24–28)."""
        utxos_contains = self.utxos.contains
        for utxo_id, tx_input in list(self.inputs_deposit.items()):
            if utxos_contains(utxo_id):
                consumed.append(self.utxos.remove(utxo_id))
                self.deposit += tx_input.amount
                outcome.realized_gain -= tx_input.amount
                self.realized_attack_gain -= tx_input.amount
                del self.inputs_deposit[utxo_id]

    # -- observability ------------------------------------------------------------

    def deposit_shortfall(self) -> int:
        """How far the deposit has gone negative (0 when fully funded).

        A positive shortfall means honest participants would have lost coins;
        the zero-loss analysis (Appendix B) chooses deposits so this stays 0.
        """
        return max(0, -self.deposit)

    def summary(self) -> Dict[str, int]:
        """Counts used by tests and experiment reports."""
        return {
            "height": self.height,
            "transactions": len(self.known_tx_ids),
            "utxos": len(self.utxos),
            "deposit": self.deposit,
            "pending_deposit_inputs": len(self.inputs_deposit),
            "punished_accounts": len(self.punished_accounts),
            "merged_blocks": len(self.merged_blocks),
            "realized_attack_gain": self.realized_attack_gain,
            "seized_total": self.seized_total,
        }
