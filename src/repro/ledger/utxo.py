"""The in-memory UTXO table and its copy-on-write views.

§4.2.2: "the balance of each account in the system is stored in the form of a
UTXO table ... Each replica can typically access the UTXO table directly in
memory for faster execution of transactions."  The table maps UTXO identifiers
to :class:`UTXO` records and supports the operations the Blockchain Manager
needs: applying a non-conflicting transaction, answering whether a given input
is currently spendable (used during merges), and spawning cheap
:class:`UTXOView` overlays so proposal validation and per-branch fork state
never copy the whole table.

Account indices and balances are maintained incrementally: the table keeps an
ordered per-account id set (O(1) insert and remove) and memoised per-account
balances plus the total supply, so ``balance()`` and ``total_supply()`` are
dictionary lookups instead of scans.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.common.errors import InvalidTransactionError, LedgerError
from repro.ledger.transaction import Transaction, TxInput


@dataclasses.dataclass(frozen=True)
class UTXO:
    """An unspent transaction output."""

    utxo_id: str
    account: str
    amount: int

    def as_input(self) -> TxInput:
        """Return a :class:`TxInput` consuming this output."""
        return TxInput(utxo_id=self.utxo_id, account=self.account, amount=self.amount)

    def to_payload(self) -> Dict[str, object]:
        return {
            "utxo_id": self.utxo_id,
            "account": self.account,
            "amount": self.amount,
        }


def _check_inputs_against_state(state, transaction: Transaction) -> None:
    """Raise unless every input is spendable in ``state`` (a table or view)
    and its recorded account/amount agree with the stored UTXO — the single
    validation rule shared by the table commit path and overlay screening."""
    for tx_input in transaction.inputs:
        utxo = state.get(tx_input.utxo_id)
        if utxo is None:
            raise InvalidTransactionError(
                f"input {tx_input.utxo_id} is not spendable"
            )
        if utxo.account != tx_input.account or utxo.amount != tx_input.amount:
            raise InvalidTransactionError(
                f"input {tx_input.utxo_id} does not match the UTXO table"
            )


class UTXOTable:
    """Mutable mapping of unspent outputs with incremental account indexing."""

    __slots__ = ("_by_id", "_by_account", "_balance", "_supply")

    def __init__(self, initial: Iterable[UTXO] = ()):
        self._by_id: Dict[str, UTXO] = {}
        # Ordered id set per account (dict keys preserve insertion order and
        # delete in O(1), unlike the list.remove scan this replaces).
        self._by_account: Dict[str, Dict[str, None]] = {}
        self._balance: Dict[str, int] = {}
        self._supply = 0
        for utxo in initial:
            self.add(utxo)

    # -- basic operations ----------------------------------------------------

    def add(self, utxo: UTXO) -> None:
        """Insert a new unspent output; duplicates are rejected."""
        if utxo.utxo_id in self._by_id:
            raise LedgerError(f"UTXO {utxo.utxo_id} already present")
        if utxo.amount <= 0:
            raise LedgerError(f"UTXO {utxo.utxo_id} must have positive amount")
        self._insert(utxo)

    def _insert(self, utxo: UTXO) -> None:
        """Unchecked insert; the caller guarantees the id is absent and the
        amount positive (the merge commit path has just tested both)."""
        self._by_id[utxo.utxo_id] = utxo
        self._by_account.setdefault(utxo.account, {})[utxo.utxo_id] = None
        self._balance[utxo.account] = self._balance.get(utxo.account, 0) + utxo.amount
        self._supply += utxo.amount

    def remove(self, utxo_id: str) -> UTXO:
        """Consume (remove) the UTXO with the given id."""
        utxo = self._by_id.pop(utxo_id, None)
        if utxo is None:
            raise LedgerError(f"UTXO {utxo_id} is not spendable")
        account_ids = self._by_account.get(utxo.account)
        if account_ids is not None:
            account_ids.pop(utxo_id, None)
            if not account_ids:
                del self._by_account[utxo.account]
        remaining = self._balance.get(utxo.account, 0) - utxo.amount
        if remaining:
            self._balance[utxo.account] = remaining
        else:
            self._balance.pop(utxo.account, None)
        self._supply -= utxo.amount
        return utxo

    def contains(self, utxo_id: str) -> bool:
        """True when the output is currently unspent."""
        return utxo_id in self._by_id

    def get(self, utxo_id: str) -> Optional[UTXO]:
        """Return the UTXO or None when already spent/unknown."""
        return self._by_id.get(utxo_id)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[UTXO]:
        return iter(self._by_id.values())

    # -- account views -------------------------------------------------------

    def balance(self, account: str) -> int:
        """Total unspent value held by ``account`` (memoised)."""
        return self._balance.get(account, 0)

    def balances(self) -> Dict[str, int]:
        """Per-account balances (a copy of the memoised index)."""
        return dict(self._balance)

    def utxos_of(self, account: str) -> List[UTXO]:
        """All unspent outputs of ``account`` (insertion order)."""
        return [self._by_id[utxo_id] for utxo_id in self._by_account.get(account, ())]

    def select_inputs(self, account: str, amount: int) -> List[TxInput]:
        """Greedily select inputs of ``account`` covering at least ``amount``.

        Raises :class:`InvalidTransactionError` when the balance is too low.
        The selection consumes as many (largest-first) UTXOs as needed, which
        keeps the table compact as the paper recommends.
        """
        if amount <= 0:
            raise InvalidTransactionError("amount must be positive")
        if self.balance(account) < amount:
            raise InvalidTransactionError(
                f"account {account} holds {self.balance(account)}, "
                f"cannot cover {amount}"
            )
        candidates = sorted(
            self.utxos_of(account), key=lambda utxo: utxo.amount, reverse=True
        )
        selected: List[TxInput] = []
        covered = 0
        # The balance pre-check guarantees the loop reaches ``amount``.
        for utxo in candidates:
            selected.append(utxo.as_input())
            covered += utxo.amount
            if covered >= amount:
                break
        return selected

    # -- transaction application ---------------------------------------------

    def can_apply(self, transaction: Transaction) -> bool:
        """True when every input of ``transaction`` is currently spendable."""
        return all(self.contains(tx_input.utxo_id) for tx_input in transaction.inputs)

    def apply_transaction(self, transaction: Transaction) -> List[UTXO]:
        """Atomically consume the inputs and create the outputs.

        Raises :class:`InvalidTransactionError` when any input is not
        spendable or recorded amounts disagree with the table; on failure the
        table is left untouched.
        """
        _check_inputs_against_state(self, transaction)
        _, created = self.apply_validated(transaction)
        return created

    def apply_validated(self, transaction: Transaction) -> Tuple[List[UTXO], List[UTXO]]:
        """Apply a transaction already validated against this state.

        Skips the input/table cross-checks of :meth:`apply_transaction` (the
        batch commit path validates whole blocks against a
        :class:`UTXOView` first) and returns ``(consumed, created)`` so the
        caller can journal the state delta.  An unspendable input still
        raises, but may leave the table partially mutated — only call this
        with pre-validated transactions.
        """
        consumed = [self.remove(tx_input.utxo_id) for tx_input in transaction.inputs]
        created: List[UTXO] = []
        for index, tx_output in enumerate(transaction.outputs):
            utxo = UTXO(
                utxo_id=transaction.output_utxo_id(index),
                account=tx_output.account,
                amount=tx_output.amount,
            )
            self.add(utxo)
            created.append(utxo)
        return consumed, created

    def total_supply(self) -> int:
        """Sum of every unspent output — conserved by valid transactions."""
        return self._supply

    def overlay(self) -> "UTXOView":
        """Return a copy-on-write view of the table (O(1))."""
        return UTXOView(self)

    def snapshot(self) -> "UTXOTable":
        """Return an independent full copy of the table.

        Prefer :meth:`overlay` for validation scratch state — a snapshot
        copies every entry, an overlay only records its own changes.
        """
        return UTXOTable(initial=list(self._by_id.values()))

    def to_payload(self) -> List[Dict[str, object]]:
        return [utxo.to_payload() for utxo in sorted(self._by_id.values(), key=lambda u: u.utxo_id)]


class UTXOView:
    """A copy-on-write overlay over a base :class:`UTXOTable` or another view.

    The view records only its own additions and removals; reads fall through
    to the base.  It backs the three places the ledger pipeline needs scratch
    or divergent state without paying for a full copy:

    * stateful proposal validation (does this batch apply to my branch?),
    * the append path's intra-block conflict screening, and
    * per-branch fork state during reconciliation (the remote branch's view
      of balances while its blocks are merged).

    Views are cheap to create and discard; committing one is simply applying
    the accepted transactions to the base table.
    """

    __slots__ = ("_base", "_added", "_removed", "_balance_delta")

    def __init__(self, base):
        self._base = base
        self._added: Dict[str, UTXO] = {}
        self._removed: Set[str] = set()
        self._balance_delta: Dict[str, int] = {}

    # -- reads ---------------------------------------------------------------

    def contains(self, utxo_id: str) -> bool:
        if utxo_id in self._removed:
            return False
        return utxo_id in self._added or self._base.contains(utxo_id)

    def get(self, utxo_id: str) -> Optional[UTXO]:
        if utxo_id in self._removed:
            return None
        utxo = self._added.get(utxo_id)
        if utxo is not None:
            return utxo
        return self._base.get(utxo_id)

    def balance(self, account: str) -> int:
        """Balance of ``account`` in this view (base plus local delta)."""
        return self._base.balance(account) + self._balance_delta.get(account, 0)

    def __len__(self) -> int:
        return len(self._base) + len(self._added) - len(self._removed)

    # -- writes --------------------------------------------------------------

    def _credit(self, account: str, amount: int) -> None:
        delta = self._balance_delta.get(account, 0) + amount
        if delta:
            self._balance_delta[account] = delta
        else:
            self._balance_delta.pop(account, None)

    def add(self, utxo: UTXO) -> None:
        """Insert a new unspent output into the view; duplicates rejected."""
        if self.contains(utxo.utxo_id):
            raise LedgerError(f"UTXO {utxo.utxo_id} already present")
        if utxo.amount <= 0:
            raise LedgerError(f"UTXO {utxo.utxo_id} must have positive amount")
        # Re-adding an id this view removed from the base (the merge refund
        # path) only needs the removal marker cleared; shadowing it in
        # ``_added`` as well would survive a later ``remove``.
        if utxo.utxo_id in self._removed and self._base.contains(utxo.utxo_id):
            self._removed.discard(utxo.utxo_id)
        else:
            self._added[utxo.utxo_id] = utxo
        self._credit(utxo.account, utxo.amount)

    def remove(self, utxo_id: str) -> UTXO:
        """Consume (remove) the UTXO with the given id from the view."""
        utxo = self.get(utxo_id)
        if utxo is None:
            raise LedgerError(f"UTXO {utxo_id} is not spendable")
        if utxo_id in self._added:
            del self._added[utxo_id]
        else:
            self._removed.add(utxo_id)
        self._credit(utxo.account, -utxo.amount)
        return utxo

    # -- transaction application ---------------------------------------------

    def can_apply(self, transaction: Transaction) -> bool:
        """True when every input of ``transaction`` is spendable in the view."""
        return all(self.contains(tx_input.utxo_id) for tx_input in transaction.inputs)

    def apply_transaction(self, transaction: Transaction) -> List[UTXO]:
        """Consume the inputs and create the outputs within the view.

        Same checks as :meth:`UTXOTable.apply_transaction`; on failure the
        view is left untouched.
        """
        _check_inputs_against_state(self, transaction)
        for tx_input in transaction.inputs:
            self.remove(tx_input.utxo_id)
        created: List[UTXO] = []
        for index, tx_output in enumerate(transaction.outputs):
            utxo = UTXO(
                utxo_id=transaction.output_utxo_id(index),
                account=tx_output.account,
                amount=tx_output.amount,
            )
            self.add(utxo)
            created.append(utxo)
        return created

    def overlay(self) -> "UTXOView":
        """A copy-on-write view stacked on this view."""
        return UTXOView(self)

    # -- introspection -------------------------------------------------------

    def added_utxos(self) -> List[UTXO]:
        """Outputs created in this view (not present in the base)."""
        return list(self._added.values())

    def removed_ids(self) -> Set[str]:
        """Base outputs consumed by this view."""
        return set(self._removed)

    def balance_deltas(self) -> Dict[str, int]:
        """Per-account balance change of this view relative to its base."""
        return dict(self._balance_delta)
