"""The in-memory UTXO table.

§4.2.2: "the balance of each account in the system is stored in the form of a
UTXO table ... Each replica can typically access the UTXO table directly in
memory for faster execution of transactions."  The table maps UTXO identifiers
to :class:`UTXO` records and supports the two operations the Blockchain
Manager needs: applying a non-conflicting transaction and answering whether a
given input is currently spendable (used during merges).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional

from repro.common.errors import InvalidTransactionError, LedgerError
from repro.ledger.transaction import Transaction, TxInput


@dataclasses.dataclass(frozen=True)
class UTXO:
    """An unspent transaction output."""

    utxo_id: str
    account: str
    amount: int

    def as_input(self) -> TxInput:
        """Return a :class:`TxInput` consuming this output."""
        return TxInput(utxo_id=self.utxo_id, account=self.account, amount=self.amount)

    def to_payload(self) -> Dict[str, object]:
        return {
            "utxo_id": self.utxo_id,
            "account": self.account,
            "amount": self.amount,
        }


class UTXOTable:
    """Mutable mapping of unspent outputs with per-account indexing."""

    def __init__(self, initial: Iterable[UTXO] = ()):
        self._by_id: Dict[str, UTXO] = {}
        self._by_account: Dict[str, List[str]] = {}
        for utxo in initial:
            self.add(utxo)

    # -- basic operations ----------------------------------------------------

    def add(self, utxo: UTXO) -> None:
        """Insert a new unspent output; duplicates are rejected."""
        if utxo.utxo_id in self._by_id:
            raise LedgerError(f"UTXO {utxo.utxo_id} already present")
        if utxo.amount <= 0:
            raise LedgerError(f"UTXO {utxo.utxo_id} must have positive amount")
        self._by_id[utxo.utxo_id] = utxo
        self._by_account.setdefault(utxo.account, []).append(utxo.utxo_id)

    def remove(self, utxo_id: str) -> UTXO:
        """Consume (remove) the UTXO with the given id."""
        utxo = self._by_id.pop(utxo_id, None)
        if utxo is None:
            raise LedgerError(f"UTXO {utxo_id} is not spendable")
        account_list = self._by_account.get(utxo.account, [])
        if utxo_id in account_list:
            account_list.remove(utxo_id)
            if not account_list:
                del self._by_account[utxo.account]
        return utxo

    def contains(self, utxo_id: str) -> bool:
        """True when the output is currently unspent."""
        return utxo_id in self._by_id

    def get(self, utxo_id: str) -> Optional[UTXO]:
        """Return the UTXO or None when already spent/unknown."""
        return self._by_id.get(utxo_id)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[UTXO]:
        return iter(self._by_id.values())

    # -- account views -------------------------------------------------------

    def balance(self, account: str) -> int:
        """Total unspent value held by ``account``."""
        return sum(
            self._by_id[utxo_id].amount
            for utxo_id in self._by_account.get(account, ())
        )

    def utxos_of(self, account: str) -> List[UTXO]:
        """All unspent outputs of ``account`` (insertion order)."""
        return [self._by_id[utxo_id] for utxo_id in self._by_account.get(account, ())]

    def select_inputs(self, account: str, amount: int) -> List[TxInput]:
        """Greedily select inputs of ``account`` covering at least ``amount``.

        Raises :class:`InvalidTransactionError` when the balance is too low.
        The selection consumes as many (largest-first) UTXOs as needed, which
        keeps the table compact as the paper recommends.
        """
        if amount <= 0:
            raise InvalidTransactionError("amount must be positive")
        candidates = sorted(
            self.utxos_of(account), key=lambda utxo: utxo.amount, reverse=True
        )
        selected: List[TxInput] = []
        covered = 0
        for utxo in candidates:
            selected.append(utxo.as_input())
            covered += utxo.amount
            if covered >= amount:
                return selected
        raise InvalidTransactionError(
            f"account {account} holds {covered}, cannot cover {amount}"
        )

    # -- transaction application ---------------------------------------------

    def can_apply(self, transaction: Transaction) -> bool:
        """True when every input of ``transaction`` is currently spendable."""
        return all(self.contains(tx_input.utxo_id) for tx_input in transaction.inputs)

    def apply_transaction(self, transaction: Transaction) -> List[UTXO]:
        """Atomically consume the inputs and create the outputs.

        Raises :class:`InvalidTransactionError` when any input is not
        spendable or recorded amounts disagree with the table; on failure the
        table is left untouched.
        """
        consumed: List[UTXO] = []
        for tx_input in transaction.inputs:
            utxo = self.get(tx_input.utxo_id)
            if utxo is None:
                raise InvalidTransactionError(
                    f"input {tx_input.utxo_id} is not spendable"
                )
            if utxo.account != tx_input.account or utxo.amount != tx_input.amount:
                raise InvalidTransactionError(
                    f"input {tx_input.utxo_id} does not match the UTXO table"
                )
            consumed.append(utxo)
        for utxo in consumed:
            self.remove(utxo.utxo_id)
        created: List[UTXO] = []
        for index, tx_output in enumerate(transaction.outputs):
            utxo = UTXO(
                utxo_id=transaction.output_utxo_id(index),
                account=tx_output.account,
                amount=tx_output.amount,
            )
            self.add(utxo)
            created.append(utxo)
        return created

    def total_supply(self) -> int:
        """Sum of every unspent output — conserved by valid transactions."""
        return sum(utxo.amount for utxo in self._by_id.values())

    def snapshot(self) -> "UTXOTable":
        """Return an independent copy of the table."""
        return UTXOTable(initial=list(self._by_id.values()))

    def to_payload(self) -> List[Dict[str, object]]:
        return [utxo.to_payload() for utxo in sorted(self._by_id.values(), key=lambda u: u.utxo_id)]
