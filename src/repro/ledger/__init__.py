"""The ledger substrate: UTXO transactions, blocks, mempool and block merging.

ZLB inherits Bitcoin's UTXO model (§4.2.2): account balances live in a UTXO
table kept in memory, transactions consume UTXOs of the source accounts and
produce new ones for the recipients.  The distinguishing piece is
:mod:`repro.ledger.merge`: instead of discarding one branch of a fork, the
Blockchain Manager merges conflicting blocks and refunds conflicting inputs
from the deposits of the deceitful replicas (Alg. 2 of the paper).
"""

from repro.ledger.transaction import Transaction, TxInput, TxOutput
from repro.ledger.wallet import Wallet
from repro.ledger.utxo import UTXO, UTXOTable
from repro.ledger.block import Block, make_genesis_block
from repro.ledger.mempool import Mempool
from repro.ledger.merge import BlockchainRecord, MergeOutcome
from repro.ledger.workload import TransferWorkload, double_spend_pair

__all__ = [
    "Transaction",
    "TxInput",
    "TxOutput",
    "Wallet",
    "UTXO",
    "UTXOTable",
    "Block",
    "make_genesis_block",
    "Mempool",
    "BlockchainRecord",
    "MergeOutcome",
    "TransferWorkload",
    "double_spend_pair",
]
