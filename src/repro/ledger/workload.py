"""Workload generators: streams of payment transactions for experiments.

Two generators cover the paper's needs:

* :class:`TransferWorkload` — a population of funded accounts issuing random
  transfers (the throughput workload of §5.1, 400-byte Bitcoin transactions).
* :func:`double_spend_pair` — two conflicting transactions spending the same
  UTXO towards different recipients (the double-spend scenario of Fig. 1 and
  the block-merge workload of Table 1).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.ledger.block import make_genesis_block
from repro.ledger.transaction import Transaction, build_transfer
from repro.ledger.utxo import UTXOTable
from repro.ledger.wallet import Wallet


class TransferWorkload:
    """A funded population of wallets issuing random unit transfers.

    Each account is funded with many independent UTXOs of exactly
    ``transfer_amount`` coins and every generated transfer consumes one of
    them whole (no change output).  This keeps generated transactions mutually
    independent: a transfer never spends the output of an earlier workload
    transfer, so two branches of a fork never conflict on workload traffic —
    only deliberate double spends (the attack workloads) conflict, matching
    how the paper reasons about the attacker's gain per block.
    """

    def __init__(
        self,
        num_accounts: int = 32,
        initial_balance: int = 1_000_000,
        transfer_amount: int = 10,
        seed: int = 0,
        use_ecdsa: bool = False,
        utxos_per_account: int = 128,
    ):
        if num_accounts < 2:
            raise ConfigurationError("need at least two accounts to transfer")
        if initial_balance <= 0 or transfer_amount <= 0:
            raise ConfigurationError("balances and amounts must be positive")
        if utxos_per_account <= 0:
            raise ConfigurationError("utxos_per_account must be positive")
        self.rng = random.Random(seed)
        self.transfer_amount = transfer_amount
        self.wallets: List[Wallet] = [
            Wallet(name=f"workload-{seed}-{index}", use_ecdsa=use_ecdsa)
            for index in range(num_accounts)
        ]
        self._nonces: Dict[str, int] = {wallet.address: 0 for wallet in self.wallets}
        chunks = max(1, min(utxos_per_account, initial_balance // transfer_amount))
        genesis_allocations = [
            (wallet.address, transfer_amount)
            for wallet in self.wallets
            for _ in range(chunks)
        ]
        self.genesis_allocations = genesis_allocations
        _, genesis_utxos = make_genesis_block(genesis_allocations)
        self.view = UTXOTable(genesis_utxos)
        # Only genesis UTXOs are ever selected, so transfers stay independent.
        self._spendable: Dict[str, List[str]] = {}
        for utxo in genesis_utxos:
            self._spendable.setdefault(utxo.account, []).append(utxo.utxo_id)

    def next_transaction(self) -> Transaction:
        """Generate one valid transfer between two random distinct accounts."""
        funded = [w for w in self.wallets if self._spendable.get(w.address)]
        if not funded:
            raise ConfigurationError("workload exhausted: no account can pay")
        sender = self.rng.choice(funded)
        recipient = sender
        while recipient is sender:
            recipient = self.rng.choice(self.wallets)
        utxo_id = self._spendable[sender.address].pop(0)
        utxo = self.view.get(utxo_id)
        assert utxo is not None
        nonce = self._nonces[sender.address]
        self._nonces[sender.address] += 1
        transaction = build_transfer(
            wallet=sender,
            inputs=[utxo.as_input()],
            recipients=[(recipient.address, self.transfer_amount)],
            nonce=nonce,
        )
        self.view.apply_transaction(transaction)
        return transaction

    def batch(self, count: int) -> List[Transaction]:
        """Generate ``count`` sequential transactions."""
        return [self.next_transaction() for _ in range(count)]


def double_spend_pair(
    amount: int = 1_000_000, seed: int = 0, use_ecdsa: bool = False
) -> Tuple[Transaction, Transaction, List[Tuple[str, int]]]:
    """Return two conflicting transactions spending the same UTXO.

    Mirrors the running example of Fig. 1: Alice holds ``amount`` and tries to
    pay both Bob and Carol with the same coins.  Returns ``(tx_to_bob,
    tx_to_carol, genesis_allocations)`` where the allocations fund Alice.
    """
    alice = Wallet(name=f"alice-{seed}", use_ecdsa=use_ecdsa)
    bob = Wallet(name=f"bob-{seed}", use_ecdsa=use_ecdsa)
    carol = Wallet(name=f"carol-{seed}", use_ecdsa=use_ecdsa)
    allocations = [(alice.address, amount)]
    _, genesis_utxos = make_genesis_block(allocations)
    view = UTXOTable(genesis_utxos)
    inputs = view.select_inputs(alice.address, amount)
    tx_to_bob = build_transfer(
        wallet=alice, inputs=inputs, recipients=[(bob.address, amount)], nonce=0
    )
    tx_to_carol = build_transfer(
        wallet=alice, inputs=inputs, recipients=[(carol.address, amount)], nonce=1
    )
    return tx_to_bob, tx_to_carol, allocations


def conflicting_blocks_workload(
    num_transactions: int, seed: int = 0
) -> Tuple[List[Transaction], List[Transaction], List[Tuple[str, int]]]:
    """Build two lists of pairwise-conflicting transactions (Table 1 workload).

    Every position ``i`` holds two transactions spending the same UTXO towards
    different recipients, so merging the second block after applying the first
    exercises the deposit-refund path for every transaction — the paper's
    worst case "all transactions conflicting".
    """
    rng = random.Random(seed)
    payers = [Wallet(name=f"payer-{seed}-{i}") for i in range(num_transactions)]
    receivers_a = [Wallet(name=f"recv-a-{seed}-{i}") for i in range(num_transactions)]
    receivers_b = [Wallet(name=f"recv-b-{seed}-{i}") for i in range(num_transactions)]
    amount = 100
    allocations = [(payer.address, amount) for payer in payers]
    _, genesis_utxos = make_genesis_block(allocations)
    view = UTXOTable(genesis_utxos)
    branch_a: List[Transaction] = []
    branch_b: List[Transaction] = []
    for index, payer in enumerate(payers):
        inputs = view.select_inputs(payer.address, amount)
        value = rng.randint(1, amount)
        branch_a.append(
            build_transfer(
                wallet=payer,
                inputs=inputs,
                recipients=[(receivers_a[index].address, value)],
                nonce=0,
            )
        )
        branch_b.append(
            build_transfer(
                wallet=payer,
                inputs=inputs,
                recipients=[(receivers_b[index].address, value)],
                nonce=1,
            )
        )
    return branch_a, branch_b, allocations
