"""Client wallets: account keys and transaction signing.

Accounts are permissionless clients (§4.2): anyone can create a wallet and
submit transactions to any replica.  A wallet owns a key pair; its *address*
identifies the account inside transactions and the UTXO table.

Two key flavours mirror the replica-side schemes:

* ECDSA wallets (``use_ecdsa=True``) derive the address from the hash of the
  public key, exactly like Bitcoin; verification is self-contained.
* Simulated wallets (default) use the fast keyed-hash scheme.  The address is
  derived from the wallet name and the verification material is shared
  simulation infrastructure (see DESIGN.md §2 on substitutions); within the
  simulation no component ever forges another account's signature, so UTXO
  safety arguments are unaffected.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Tuple

from repro.crypto.hashing import hash_payload
from repro.crypto.signatures import (
    EcdsaSigner,
    SignedPayload,
    SimulatedSigner,
    scheme_for,
)

_wallet_counter = itertools.count()


class Wallet:
    """An account key pair able to sign transaction bodies."""

    def __init__(self, name: Optional[str] = None, use_ecdsa: bool = False,
                 seed: Optional[int] = None):
        if name is None:
            name = f"account-{next(_wallet_counter)}"
        self.name = name
        self._use_ecdsa = use_ecdsa
        if use_ecdsa:
            from repro.crypto.ecdsa import ecdsa_generate_keypair

            keypair = ecdsa_generate_keypair(seed=seed)
            self._signer = EcdsaSigner(replica=name, keypair=keypair)  # type: ignore[arg-type]
            self.address = "acct-" + hash_payload(
                ["wallet-address", keypair.public_key]
            )[:40]
        else:
            self._signer = SimulatedSigner(replica=name)  # type: ignore[arg-type]
            self.address = "acct-" + hash_payload(["wallet-address", name])[:40]

    def public_material(self) -> Any:
        """Verification material to embed in transactions."""
        return self._signer.public_material()

    @property
    def scheme(self) -> str:
        """Name of the signature scheme used by this wallet."""
        return self._signer.scheme_name

    def sign(self, payload: Any) -> SignedPayload:
        """Sign an arbitrary payload (normally a transaction body)."""
        return self._signer.sign(payload)

    def __repr__(self) -> str:
        return f"Wallet(name={self.name!r}, address={self.address!r})"


def verify_wallet_signature(
    payload: Any, signed: SignedPayload, public_material: Any
) -> bool:
    """Verify a wallet signature given the embedded public material."""
    try:
        scheme = scheme_for(signed.scheme)
    except Exception:
        return False
    return scheme.verify(payload, signed, public_material)


def address_matches_material(
    address: str, scheme: str, public_material: Any, signer_name: Any
) -> bool:
    """Check that an address is bound to the provided verification material.

    For ECDSA wallets the address commits to the public key.  For simulated
    wallets the address commits to the wallet name carried as the signer id.
    """
    if scheme == EcdsaSigner.scheme_name:
        expected = "acct-" + hash_payload(["wallet-address", public_material])[:40]
    else:
        expected = "acct-" + hash_payload(["wallet-address", signer_name])[:40]
    return address == expected
