"""The mempool: pending client transactions awaiting inclusion in a proposal.

Replicas batch pending requests into proposals of ``batch_size`` transactions
(the paper uses 10,000 per proposal).  The mempool deduplicates by transaction
id, preserves arrival order and drops transactions once they are decided.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional

from repro.ledger.transaction import Transaction


class Mempool:
    """An ordered, deduplicating pool of pending transactions."""

    def __init__(self, max_size: Optional[int] = None):
        self._pending: "OrderedDict[str, Transaction]" = OrderedDict()
        self.max_size = max_size
        self.dropped = 0

    def add(self, transaction: Transaction) -> bool:
        """Add a transaction; returns False when duplicate or pool is full."""
        if transaction.tx_id in self._pending:
            return False
        if self.max_size is not None and len(self._pending) >= self.max_size:
            self.dropped += 1
            return False
        self._pending[transaction.tx_id] = transaction
        return True

    def add_all(self, transactions: Iterable[Transaction]) -> int:
        """Add many transactions; returns how many were accepted."""
        return sum(1 for tx in transactions if self.add(tx))

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._pending

    def peek_batch(self, batch_size: int) -> List[Transaction]:
        """Return (without removing) the next ``batch_size`` transactions."""
        batch: List[Transaction] = []
        for transaction in self._pending.values():
            if len(batch) >= batch_size:
                break
            batch.append(transaction)
        return batch

    def take_batch(self, batch_size: int) -> List[Transaction]:
        """Remove and return the next ``batch_size`` transactions."""
        batch = self.peek_batch(batch_size)
        for transaction in batch:
            del self._pending[transaction.tx_id]
        return batch

    def remove_decided(self, tx_ids: Iterable[str]) -> int:
        """Drop transactions that have been decided elsewhere; returns count."""
        removed = 0
        for tx_id in tx_ids:
            if self._pending.pop(tx_id, None) is not None:
                removed += 1
        return removed

    def clear(self) -> None:
        """Empty the pool."""
        self._pending.clear()
