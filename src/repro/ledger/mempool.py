"""The mempool: pending client transactions awaiting inclusion in a proposal.

Replicas batch pending requests into proposals of ``batch_size`` transactions
(the paper uses 10,000 per proposal).  The mempool deduplicates by transaction
id, preserves arrival order and drops transactions once they are decided.

Occupancy is tracked incrementally — ``len()`` in transactions and
:attr:`Mempool.pending_bytes` in estimated wire bytes — and gauge hooks
(:meth:`Mempool.add_gauge_hook`) fire after every mutation so telemetry
gauges and live-observability samplers can mirror the pool without polling
it.  Multiple subscribers coexist: the telemetry layer and the obs plane
each register their own hook.
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import islice
from typing import Callable, Iterable, List, Optional

from repro.ledger.transaction import Transaction


class Mempool:
    """An ordered, deduplicating pool of pending transactions."""

    def __init__(self, max_size: Optional[int] = None):
        self._pending: "OrderedDict[str, Transaction]" = OrderedDict()
        self._pending_bytes = 0
        self.max_size = max_size
        #: Transactions rejected because the pool was full.
        self.dropped = 0
        #: Transactions rejected because their id was already pending.
        self.duplicates = 0
        #: Hooks invoked with the pool after every mutation (telemetry
        #: gauges, obs samplers).  Kept as a list so subscribers compose.
        self._gauge_hooks: List[Callable[["Mempool"], None]] = []

    @property
    def gauge_hook(self) -> Optional[Callable[["Mempool"], None]]:
        """The first registered hook (legacy single-subscriber view)."""
        return self._gauge_hooks[0] if self._gauge_hooks else None

    @gauge_hook.setter
    def gauge_hook(self, hook: Optional[Callable[["Mempool"], None]]) -> None:
        # Legacy assignment semantics: replace every subscriber (None clears).
        self._gauge_hooks = [hook] if hook is not None else []

    def add_gauge_hook(self, hook: Callable[["Mempool"], None]) -> None:
        """Subscribe ``hook`` to mutations without displacing other hooks."""
        self._gauge_hooks.append(hook)

    @property
    def pending_bytes(self) -> int:
        """Estimated wire size of every pending transaction."""
        return self._pending_bytes

    def _notify(self) -> None:
        for hook in self._gauge_hooks:
            hook(self)

    def add(self, transaction: Transaction) -> bool:
        """Add a transaction; returns False when duplicate or pool is full."""
        if transaction.tx_id in self._pending:
            self.duplicates += 1
            return False
        if self.max_size is not None and len(self._pending) >= self.max_size:
            self.dropped += 1
            return False
        self._pending[transaction.tx_id] = transaction
        self._pending_bytes += transaction.wire_size()
        self._notify()
        return True

    def add_all(self, transactions: Iterable[Transaction]) -> int:
        """Add many transactions; returns how many were accepted."""
        return sum(1 for tx in transactions if self.add(tx))

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._pending

    def peek_batch(self, batch_size: int) -> List[Transaction]:
        """Return (without removing) the next ``batch_size`` transactions."""
        if batch_size <= 0:
            return []
        return list(islice(self._pending.values(), batch_size))

    def take_batch(self, batch_size: int) -> List[Transaction]:
        """Remove and return the next ``batch_size`` transactions.

        The batch list is built once (by :meth:`peek_batch`); removal walks
        the same list.
        """
        batch = self.peek_batch(batch_size)
        for transaction in batch:
            del self._pending[transaction.tx_id]
            self._pending_bytes -= transaction.wire_size()
        if batch:
            self._notify()
        return batch

    def remove_decided(self, tx_ids: Iterable[str]) -> int:
        """Drop transactions that have been decided elsewhere; returns count."""
        removed = 0
        for tx_id in tx_ids:
            transaction = self._pending.pop(tx_id, None)
            if transaction is not None:
                self._pending_bytes -= transaction.wire_size()
                removed += 1
        if removed:
            self._notify()
        return removed

    def clear(self) -> None:
        """Empty the pool."""
        if not self._pending:
            return
        self._pending.clear()
        self._pending_bytes = 0
        self._notify()
