"""Figure 4: disagreeing decisions per committee size under both coalition attacks.

Top plot: the binary consensus attack; bottom plot: the reliable broadcast
attack.  Each cell runs the full ZLB stack with ``d = ceil(5n/9) - 1`` and
``q = 0``, injecting the given delay distribution between the partitions of
honest replicas, and counts the disagreeing proposals observed by honest
replicas before the membership change recovers the system.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.config import FaultConfig
from repro.experiments.common import attack_sizes, sweep_seeds
from repro.zlb.system import AttackSpec, SystemResult, ZLBSystem

#: The delay distributions of Figure 4.
FIG4_DELAYS: Sequence[str] = ("200ms", "500ms", "1000ms", "gamma", "aws")


def run_attack_cell(
    n: int,
    attack_kind: str,
    cross_partition_delay: str,
    seed: int = 1,
    instances: int = 2,
    max_time: float = 300.0,
    max_events: Optional[int] = None,
    benign: int = 0,
    deceitful: Optional[int] = None,
    delay: str = "aws",
    workload_transactions: Optional[int] = None,
    batch_size: int = 10,
    telemetry=None,
) -> SystemResult:
    """One Figure 4 cell: one run of ZLB under one attack and one delay.

    ``delay`` is the base model between non-partitioned links (the paper uses
    the AWS-like distribution); ``workload_transactions`` defaults to the
    paper's 12 transfers per replica.  ``telemetry`` optionally instruments
    the run with a :class:`~repro.telemetry.TelemetryRegistry` (defaults to
    the active registry, usually None).
    """
    if deceitful is None:
        fault_config = FaultConfig.paper_attack(n, benign=benign)
    else:
        fault_config = FaultConfig(
            n=n, deceitful=deceitful, benign=benign, enforce_model=False
        )
    system = ZLBSystem.create(
        fault_config,
        seed=seed,
        delay=delay,
        attack=AttackSpec(kind=attack_kind, cross_partition_delay=cross_partition_delay),
        workload_transactions=(
            12 * n if workload_transactions is None else workload_transactions
        ),
        batch_size=batch_size,
        max_time=max_time,
        max_events=max_events,
        telemetry=telemetry,
    )
    return system.run_instances(instances, until=max_time)


def fig4_specs(
    attack_kind: str = "binary",
    sizes: Optional[List[int]] = None,
    delays: Optional[Sequence[str]] = None,
    instances: int = 2,
    max_time: float = 300.0,
    seeds: Optional[Sequence[int]] = None,
):
    """Expand one Figure 4 panel into scenario specs (delay-major order).

    Each cell carries the paper's workload (12 transfers per replica)
    explicitly, so the spec hash records exactly what the cell runs.
    """
    from repro.scenarios.registry import expand_grid

    return [
        spec.with_overrides(workload_transactions=12 * spec.n)
        for spec in expand_grid(
            "fig4",
            {
                "cross_partition_delay": tuple(delays or FIG4_DELAYS),
                "n": tuple(sizes or attack_sizes()),
                "seed": tuple(seeds or sweep_seeds()),
            },
            base={"attack": attack_kind, "instances": instances, "max_time": max_time},
        )
    ]


def run_fig4(
    attack_kind: str = "binary",
    sizes: Optional[List[int]] = None,
    delays: Optional[Sequence[str]] = None,
    instances: int = 2,
    max_time: float = 300.0,
) -> List[Dict[str, object]]:
    """One Figure 4 panel: rows of (delay, n) -> disagreements.

    The sweep is declared through the scenario registry (family ``fig4``) and
    executed one cell per (delay, n, seed); this wrapper aggregates the cells
    back into the figure's (delay, n) rows.  ``recovered`` is True when *any*
    seed's run recovered (the pre-registry version reported whichever seed
    happened to run last).
    """
    from repro.scenarios.runner import run_specs

    sizes = list(sizes or attack_sizes())
    delays = list(delays or FIG4_DELAYS)
    cells = run_specs(
        fig4_specs(attack_kind, sizes, delays, instances=instances, max_time=max_time)
    )
    rows: List[Dict[str, object]] = []
    for delay in delays:
        for n in sizes:
            group = [c for c in cells if c["delay"] == delay and c["n"] == n]
            disagreements = [c["disagreements"] for c in group]
            rows.append(
                {
                    "attack": attack_kind,
                    "delay": delay,
                    "n": n,
                    "disagreements": max(disagreements),
                    "mean_disagreements": sum(disagreements) / len(disagreements),
                    "recovered": any(c["recovered"] for c in group),
                }
            )
    return rows
