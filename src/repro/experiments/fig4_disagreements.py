"""Figure 4: disagreeing decisions per committee size under both coalition attacks.

Top plot: the binary consensus attack; bottom plot: the reliable broadcast
attack.  Each cell runs the full ZLB stack with ``d = ceil(5n/9) - 1`` and
``q = 0``, injecting the given delay distribution between the partitions of
honest replicas, and counts the disagreeing proposals observed by honest
replicas before the membership change recovers the system.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.config import FaultConfig
from repro.experiments.common import attack_sizes, sweep_seeds
from repro.zlb.system import AttackSpec, SystemResult, ZLBSystem

#: The delay distributions of Figure 4.
FIG4_DELAYS: Sequence[str] = ("200ms", "500ms", "1000ms", "gamma", "aws")


def run_attack_cell(
    n: int,
    attack_kind: str,
    cross_partition_delay: str,
    seed: int = 1,
    instances: int = 2,
    max_time: float = 300.0,
    benign: int = 0,
    deceitful: Optional[int] = None,
) -> SystemResult:
    """One Figure 4 cell: one run of ZLB under one attack and one delay."""
    if deceitful is None:
        fault_config = FaultConfig.paper_attack(n, benign=benign)
    else:
        fault_config = FaultConfig(
            n=n, deceitful=deceitful, benign=benign, enforce_model=False
        )
    system = ZLBSystem.create(
        fault_config,
        seed=seed,
        delay="aws",
        attack=AttackSpec(kind=attack_kind, cross_partition_delay=cross_partition_delay),
        workload_transactions=12 * n,
        batch_size=10,
        max_time=max_time,
    )
    return system.run_instances(instances, until=max_time)


def run_fig4(
    attack_kind: str = "binary",
    sizes: Optional[List[int]] = None,
    delays: Optional[Sequence[str]] = None,
    instances: int = 2,
    max_time: float = 300.0,
) -> List[Dict[str, object]]:
    """One Figure 4 panel: rows of (delay, n) -> disagreements."""
    sizes = sizes or attack_sizes()
    delays = delays or FIG4_DELAYS
    rows: List[Dict[str, object]] = []
    for delay in delays:
        for n in sizes:
            disagreements: List[int] = []
            for seed in sweep_seeds():
                result = run_attack_cell(
                    n,
                    attack_kind,
                    delay,
                    seed=seed,
                    instances=instances,
                    max_time=max_time,
                )
                disagreements.append(result.disagreements)
            rows.append(
                {
                    "attack": attack_kind,
                    "delay": delay,
                    "n": n,
                    "disagreements": max(disagreements),
                    "mean_disagreements": sum(disagreements) / len(disagreements),
                    "recovered": result.recovered,
                }
            )
    return rows
