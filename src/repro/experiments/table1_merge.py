"""Table 1: time to merge two fully-conflicting blocks locally.

The paper reports 0.55 ms / 4.20 ms / 41.38 ms for blocks of 100 / 1,000 /
10,000 transactions where *every* transaction conflicts (the worst case: each
merged input must be refunded from the deposit).  The measurement is a local
wall-clock time — no networking involved.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from repro.ledger.block import Block
from repro.ledger.merge import BlockchainRecord
from repro.ledger.workload import conflicting_blocks_workload

#: Block sizes of Table 1.
TABLE1_SIZES: Sequence[int] = (100, 1_000, 10_000)


def build_merge_fixture(num_transactions: int, seed: int = 0):
    """Prepare a record that applied branch A and the conflicting branch-B block."""
    branch_a, branch_b, allocations = conflicting_blocks_workload(
        num_transactions, seed=seed
    )
    record = BlockchainRecord(
        genesis_allocations=allocations,
        initial_deposit=100 * num_transactions,
    )
    record.append_block(branch_a)
    conflicting_block = Block(
        index=1, parent_hash="other-branch", transactions=tuple(branch_b)
    )
    return record, conflicting_block


def merge_two_blocks(num_transactions: int, seed: int = 0) -> float:
    """Return the wall-clock seconds to merge one fully-conflicting block."""
    record, conflicting_block = build_merge_fixture(num_transactions, seed=seed)
    start = time.perf_counter()
    outcome = record.merge_block(conflicting_block)
    elapsed = time.perf_counter() - start
    assert outcome.merged_transactions == num_transactions
    return elapsed


def table1_specs(
    sizes: Sequence[int] = TABLE1_SIZES, seeds: Sequence[int] = (0, 1, 2)
):
    """Expand the Table 1 sweep into scenario specs (single source of truth
    for both :func:`run_table1` and the registry's ``table1`` family grid)."""
    from repro.scenarios.registry import expand_grid

    return expand_grid("table1", {"blocksize": tuple(sizes), "seed": tuple(seeds)})


def run_table1(
    sizes: Sequence[int] = TABLE1_SIZES, repetitions: int = 3
) -> List[Dict[str, float]]:
    """Table 1 rows: block size -> merge time in milliseconds (best of N).

    Declared through the scenario registry (family ``table1``): one cell per
    (block size, repetition seed), aggregated here into best/mean times.
    """
    from repro.scenarios.runner import run_specs

    cells = run_specs(table1_specs(sizes, seeds=tuple(range(repetitions))))
    rows: List[Dict[str, float]] = []
    for size in sizes:
        samples = [
            c["merge_time_ms"] for c in cells if c["blocksize_txs"] == size
        ]
        rows.append(
            {
                "blocksize_txs": size,
                "merge_time_ms": round(min(samples), 3),
                "mean_merge_time_ms": round(sum(samples) / len(samples), 3),
            }
        )
    return rows
