"""Shared experiment configuration: sweep sizes per scale (see DESIGN.md §5)."""

from __future__ import annotations

from typing import List, Optional

from repro.common.config import experiment_scale

#: Committee sizes of the paper's figures (10..90/100 replicas).
PAPER_FIGURE_SIZES: List[int] = [10, 20, 30, 40, 50, 60, 70, 80, 90]
PAPER_ATTACK_SIZES: List[int] = [20, 40, 60, 80, 100]

#: Reduced sweeps for the message-level attack simulations (pure Python).
SMALL_FIGURE_SIZES: List[int] = [10, 20, 40, 60, 90]
SMALL_ATTACK_SIZES: List[int] = [9, 12, 18]


def figure_sizes(scale: Optional[str] = None) -> List[int]:
    """Committee sizes for model-level figures (Fig. 3, Fig. 6 theory)."""
    scale = scale or experiment_scale()
    return list(PAPER_FIGURE_SIZES if scale == "full" else SMALL_FIGURE_SIZES)


def attack_sizes(scale: Optional[str] = None) -> List[int]:
    """Committee sizes for message-level attack simulations (Fig. 4, 5, §5.3)."""
    scale = scale or experiment_scale()
    return list(PAPER_ATTACK_SIZES if scale == "full" else SMALL_ATTACK_SIZES)


#: Seeds of the full-scale sweeps (the paper averages 3–5 runs).
PAPER_SWEEP_SEEDS: List[int] = [1, 2, 3]


def sweep_seeds(scale: Optional[str] = None) -> List[int]:
    """Seeds per configuration (the paper averages 3–5 runs)."""
    scale = scale or experiment_scale()
    return list(PAPER_SWEEP_SEEDS) if scale == "full" else [1]
