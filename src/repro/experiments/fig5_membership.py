"""Figure 5: time to detect, exclude, include and catch up.

The first three series come from the same attack runs as Figure 4: the time
for honest replicas to gather ``ceil(n/3)`` proofs of fraud (detect), the
duration of the exclusion consensus and the duration of the inclusion
consensus.  The catch-up series measures the time a newly included replica
needs to verify the certificates of the blocks it is handed, as a function of
the number of blocks and the committee size.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.consensus.certificates import Certificate, VoteKind, make_vote
from repro.crypto.keys import KeyRegistry
from repro.experiments.common import attack_sizes, sweep_seeds
from repro.experiments.fig4_disagreements import run_attack_cell

#: Delay distributions of Figure 5 (left three plots).
FIG5_DELAYS: Sequence[str] = ("gamma", "aws", "500ms", "1000ms")


def run_fig5(
    sizes: Optional[List[int]] = None,
    delays: Optional[Sequence[str]] = None,
    attack_kind: str = "binary",
    instances: int = 2,
    max_time: float = 300.0,
) -> List[Dict[str, object]]:
    """Detect / exclude / include times per delay distribution and size."""
    sizes = sizes or attack_sizes()
    delays = delays or FIG5_DELAYS
    rows: List[Dict[str, object]] = []
    for delay in delays:
        for n in sizes:
            detect: List[float] = []
            exclude: List[float] = []
            include: List[float] = []
            for seed in sweep_seeds():
                result = run_attack_cell(
                    n,
                    attack_kind,
                    delay,
                    seed=seed,
                    instances=instances,
                    max_time=max_time,
                )
                if result.detect_time is not None:
                    detect.append(result.detect_time)
                if result.exclusion_time is not None:
                    exclude.append(result.exclusion_time)
                if result.inclusion_time is not None:
                    include.append(result.inclusion_time)
            rows.append(
                {
                    "delay": delay,
                    "n": n,
                    "detect_s": round(sum(detect) / len(detect), 3) if detect else None,
                    "exclude_s": (
                        round(sum(exclude) / len(exclude), 3) if exclude else None
                    ),
                    "include_s": (
                        round(sum(include) / len(include), 3) if include else None
                    ),
                }
            )
    return rows


def run_catchup_timing(
    sizes: Optional[Sequence[int]] = None,
    block_counts: Sequence[int] = (10, 20, 30),
    votes_per_certificate: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Figure 5 (right): wall-clock time to verify a catch-up of N blocks.

    A new replica joining after a membership change must verify one quorum
    certificate per block; the certificate size grows with the committee, which
    is why the catch-up time grows roughly linearly with ``n``.
    """
    sizes = sizes or attack_sizes()
    rows: List[Dict[str, object]] = []
    for n in sizes:
        keys = KeyRegistry.provision(range(n))

        class _Host:
            def __init__(self, replica_id: int):
                self.replica_id = replica_id

            def sign(self, payload):
                return keys.signer_for(self.replica_id).sign(payload)

            def verify(self, payload, signed):
                return keys.registry.verify(payload, signed)

        quorum = votes_per_certificate or (2 * n // 3 + 1)
        hosts = [_Host(i) for i in range(n)]
        certificate = Certificate.from_votes(
            make_vote(hosts[i], "catchup:block", 0, VoteKind.AUX, "digest")
            for i in range(quorum)
        )
        verifier = hosts[0]
        for blocks in block_counts:
            start = time.perf_counter()
            for _ in range(blocks):
                certificate.verify(verifier, committee=range(n))
            elapsed = time.perf_counter() - start
            rows.append(
                {"n": n, "blocks": blocks, "catchup_s": round(elapsed, 4)}
            )
    return rows
