"""Figure 5: time to detect, exclude, include and catch up.

The first three series come from the same attack runs as Figure 4: the time
for honest replicas to gather ``ceil(n/3)`` proofs of fraud (detect), the
duration of the exclusion consensus and the duration of the inclusion
consensus.  The catch-up series measures the time a newly included replica
needs to verify the certificates of the blocks it is handed, as a function of
the number of blocks and the committee size.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.consensus.certificates import Certificate, VoteKind, make_vote
from repro.crypto.keys import KeyRegistry
from repro.experiments.common import attack_sizes, sweep_seeds

#: Delay distributions of Figure 5 (left three plots).
FIG5_DELAYS: Sequence[str] = ("gamma", "aws", "500ms", "1000ms")


def fig5_specs(
    sizes: Optional[Sequence[int]] = None,
    delays: Optional[Sequence[str]] = None,
    attack_kind: str = "binary",
    instances: int = 2,
    max_time: float = 300.0,
    seeds: Optional[Sequence[int]] = None,
):
    """Expand the Figure 5 sweep into scenario specs (single source of truth
    for both :func:`run_fig5` and the registry's ``fig5`` family grid)."""
    from repro.scenarios.registry import expand_grid

    return [
        spec.with_overrides(workload_transactions=12 * spec.n)
        for spec in expand_grid(
            "fig5",
            {
                "cross_partition_delay": tuple(delays or FIG5_DELAYS),
                "n": tuple(sizes or attack_sizes()),
                "seed": tuple(seeds or sweep_seeds()),
            },
            base={"attack": attack_kind, "instances": instances, "max_time": max_time},
        )
    ]


def run_fig5(
    sizes: Optional[List[int]] = None,
    delays: Optional[Sequence[str]] = None,
    attack_kind: str = "binary",
    instances: int = 2,
    max_time: float = 300.0,
) -> List[Dict[str, object]]:
    """Detect / exclude / include times per delay distribution and size.

    Declared through the scenario registry (family ``fig5``): one cell per
    (delay, n, seed), aggregated here into per-(delay, n) means.
    """
    from repro.scenarios.runner import run_specs

    sizes = list(sizes or attack_sizes())
    delays = list(delays or FIG5_DELAYS)
    cells = run_specs(
        fig5_specs(sizes, delays, attack_kind, instances=instances, max_time=max_time)
    )

    def _mean(values: List[float]) -> Optional[float]:
        return round(sum(values) / len(values), 3) if values else None

    rows: List[Dict[str, object]] = []
    for delay in delays:
        for n in sizes:
            group = [c for c in cells if c["delay"] == delay and c["n"] == n]
            rows.append(
                {
                    "delay": delay,
                    "n": n,
                    "detect_s": _mean(
                        [c["detect_time_s"] for c in group if c["detect_time_s"] is not None]
                    ),
                    "exclude_s": _mean(
                        [
                            c["exclusion_time_s"]
                            for c in group
                            if c["exclusion_time_s"] is not None
                        ]
                    ),
                    "include_s": _mean(
                        [
                            c["inclusion_time_s"]
                            for c in group
                            if c["inclusion_time_s"] is not None
                        ]
                    ),
                }
            )
    return rows


def run_catchup_timing(
    sizes: Optional[Sequence[int]] = None,
    block_counts: Sequence[int] = (10, 20, 30),
    votes_per_certificate: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Figure 5 (right): wall-clock time to verify a catch-up of N blocks.

    A new replica joining after a membership change must verify one quorum
    certificate per block; the certificate size grows with the committee, which
    is why the catch-up time grows roughly linearly with ``n``.
    """
    sizes = sizes or attack_sizes()
    rows: List[Dict[str, object]] = []
    for n in sizes:
        keys = KeyRegistry.provision(range(n))

        class _Host:
            def __init__(self, replica_id: int):
                self.replica_id = replica_id

            def sign(self, payload):
                return keys.signer_for(self.replica_id).sign(payload)

            def verify(self, payload, signed):
                return keys.registry.verify(payload, signed)

        quorum = votes_per_certificate or (2 * n // 3 + 1)
        hosts = [_Host(i) for i in range(n)]
        verifier = hosts[0]
        for blocks in block_counts:
            # One distinct certificate per block, built outside the timed
            # section: a real catch-up verifies a *different* certificate for
            # every block, so the timing must not collapse into the
            # verified-signature / certificate-validity caches (which would
            # measure dict probes, not signature checks).
            certificates = [
                Certificate.from_votes(
                    make_vote(
                        hosts[i], f"catchup:block:{blocks}:{b}", 0, VoteKind.AUX, "digest"
                    )
                    for i in range(quorum)
                )
                for b in range(blocks)
            ]
            start = time.perf_counter()
            for certificate in certificates:
                certificate.verify(verifier, committee=range(n))
            elapsed = time.perf_counter() - start
            rows.append(
                {"n": n, "blocks": blocks, "catchup_s": round(elapsed, 4)}
            )
    return rows
