"""Figure 6: minimum finalization blockdepth for zero loss.

The paper combines the measured disagreement frequencies of §5 with the
Theorem .5 analysis: the probability that an attack succeeds on one block is
estimated from how often the coalition managed to create a disagreement, and
the minimum blockdepth ``m`` for ``D = G/10`` follows from
``g(a, b, rho, m) >= 0``.  Because larger committees make the attack less
likely to succeed (Fig. 4), the required blockdepth decreases with ``n``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.zero_loss import (
    attack_success_probability,
    branch_bound,
    minimum_blockdepth,
)
from repro.common.config import FaultConfig
from repro.experiments.common import attack_sizes, sweep_seeds

#: Figure 6 sweeps uniform 500 ms and 1000 ms delays for both attacks.
FIG6_DELAYS: Sequence[str] = ("500ms", "1000ms")
FIG6_ATTACKS: Sequence[str] = ("binary", "rbbcast")


def fig6_specs(
    sizes: Optional[Sequence[int]] = None,
    delays: Optional[Sequence[str]] = None,
    attacks: Optional[Sequence[str]] = None,
    deposit_factor: float = 0.1,
    instances: int = 2,
    max_time: float = 300.0,
    seeds: Optional[Sequence[int]] = None,
):
    """Expand the Figure 6 sweep into scenario specs (single source of truth
    for both :func:`run_fig6` and the registry's ``fig6`` family grid)."""
    from repro.scenarios.registry import expand_grid

    return [
        spec.with_overrides(workload_transactions=12 * spec.n)
        for spec in expand_grid(
            "fig6",
            {
                "attack": tuple(attacks or FIG6_ATTACKS),
                "cross_partition_delay": tuple(delays or FIG6_DELAYS),
                "n": tuple(sizes or attack_sizes()),
                "seed": tuple(seeds or sweep_seeds()),
            },
            base={
                "instances": instances,
                "max_time": max_time,
                "params": {"deposit_factor": deposit_factor},
            },
        )
    ]


def run_fig6(
    sizes: Optional[List[int]] = None,
    delays: Optional[Sequence[str]] = None,
    attacks: Optional[Sequence[str]] = None,
    deposit_factor: float = 0.1,
    instances: int = 2,
    max_time: float = 300.0,
) -> List[Dict[str, object]]:
    """Minimum blockdepth per (attack, delay, n) with D = G/10.

    Declared through the scenario registry (family ``fig6``): one attack cell
    per (attack, delay, n, seed); this wrapper pools the per-seed disagreement
    counts into one rho estimate per (attack, delay, n) row.
    """
    from repro.scenarios.runner import run_specs

    sizes = list(sizes or attack_sizes())
    delays = list(delays or FIG6_DELAYS)
    attacks = list(attacks or FIG6_ATTACKS)
    cells = run_specs(
        fig6_specs(
            sizes,
            delays,
            attacks,
            deposit_factor=deposit_factor,
            instances=instances,
            max_time=max_time,
        )
    )
    rows: List[Dict[str, object]] = []
    for attack in attacks:
        for delay in delays:
            for n in sizes:
                group = [
                    c
                    for c in cells
                    if c["attack"] == attack and c["delay"] == delay and c["n"] == n
                ]
                fault_config = FaultConfig.paper_attack(n)
                attacked_instances = sum(c["instances"] for c in group)
                disagreement_instances = sum(
                    c["disagreement_instances"] for c in group
                )
                rho = attack_success_probability(
                    disagreement_instances, attacked_instances
                )
                branches = branch_bound(n, fault_config.deceitful)
                m = minimum_blockdepth(a=branches, b=deposit_factor, rho=rho)
                rows.append(
                    {
                        "attack": attack,
                        "delay": delay,
                        "n": n,
                        "estimated_rho": round(rho, 3),
                        "branches": branches,
                        "min_blockdepth": m,
                    }
                )
    return rows


def theoretical_blockdepth_curve(
    deposit_factor: float = 0.1,
    branches: int = 3,
    probabilities: Sequence[float] = (0.1, 0.3, 0.5, 0.55, 0.7, 0.9),
) -> List[Dict[str, float]]:
    """Pure-theory companion curve: m as a function of rho (Appendix B text)."""
    return [
        {
            "rho": rho,
            "min_blockdepth": minimum_blockdepth(branches, deposit_factor, rho),
        }
        for rho in probabilities
    ]
