"""Figure 6: minimum finalization blockdepth for zero loss.

The paper combines the measured disagreement frequencies of §5 with the
Theorem .5 analysis: the probability that an attack succeeds on one block is
estimated from how often the coalition managed to create a disagreement, and
the minimum blockdepth ``m`` for ``D = G/10`` follows from
``g(a, b, rho, m) >= 0``.  Because larger committees make the attack less
likely to succeed (Fig. 4), the required blockdepth decreases with ``n``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.zero_loss import (
    attack_success_probability,
    branch_bound,
    minimum_blockdepth,
)
from repro.common.config import FaultConfig
from repro.experiments.common import attack_sizes, sweep_seeds
from repro.experiments.fig4_disagreements import run_attack_cell

#: Figure 6 sweeps uniform 500 ms and 1000 ms delays for both attacks.
FIG6_DELAYS: Sequence[str] = ("500ms", "1000ms")
FIG6_ATTACKS: Sequence[str] = ("binary", "rbbcast")


def run_fig6(
    sizes: Optional[List[int]] = None,
    delays: Optional[Sequence[str]] = None,
    attacks: Optional[Sequence[str]] = None,
    deposit_factor: float = 0.1,
    instances: int = 2,
    max_time: float = 300.0,
) -> List[Dict[str, object]]:
    """Minimum blockdepth per (attack, delay, n) with D = G/10."""
    sizes = sizes or attack_sizes()
    delays = delays or FIG6_DELAYS
    attacks = attacks or FIG6_ATTACKS
    rows: List[Dict[str, object]] = []
    for attack in attacks:
        for delay in delays:
            for n in sizes:
                fault_config = FaultConfig.paper_attack(n)
                attacked_instances = 0
                disagreement_instances = 0
                for seed in sweep_seeds():
                    result = run_attack_cell(
                        n,
                        attack,
                        delay,
                        seed=seed,
                        instances=instances,
                        max_time=max_time,
                    )
                    attacked_instances += instances
                    disagreement_instances += len(result.disagreement_instances)
                rho = attack_success_probability(
                    disagreement_instances, attacked_instances
                )
                branches = branch_bound(n, fault_config.deceitful)
                m = minimum_blockdepth(a=branches, b=deposit_factor, rho=rho)
                rows.append(
                    {
                        "attack": attack,
                        "delay": delay,
                        "n": n,
                        "estimated_rho": round(rho, 3),
                        "branches": branches,
                        "min_blockdepth": m,
                    }
                )
    return rows


def theoretical_blockdepth_curve(
    deposit_factor: float = 0.1,
    branches: int = 3,
    probabilities: Sequence[float] = (0.1, 0.3, 0.5, 0.55, 0.7, 0.9),
) -> List[Dict[str, float]]:
    """Pure-theory companion curve: m as a function of rho (Appendix B text)."""
    return [
        {
            "rho": rho,
            "min_blockdepth": minimum_blockdepth(branches, deposit_factor, rho),
        }
        for rho in probabilities
    ]
