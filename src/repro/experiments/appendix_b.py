"""Appendix B numerical examples (branch bound and blockdepth table).

The appendix quotes concrete values that the closed-form analysis must
reproduce exactly:

* for a deceitful ratio of 0.5 the branch bound gives ``a = 3``;
* with ``a = 3`` and ``D = G/10`` (``b = 0.1``): ``m = 4`` suffices for
  ``rho = 0.55`` and ``m = 28`` for ``rho = 0.9``;
* at ``rho = 0.9``: ``m = 37`` for ``delta = 0.6``, ``m = 46`` for
  ``delta = 0.64`` and ``m = 58`` for ``delta = 0.66``.
"""

from __future__ import annotations

from typing import Dict, List


def run_appendix_b(n: int = 900, deposit_factor: float = 0.1) -> List[Dict[str, object]]:
    """The appendix's (delta, rho) -> minimum blockdepth table.

    ``n = 900`` keeps ``delta * n`` integral for every ratio the appendix uses,
    so the branch bound is evaluated exactly where the paper evaluates it.
    The cases are declared through the scenario registry (family
    ``appendix-b``); custom ``n``/``deposit_factor`` override the registered
    grid cell by cell.
    """
    from repro.scenarios.registry import expand
    from repro.scenarios.runner import run_specs

    specs = [
        spec.with_overrides(
            n=n, params={"deposit_factor": deposit_factor}
        )
        for spec in expand("appendix-b")
    ]
    return run_specs(specs)
