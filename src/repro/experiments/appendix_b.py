"""Appendix B numerical examples (branch bound and blockdepth table).

The appendix quotes concrete values that the closed-form analysis must
reproduce exactly:

* for a deceitful ratio of 0.5 the branch bound gives ``a = 3``;
* with ``a = 3`` and ``D = G/10`` (``b = 0.1``): ``m = 4`` suffices for
  ``rho = 0.55`` and ``m = 28`` for ``rho = 0.9``;
* at ``rho = 0.9``: ``m = 37`` for ``delta = 0.6``, ``m = 46`` for
  ``delta = 0.64`` and ``m = 58`` for ``delta = 0.66``.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis.zero_loss import branch_bound, minimum_blockdepth


def run_appendix_b(n: int = 900, deposit_factor: float = 0.1) -> List[Dict[str, object]]:
    """The appendix's (delta, rho) -> minimum blockdepth table.

    ``n = 900`` keeps ``delta * n`` integral for every ratio the appendix uses,
    so the branch bound is evaluated exactly where the paper evaluates it.
    """
    cases = [
        {"delta": 0.5, "rho": 0.55},
        {"delta": 0.5, "rho": 0.9},
        {"delta": 0.6, "rho": 0.9},
        {"delta": 0.64, "rho": 0.9},
        {"delta": 0.66, "rho": 0.9},
    ]
    rows: List[Dict[str, object]] = []
    for case in cases:
        deceitful = int(round(case["delta"] * n))
        branches = branch_bound(n, deceitful)
        m = minimum_blockdepth(a=branches, b=deposit_factor, rho=case["rho"])
        rows.append(
            {
                "delta": case["delta"],
                "rho": case["rho"],
                "branches": branches,
                "min_blockdepth": m,
            }
        )
    return rows
