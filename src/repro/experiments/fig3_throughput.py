"""Figure 3: throughput of ZLB vs Polygraph, HotStuff and Red Belly.

Two complementary paths:

* :func:`run_fig3` — the calibrated phase-level model over the paper's
  committee sizes (10..90), which reproduces the figure's shape (see
  DESIGN.md §2 on why absolute numbers require the authors' testbed).
* :func:`run_measured_comparison` — an end-to-end measured comparison of the
  actual message-level implementations (ZLB vs Red Belly vs HotStuff) at a
  small committee size, confirming the same ordering on real protocol runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.hotstuff import HotStuffCluster
from repro.baselines.redbelly import RedBellyCluster
from repro.common.config import FaultConfig
from repro.experiments.common import figure_sizes
from repro.network.delays import AwsRegionDelay
from repro.zlb.system import ZLBSystem


def fig3_specs(sizes: Optional[List[int]] = None):
    """Expand the Figure 3 sweep into scenario specs (single source of truth
    for both :func:`run_fig3` and the registry's ``fig3`` family grid)."""
    from repro.scenarios.registry import expand_grid

    return expand_grid(
        "fig3",
        {"n": tuple(sizes or figure_sizes())},
        base={"delay": "aws", "seed": 0, "instances": 0},
    )


def run_fig3(sizes: Optional[List[int]] = None) -> List[Dict[str, float]]:
    """Model-level Figure 3 rows: one row per committee size, tx/s per protocol.

    Declared through the scenario registry (family ``fig3``): one cell per
    committee size, each evaluating the calibrated phase-level model.
    """
    from repro.scenarios.runner import run_specs

    return run_specs(fig3_specs(sizes))


def run_measured_comparison(
    n: int = 7, transactions: int = 120, batch_size: int = 20, seed: int = 1
) -> Dict[str, Dict[str, float]]:
    """Measured comparison of the real message-level implementations at small n.

    Absolute tx/s at toy scale do not carry the paper's verification and
    bandwidth costs (those are what the calibrated model captures); the
    structural quantity that transfers is *transactions decided per consensus
    instance*: SBC-style protocols decide up to n proposals per instance while
    HotStuff decides exactly one.
    """
    results: Dict[str, Dict[str, float]] = {}

    zlb = ZLBSystem.create(
        FaultConfig(n=n),
        seed=seed,
        delay="aws",
        workload_transactions=transactions,
        batch_size=batch_size,
    )
    outcome = zlb.run_instances(2)
    zlb_instances = max(
        len(d["decided_instances"]) for d in outcome.per_replica.values()
    )
    results["ZLB"] = {
        "tx_per_sec": outcome.throughput_tx_per_sec,
        "tx_per_instance": outcome.committed_transactions / max(zlb_instances, 1),
    }

    redbelly = RedBellyCluster(
        n,
        delay=AwsRegionDelay(),
        seed=seed,
        batch_size=batch_size,
        workload_transactions=transactions,
    )
    redbelly.run_instances(2)
    simulated = max(redbelly.simulator.now, 1e-9)
    rb_committed = max(redbelly.committed_transactions())
    rb_instances = max(len(r.decided_instances()) for r in redbelly.replicas)
    results["Red Belly"] = {
        "tx_per_sec": rb_committed / simulated,
        "tx_per_instance": rb_committed / max(rb_instances, 1),
    }

    hotstuff = HotStuffCluster(n, delay=AwsRegionDelay(), seed=seed)
    hotstuff.submit_payloads(
        [{"batch": list(range(batch_size))} for _ in range(6)]
    )
    hotstuff.run_views(6)
    simulated = max(hotstuff.simulator.now, 1e-9)
    committed_batches = len(hotstuff.replicas[0].committed_views)
    results["HotStuff"] = {
        "tx_per_sec": committed_batches * batch_size / simulated,
        "tx_per_instance": float(batch_size),
    }
    return results
