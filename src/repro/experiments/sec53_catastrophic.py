"""§5.3: disagreements under catastrophic partition delays (5 s and 10 s).

The paper lets the coalition attack while the network "collapses for a few
seconds between regions": uniform delays of 5 and 10 seconds between honest
partitions.  Disagreements then pile up across consecutive consensus instances
before the membership change manages to complete — up to 52 disagreeing
proposals (binary attack, 10 s) and 165 (reliable broadcast attack, 5 s) at
n = 100 in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import attack_sizes, sweep_seeds
from repro.experiments.fig4_disagreements import run_attack_cell

#: Catastrophic cross-partition delays of §5.3.
CATASTROPHIC_DELAYS: Sequence[str] = ("5000ms", "10000ms")


def run_sec53(
    sizes: Optional[List[int]] = None,
    delays: Optional[Sequence[str]] = None,
    attacks: Sequence[str] = ("binary", "rbbcast"),
    instances: int = 3,
    max_time: float = 600.0,
) -> List[Dict[str, object]]:
    """Disagreements per (attack, delay, n) under catastrophic delays."""
    sizes = sizes or attack_sizes()
    delays = delays or CATASTROPHIC_DELAYS
    rows: List[Dict[str, object]] = []
    for attack in attacks:
        for delay in delays:
            for n in sizes:
                counts: List[int] = []
                for seed in sweep_seeds():
                    result = run_attack_cell(
                        n,
                        attack,
                        delay,
                        seed=seed,
                        instances=instances,
                        max_time=max_time,
                    )
                    counts.append(result.disagreements)
                rows.append(
                    {
                        "attack": attack,
                        "delay": delay,
                        "n": n,
                        "disagreements": max(counts),
                    }
                )
    return rows
