"""§5.3: disagreements under catastrophic partition delays (5 s and 10 s).

The paper lets the coalition attack while the network "collapses for a few
seconds between regions": uniform delays of 5 and 10 seconds between honest
partitions.  Disagreements then pile up across consecutive consensus instances
before the membership change manages to complete — up to 52 disagreeing
proposals (binary attack, 10 s) and 165 (reliable broadcast attack, 5 s) at
n = 100 in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import attack_sizes, sweep_seeds

#: Catastrophic cross-partition delays of §5.3.
CATASTROPHIC_DELAYS: Sequence[str] = ("5000ms", "10000ms")


def sec53_specs(
    sizes: Optional[Sequence[int]] = None,
    delays: Optional[Sequence[str]] = None,
    attacks: Sequence[str] = ("binary", "rbbcast"),
    instances: int = 3,
    max_time: float = 600.0,
    seeds: Optional[Sequence[int]] = None,
):
    """Expand the §5.3 sweep into scenario specs (single source of truth for
    both :func:`run_sec53` and the registry's ``sec53`` family grid)."""
    from repro.scenarios.registry import expand_grid

    return [
        spec.with_overrides(workload_transactions=12 * spec.n)
        for spec in expand_grid(
            "sec53",
            {
                "attack": tuple(attacks),
                "cross_partition_delay": tuple(delays or CATASTROPHIC_DELAYS),
                "n": tuple(sizes or attack_sizes()),
                "seed": tuple(seeds or sweep_seeds()),
            },
            base={"instances": instances, "max_time": max_time},
        )
    ]


def run_sec53(
    sizes: Optional[List[int]] = None,
    delays: Optional[Sequence[str]] = None,
    attacks: Sequence[str] = ("binary", "rbbcast"),
    instances: int = 3,
    max_time: float = 600.0,
) -> List[Dict[str, object]]:
    """Disagreements per (attack, delay, n) under catastrophic delays.

    Declared through the scenario registry (family ``sec53``); the wrapper
    reports the worst seed per (attack, delay, n), matching the paper's
    "up to N disagreeing proposals" phrasing.
    """
    from repro.scenarios.runner import run_specs

    sizes = list(sizes or attack_sizes())
    delays = list(delays or CATASTROPHIC_DELAYS)
    attacks = list(attacks)
    cells = run_specs(
        sec53_specs(sizes, delays, attacks, instances=instances, max_time=max_time)
    )
    rows: List[Dict[str, object]] = []
    for attack in attacks:
        for delay in delays:
            for n in sizes:
                counts = [
                    c["disagreements"]
                    for c in cells
                    if c["attack"] == attack and c["delay"] == delay and c["n"] == n
                ]
                rows.append(
                    {
                        "attack": attack,
                        "delay": delay,
                        "n": n,
                        "disagreements": max(counts),
                    }
                )
    return rows
