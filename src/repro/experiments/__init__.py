"""Experiment drivers regenerating every table and figure of the paper.

Each module exposes a ``run_*`` function returning plain rows (lists of dicts)
so the same code backs the pytest benchmarks in ``benchmarks/`` and the
runnable scripts in ``examples/``.  See DESIGN.md §4 for the experiment index
and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.experiments.common import attack_sizes, figure_sizes, sweep_seeds
from repro.experiments.fig3_throughput import run_fig3
from repro.experiments.fig4_disagreements import fig4_specs, run_fig4, run_attack_cell
from repro.experiments.fig5_membership import run_fig5, run_catchup_timing
from repro.experiments.fig6_blockdepth import run_fig6
from repro.experiments.table1_merge import run_table1, merge_two_blocks
from repro.experiments.sec53_catastrophic import run_sec53
from repro.experiments.appendix_b import run_appendix_b

__all__ = [
    "attack_sizes",
    "figure_sizes",
    "sweep_seeds",
    "run_fig3",
    "fig4_specs",
    "run_fig4",
    "run_attack_cell",
    "run_fig5",
    "run_catchup_timing",
    "run_fig6",
    "run_table1",
    "merge_two_blocks",
    "run_sec53",
    "run_appendix_b",
]
