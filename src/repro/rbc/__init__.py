"""Reliable broadcast primitives (Bracha's protocol with signed, accountable echoes)."""

from repro.rbc.bracha import ReliableBroadcast

__all__ = ["ReliableBroadcast"]
