"""Bracha reliable broadcast with accountable (signed) echoes.

One instance disseminates one proposer's value to the whole committee:

* the proposer broadcasts ``INIT(value)``;
* on ``INIT``, replicas broadcast a signed ``ECHO(digest, value)``;
* on a quorum (``ceil(2n/3)``) of matching ``ECHO`` or ``ceil(n/3)`` matching
  ``READY``, replicas broadcast a signed ``READY(digest)``;
* on a quorum of matching ``READY`` carrying the value, the value is
  *delivered*.

The signed INIT/ECHO/READY votes double as accountability material: a replica
that echoes two different digests for the same instance produces a proof of
fraud when its two votes are cross-checked (this is exactly what the paper's
"reliable broadcast attack" does, §B).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from repro.common.types import ReplicaId, quorum_size, recovery_threshold
from repro.consensus.certificates import (
    Certificate,
    SignedVote,
    VoteKind,
    make_vote,
    verify_vote,
    vote_from_payload,
)
from repro.consensus.host import ProtocolHost
from repro.crypto.hashing import hash_payload
from repro.network.topic import TopicLike, as_topic

#: Callback signature: (proposer, value, ready_certificate)
DeliverCallback = Callable[[ReplicaId, Any, Certificate], None]


class ReliableBroadcast:
    """One reliable-broadcast instance for a single (instance, proposer) slot."""

    INIT = "INIT"
    ECHO = "ECHO"
    READY = "READY"

    def __init__(
        self,
        host: ProtocolHost,
        context: TopicLike,
        proposer: ReplicaId,
        on_deliver: DeliverCallback,
    ):
        self.host = host
        #: The instance's topic (emission path) and its canonical string form
        #: (the signed vote context — votes stay wire-stable strings).
        self.topic = as_topic(context)
        self.context = self.topic.canonical
        self.proposer = proposer
        self.on_deliver = on_deliver
        self.delivered = False
        self.delivered_value: Any = None
        # Telemetry (None when disabled): phase latencies are measured in
        # simulated time from the first local activity of the instance.
        self._telemetry = host.telemetry
        self._started_at: Optional[float] = None
        # Tracing (None when disabled): a span covers first activity to
        # delivery, and phase events carry the instance/slot for the
        # critical-path analysis.
        self._tracing = getattr(host, "tracing", None)
        self._span = None
        if self._tracing is not None:
            from repro.tracing.core import topic_trace_attrs

            self._trace_attrs = topic_trace_attrs(self.topic)
        # Protocol state.
        self._echo_sent = False
        self._ready_sent = False
        self._echo_votes: Dict[str, Dict[ReplicaId, SignedVote]] = {}
        self._ready_votes: Dict[str, Dict[ReplicaId, SignedVote]] = {}
        self._values: Dict[str, Any] = {}
        # Every verified vote seen, kept for accountability cross-checks.
        self.collected_votes: List[SignedVote] = []

    # -- thresholds -------------------------------------------------------------

    def _quorum(self) -> int:
        return quorum_size(self.host.committee_size())

    def _ready_support(self) -> int:
        return recovery_threshold(self.host.committee_size())

    # -- sending ----------------------------------------------------------------

    def _mark_started(self) -> None:
        if self._started_at is None:
            self._started_at = self.host.now
            tracing = self._tracing
            if tracing is not None:
                self._span = tracing.tracer.start_span(
                    "rbc", self.host.replica_id, self._started_at, **self._trace_attrs
                )

    def _observe_phase(self, name: str) -> None:
        if self._telemetry is not None and self._started_at is not None:
            self._telemetry.histogram(name).observe(self.host.now - self._started_at)

    def broadcast(self, value: Any) -> None:
        """Called by the proposer to disseminate ``value``."""
        self._mark_started()
        tracing = self._tracing
        if tracing is not None:
            tracing.tracer.event(
                "rbc.init", self.host.replica_id, self.host.now, **self._trace_attrs
            )
        digest = hash_payload(value)
        vote = make_vote(self.host, self.context, 0, VoteKind.RBC_INIT, digest)
        self.collected_votes.append(vote)
        self.host.emit(
            self.topic,
            self.INIT,
            {"value": value, "digest": digest, "vote": vote.to_payload()},
        )

    def _send_echo(self, value: Any, digest: str) -> None:
        if self._echo_sent:
            return
        self._echo_sent = True
        self._observe_phase("rbc.init_to_echo_s")
        tracing = self._tracing
        if tracing is not None:
            tracing.tracer.event(
                "rbc.echo", self.host.replica_id, self.host.now, **self._trace_attrs
            )
        vote = make_vote(self.host, self.context, 0, VoteKind.RBC_ECHO, digest)
        self.collected_votes.append(vote)
        self.host.emit(
            self.topic,
            self.ECHO,
            {"value": value, "digest": digest, "vote": vote.to_payload()},
        )

    def _send_ready(self, digest: str) -> None:
        if self._ready_sent:
            return
        self._ready_sent = True
        self._observe_phase("rbc.init_to_ready_s")
        tracing = self._tracing
        if tracing is not None:
            tracing.tracer.event(
                "rbc.ready", self.host.replica_id, self.host.now, **self._trace_attrs
            )
        vote = make_vote(self.host, self.context, 0, VoteKind.RBC_READY, digest)
        self.collected_votes.append(vote)
        value = self._values.get(digest)
        self.host.emit(
            self.topic,
            self.READY,
            {"digest": digest, "value": value, "vote": vote.to_payload()},
        )

    # -- receiving ----------------------------------------------------------------

    def handle(self, sender: ReplicaId, kind: str, body: Dict[str, Any]) -> None:
        """Process a message of this instance."""
        self._mark_started()
        if self.delivered:
            # Keep collecting signed votes after delivery: a deceitful replica
            # equivocating towards the other partition leaves its conflicting
            # vote here, ready for cross-checking during confirmation.
            kind_map = {
                self.INIT: VoteKind.RBC_INIT,
                self.ECHO: VoteKind.RBC_ECHO,
                self.READY: VoteKind.RBC_READY,
            }
            expected = kind_map.get(kind)
            if expected is not None:
                self._verified_vote(body, sender, expected)
            return
        if kind == self.INIT:
            self._handle_init(sender, body)
        elif kind == self.ECHO:
            self._handle_echo(sender, body)
        elif kind == self.READY:
            self._handle_ready(sender, body)

    def _verified_vote(
        self, body: Dict[str, Any], sender: ReplicaId, expected_kind: VoteKind
    ) -> Optional[SignedVote]:
        payload = body.get("vote")
        if payload is None:
            return None
        try:
            vote = vote_from_payload(payload)
        except (KeyError, ValueError, TypeError):
            return None
        if vote.signer != sender or vote.context != self.context:
            return None
        if vote.kind != expected_kind or vote.value_digest != body.get("digest"):
            return None
        if not verify_vote(vote, self.host):
            return None
        self.collected_votes.append(vote)
        return vote

    def _handle_init(self, sender: ReplicaId, body: Dict[str, Any]) -> None:
        if sender != self.proposer:
            return
        vote = self._verified_vote(body, sender, VoteKind.RBC_INIT)
        if vote is None:
            return
        digest = body["digest"]
        if hash_payload(body.get("value")) != digest:
            return
        self._values[digest] = body.get("value")
        self._send_echo(body.get("value"), digest)

    def _handle_echo(self, sender: ReplicaId, body: Dict[str, Any]) -> None:
        vote = self._verified_vote(body, sender, VoteKind.RBC_ECHO)
        if vote is None:
            return
        digest = body["digest"]
        value = body.get("value")
        if value is not None:
            # Message bodies cross the simulated wire by reference, so every
            # honest echo carries the *same* value object the INIT did; an
            # identity match against the already-verified stored value skips
            # the O(|value|) rehash.  Any other object (equivocation, a
            # tampered body) still pays the full digest check.
            stored = self._values.get(digest)
            if stored is None:
                if hash_payload(value) != digest:
                    return
                self._values[digest] = value
            elif stored is not value and hash_payload(value) != digest:
                return
        votes = self._echo_votes.setdefault(digest, {})
        votes.setdefault(sender, vote)
        if len(votes) >= self._quorum():
            self._send_ready(digest)
        self._maybe_deliver(digest)

    def _handle_ready(self, sender: ReplicaId, body: Dict[str, Any]) -> None:
        vote = self._verified_vote(body, sender, VoteKind.RBC_READY)
        if vote is None:
            return
        digest = body["digest"]
        value = body.get("value")
        if value is not None and digest not in self._values:
            # Once a verified value is stored the setdefault below was a
            # no-op either way, so the rehash is only needed on first sight.
            if hash_payload(value) == digest:
                self._values[digest] = value
        votes = self._ready_votes.setdefault(digest, {})
        votes.setdefault(sender, vote)
        if len(votes) >= self._ready_support():
            self._send_ready(digest)
        self._maybe_deliver(digest)

    def _maybe_deliver(self, digest: str) -> None:
        if self.delivered:
            return
        ready = self._ready_votes.get(digest, {})
        if len(ready) < self._quorum():
            return
        if digest not in self._values:
            # The value has not reached us yet; deliver as soon as it does
            # (a later ECHO/READY carrying it will retrigger this check).
            return
        self.delivered = True
        self.delivered_value = self._values[digest]
        certificate = Certificate.from_votes(ready.values())
        if self._telemetry is not None:
            self._observe_phase("rbc.deliver_s")
            self._telemetry.counter("rbc.delivered").inc()
            self._telemetry.histogram("rbc.certificate_votes").observe(
                len(certificate.votes)
            )
        tracing = self._tracing
        if tracing is not None:
            tracer = tracing.tracer
            tracer.event(
                "rbc.deliver", self.host.replica_id, self.host.now, **self._trace_attrs
            )
            if self._span is not None:
                tracer.finish(self._span, self.host.now)
        self.on_deliver(self.proposer, self.delivered_value, certificate)
