"""Named scenario families and sweep-grid expansion.

A *family* bundles three things under a stable name:

* a **grid builder** — ``scale ("small" | "full") -> list of ScenarioSpec``,
  typically produced with :func:`expand_grid` over ``sizes x seeds x attack
  variants``;
* a **cell runner** — ``ScenarioSpec -> row`` (a flat JSON-serialisable dict),
  executed by the :class:`~repro.scenarios.runner.ScenarioRunner` either
  in-process or inside a worker pool;
* a description and tags for ``python -m repro.scenarios list``.

Families register themselves with the :func:`scenario` decorator::

    @scenario("fig4", description="...", grid=_fig4_grid)
    def _run_fig4_cell(spec: ScenarioSpec) -> Dict[str, object]:
        ...

The built-in library (:mod:`repro.scenarios.library`) registers every paper
experiment (fig3-fig6, table1, appendix B, §5.3, quickstart) plus the
non-paper families; it is imported lazily on first lookup so importing this
module never drags in the whole stack.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.gates import SLO
from repro.scenarios.spec import ScenarioSpec

GridBuilder = Callable[[str], List[ScenarioSpec]]
CellRunner = Callable[[ScenarioSpec], Dict[str, Any]]

_SPEC_FIELDS = {field.name for field in dataclasses.fields(ScenarioSpec)}


@dataclasses.dataclass(frozen=True)
class ScenarioFamily:
    """A named, sweepable scenario family."""

    name: str
    description: str
    build: GridBuilder
    run: CellRunner
    tags: Tuple[str, ...] = ()
    #: Declarative service-level objectives evaluated by
    #: ``python -m repro.scenarios report --gate`` (None = family not gated).
    slo: Optional[SLO] = None

    def expand(self, scale: str = "small") -> List[ScenarioSpec]:
        """Expand the sweep grid at the given scale."""
        if scale not in ("small", "full"):
            raise ConfigurationError(
                f"scale must be 'small' or 'full', got {scale!r}"
            )
        specs = list(self.build(scale))
        for spec in specs:
            if spec.family != self.name:
                raise ConfigurationError(
                    f"family {self.name!r} built a spec of family {spec.family!r}"
                )
        return specs


_REGISTRY: Dict[str, ScenarioFamily] = {}
_LIBRARY_LOADED = False


def register(family: ScenarioFamily) -> ScenarioFamily:
    """Register (or re-register) a family under its name."""
    _REGISTRY[family.name] = family
    return family


def scenario(
    name: str,
    *,
    description: str = "",
    grid: GridBuilder,
    tags: Sequence[str] = (),
    slo: Optional[SLO] = None,
) -> Callable[[CellRunner], CellRunner]:
    """Decorator registering the decorated function as a family's cell runner.

    ``slo`` declares the family's service-level objectives right next to the
    registration; ``report --gate`` evaluates them against recorded cells.
    """

    def wrap(run: CellRunner) -> CellRunner:
        doc = (run.__doc__ or "").strip()
        register(
            ScenarioFamily(
                name=name,
                description=description or (doc.splitlines()[0] if doc else ""),
                build=grid,
                run=run,
                tags=tuple(tags),
                slo=slo,
            )
        )
        return run

    return wrap


def _ensure_library() -> None:
    """Import the built-in family library exactly once.

    The flag is only set after a *successful* import: if the library fails to
    load, the next lookup retries (and re-raises the root cause) instead of
    silently serving a partial registry.
    """
    global _LIBRARY_LOADED
    if not _LIBRARY_LOADED:
        import repro.scenarios.library  # noqa: F401  (registers on import)

        _LIBRARY_LOADED = True


def family_names() -> List[str]:
    """Sorted names of every registered family."""
    _ensure_library()
    return sorted(_REGISTRY)


def iter_families() -> List[ScenarioFamily]:
    """Every registered family, sorted by name."""
    _ensure_library()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_family(name: str) -> ScenarioFamily:
    """Look up a family by name."""
    _ensure_library()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario family {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def expand(name: str, scale: str = "small") -> List[ScenarioSpec]:
    """Expand the named family's sweep grid."""
    return get_family(name).expand(scale)


def run_spec(spec: ScenarioSpec) -> Dict[str, Any]:
    """Execute one cell through its family's runner."""
    return get_family(spec.family).run(spec)


def expand_grid(
    family: str,
    axes: Mapping[str, Sequence[Any]],
    base: Optional[Mapping[str, Any]] = None,
) -> List[ScenarioSpec]:
    """Cartesian sweep-grid expansion over the given axes.

    Axis keys naming :class:`ScenarioSpec` fields become fields; every other
    key becomes a family-specific ``params`` entry.  ``base`` supplies the
    constant fields shared by every cell.  Axes expand in insertion order, so
    ``{"cross_partition_delay": [...], "n": [...], "seed": [...]}`` yields the
    delay-major order the paper's figures tabulate.
    """
    base = dict(base or {})
    base_params = dict(base.pop("params", {}))
    names = list(axes)
    specs: List[ScenarioSpec] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        fields: Dict[str, Any] = dict(base)
        params = dict(base_params)
        for name, value in zip(names, combo):
            if name in _SPEC_FIELDS:
                fields[name] = value
            else:
                params[name] = value
        specs.append(ScenarioSpec(family=family, params=tuple(sorted(params.items())), **fields))
    return specs
