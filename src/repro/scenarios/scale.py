"""The ``scale`` scenario family: committees of hundreds of replicas.

The paper's sweeps stop at ``n = 100``; this family exists to exercise (and
keep exercising, via the ``scale-bench`` CI job) the kernel optimisations that
make three-digit committees practical in a single Python process: the
verified-signature and certificate-validity caches, memoised vote payloads,
batched delay sampling and coalesced same-broadcast delivery.

Two kinds of cells share the family, told apart by the ``mode`` param:

* ``model`` — the fig3 analytic throughput model evaluated at ``n`` in
  100–300.  Closed-form, so even the largest committee costs milliseconds;
  these cells pin the model's behaviour where the paper's plots end.
* ``attack`` — a full simulated coalition-attack cell (the fig4 construction:
  ``d = ceil(5n/9) - 1`` deceitful replicas, partitioned honest replicas,
  real client workload) at ``n = 100``.  These are the heavyweight cells the
  scale benchmark budgets.

Independent cells run in parallel through the scenario runner's process pool
when ``REPRO_SCALE_JOBS`` is set (see :func:`run_scale_cells`): simulated
instances are single-threaded by design (determinism), so the parallelism
lives at the sweep-cell boundary, one seeded simulation per worker.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.gates import SLO
from repro.scenarios.registry import scenario
from repro.scenarios.spec import ScenarioSpec

#: Committee sizes of the analytic cells — where the paper's figure 3 ends
#: and beyond.
MODEL_SIZES = (100, 200, 300)

#: Committee size of the simulated attack cells.  One hundred replicas is the
#: paper's largest plotted committee and the acceptance point of the scale
#: work: both attack kinds must complete in minutes on a laptop-class host.
ATTACK_SIZE = 100

#: Event budget of one attack cell.  The simulator's default livelock guard
#: (5M events) is sized for small committees; an n=100 cell legitimately
#: processes ~10M events, so the family raises the guard with headroom.
ATTACK_MAX_EVENTS = 50_000_000


def _scale_grid(scale: str) -> List[ScenarioSpec]:
    specs = [
        ScenarioSpec(
            family="scale",
            n=n,
            seed=0,
            params={"mode": "model"},
        )
        for n in MODEL_SIZES
    ]
    attacks = ("binary", "rbbcast") if scale == "full" else ("binary",)
    for attack in attacks:
        specs.append(
            ScenarioSpec(
                family="scale",
                n=ATTACK_SIZE,
                attack=attack,
                cross_partition_delay="1000ms",
                delay="aws",
                workload_transactions=12 * ATTACK_SIZE,
                batch_size=10,
                # One SBC instance: message volume grows ~n^3, so a single
                # instance keeps the n=100 cell in minutes while still
                # landing the attack and driving the full recovery.
                instances=1,
                seed=1,
                max_time=300.0,
                # Raise the livelock guard: an n=100 attack cell legitimately
                # processes ~10M events before the membership change settles.
                params={"mode": "attack", "max_events": ATTACK_MAX_EVENTS},
            )
        )
    return specs


@scenario(
    "scale",
    description="Hundreds-of-replicas cells: analytic model + n=100 attacks",
    grid=_scale_grid,
    tags=("extra", "scale", "perf"),
    # The wall-clock budget of the family: an n=100 attack cell must stay in
    # minutes of host CPU, and the event loop must not collapse under the
    # larger fan-out.
    slo=SLO(min_events_per_sec=500.0, max_host_seconds=900.0),
)
def _run_scale_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    mode = spec.param("mode", "model")
    if mode == "model":
        from repro.analysis.throughput import ThroughputModel, available_protocols
        from repro.network.delays import AwsRegionDelay

        model = ThroughputModel(AwsRegionDelay())
        row: Dict[str, Any] = {"n": spec.n, "mode": mode}
        for protocol in available_protocols():
            row[protocol] = round(model.throughput(protocol, spec.n), 1)
        return row
    from repro.scenarios.library import _run_attack_spec

    row = _run_attack_spec(spec)
    row["mode"] = mode
    return row


def scale_jobs(default: int = 1) -> int:
    """Worker count for scale sweeps, from the ``REPRO_SCALE_JOBS`` flag.

    Defaults to serial execution: parallel cells trade determinism of *wall
    clock* (never of results — each cell is its own seeded simulation) for
    throughput, so the flag is opt-in.
    """
    value = os.environ.get("REPRO_SCALE_JOBS", "").strip()
    if not value:
        return default
    jobs = int(value)
    if jobs < 1:
        raise ValueError(f"REPRO_SCALE_JOBS must be >= 1, got {value!r}")
    return jobs


def run_scale_cells(
    specs: Sequence[ScenarioSpec], jobs: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Run scale cells, fanning out across processes when jobs > 1.

    A thin wrapper over :class:`~repro.scenarios.runner.ScenarioRunner` (no
    store: benchmark cells must re-run, never serve from cache) that the
    scale benchmark and ad-hoc sweeps share.
    """
    from repro.scenarios.runner import ScenarioRunner

    runner = ScenarioRunner(store=None, jobs=jobs if jobs is not None else scale_jobs())
    return runner.run(list(specs)).rows
