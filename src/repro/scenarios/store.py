"""JSONL result store keyed by scenario spec hash.

The store is an append-only JSON-lines file: one record per executed cell,
holding the spec hash, the full spec (for provenance), the result row and the
wall-clock cost.  On open, the file is replayed into an in-memory index
(last record wins), so repeated sweeps skip every cell whose hash is already
present — the cache-hit path of ``python -m repro.scenarios sweep``.

Records are self-describing, so a results file doubles as the experiment's
output artefact: ``rows()`` extracts plain result rows for tabulation.
"""

from __future__ import annotations

import copy
import json
import os
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.scenarios.spec import ScenarioSpec, spec_key


class ResultStore:
    """Append-only JSONL cache of scenario results, indexed by spec hash."""

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)
        self._index: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # tolerate a torn trailing line from a killed run
                if isinstance(record, dict) and "hash" in record:
                    self._index[record["hash"]] = record

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, spec_or_hash: Union[ScenarioSpec, str]) -> bool:
        return spec_key(spec_or_hash) in self._index

    def get(self, spec_or_hash: Union[ScenarioSpec, str]) -> Optional[Dict[str, Any]]:
        """Return the cached record for the spec (counting hit/miss)."""
        record = self._index.get(spec_key(spec_or_hash))
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def rows(self, family: Optional[str] = None) -> List[Dict[str, Any]]:
        """Result rows of every cached cell, optionally filtered by family."""
        return [
            dict(record["row"])
            for record in self.records(family)
        ]

    def records(self, family: Optional[str] = None) -> List[Dict[str, Any]]:
        """Full records (spec, row, telemetry, cost), optionally by family.

        This is what ``python -m repro.scenarios report`` consumes: records of
        telemetry-enabled cells carry the snapshot under ``"telemetry"``.
        Records are deep copies — mutating them cannot corrupt the in-memory
        cache index behind :meth:`get`.
        """
        return [
            copy.deepcopy(record)
            for record in self._records()
            if family is None or record.get("family") == family
        ]

    def _records(self) -> Iterator[Dict[str, Any]]:
        for key in sorted(self._index):
            yield self._index[key]

    # -- updates ---------------------------------------------------------------

    def put(
        self,
        spec: ScenarioSpec,
        row: Dict[str, Any],
        wall_clock_s: float = 0.0,
        telemetry: Optional[Dict[str, Any]] = None,
        trace: Optional[Dict[str, Any]] = None,
        obs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Append one result record and index it.

        ``telemetry`` is the cell's snapshot dict (only present for cells run
        with ``spec.telemetry``); it is stored verbatim so reports can be
        rendered from the JSONL file long after the sweep.  ``trace`` is the
        cell's trace summary (only for cells run with ``spec.tracing``) and
        ``obs`` its live-observability snapshot (time series, quantiles, CPU
        profile — only for cells run with ``spec.obs``), same convention.
        """
        record = {
            "hash": spec.spec_hash,
            "family": spec.family,
            "label": spec.label(),
            "spec": spec.to_dict(),
            "row": row,
            "wall_clock_s": round(float(wall_clock_s), 4),
        }
        if telemetry is not None:
            record["telemetry"] = telemetry
        if trace is not None:
            record["trace"] = trace
        if obs is not None:
            record["obs"] = obs
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._index[record["hash"]] = record
        return record
