"""Scenario execution: serial or process-parallel, cache-aware.

:class:`ScenarioRunner` takes a list of :class:`ScenarioSpec` cells and

1. resolves cache hits against an optional :class:`ResultStore`;
2. executes the remaining cells either in-process (``jobs=1``) or on a
   ``multiprocessing`` pool (``jobs>1``), shipping each spec across the
   process boundary in its canonical JSON form;
3. reports per-cell and total wall-clock time, invoking an optional progress
   callback as cells complete.

Because every cell is fully determined by its spec (one seed, one
configuration) and results are keyed by the spec's content hash, parallel
execution is order-independent: the runner reassembles outcomes in the input
order regardless of which worker finished first, and a serial and a parallel
sweep of the same specs produce identical rows.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import core as obs_core
from repro.obs.watch import SweepWatcher
from repro.scenarios import registry
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import ResultStore
from repro.telemetry import core as telemetry_core
from repro.tracing import core as tracing_core

ProgressCallback = Callable[["RunOutcome", int, int], None]

#: Where cells publish live progress events: ``None`` (no watcher), the
#: parent watcher's ``ingest`` (serial runs) or a queue putter installed by
#: the pool initializer (parallel workers).  Module-level so
#: ``_execute_cell`` finds it without widening its picklable signature.
_WATCH_SINK: Optional[Callable[[Dict[str, Any]], None]] = None


def _init_watch_worker(queue: Any) -> None:
    """Pool initializer: route this worker's progress events to the queue."""
    global _WATCH_SINK
    _WATCH_SINK = queue.put_nowait


def _cell_publisher(
    sink: Callable[[Dict[str, Any]], None], cell: str, key: str
) -> Callable[[Dict[str, Any]], None]:
    """Stamp events with the cell identity; never let publishing fail a run."""

    def publish(event: Dict[str, Any]) -> None:
        event.setdefault("cell", cell)
        event["key"] = key
        try:
            sink(event)
        except Exception:
            pass

    return publish


@dataclasses.dataclass
class RunOutcome:
    """One executed (or cache-served) cell."""

    spec: ScenarioSpec
    row: Dict[str, Any]
    cached: bool
    wall_clock_s: float
    #: Telemetry snapshot of the cell (None unless ``spec.telemetry``).
    telemetry: Optional[Dict[str, Any]] = None
    #: Trace summary of the cell (None unless ``spec.tracing``).
    trace: Optional[Dict[str, Any]] = None
    #: Obs snapshot — series, quantiles, CPU profile (None unless ``spec.obs``).
    obs: Optional[Dict[str, Any]] = None


@dataclasses.dataclass
class SweepReport:
    """Summary of one :meth:`ScenarioRunner.run` call."""

    outcomes: List[RunOutcome]
    cache_hits: int
    executed: int
    wall_clock_s: float

    @property
    def rows(self) -> List[Dict[str, Any]]:
        return [outcome.row for outcome in self.outcomes]


def _execute_cell(
    payload: str,
) -> Tuple[
    str,
    Dict[str, Any],
    float,
    Optional[Dict[str, Any]],
    Optional[Dict[str, Any]],
    Optional[Dict[str, Any]],
]:
    """Worker entry point: run one spec from its JSON form.

    Module-level so ``multiprocessing`` can pickle it; returns the spec hash
    alongside the row so the parent can reorder results deterministically.
    When the spec asks for telemetry (tracing), a fresh registry (trace
    runtime) is activated around the cell — every instrumented constructor
    below (simulators, ZLB systems) picks it up — and its snapshot (summary)
    rides along with the row.

    The obs runtime follows the same convention with one twist: it is also
    activated — without touching the spec or its hash — when a watch sink is
    installed, because the live watcher needs the sampler's progress ticks.
    Obs is purely observational (no randomness, no scheduling), so watching a
    bare cell cannot perturb it; the snapshot is only *persisted* when the
    spec itself asked for obs.
    """
    spec = ScenarioSpec.from_json(payload)
    start = time.perf_counter()
    sink = _WATCH_SINK
    publisher = None
    if sink is not None:
        publisher = _cell_publisher(sink, spec.label(), spec.spec_hash)
        publisher({"kind": "cell-start", "max_time": spec.max_time})
    with contextlib.ExitStack() as stack:
        active = None
        runtime = None
        obs_runtime = None
        if spec.telemetry:
            active = stack.enter_context(
                telemetry_core.activate(telemetry_core.TelemetryRegistry())
            )
        if spec.tracing:
            runtime = stack.enter_context(
                tracing_core.activate(tracing_core.TraceRuntime.enabled())
            )
        if spec.obs or publisher is not None:
            obs_runtime = stack.enter_context(
                obs_core.activate(
                    obs_core.ObsRuntime.enabled(
                        publisher=publisher, cell=spec.label()
                    )
                )
            )
        row = registry.run_spec(spec)
    elapsed = time.perf_counter() - start
    snapshot = active.snapshot() if active is not None else None
    trace = runtime.summary() if runtime is not None else None
    obs_snap = (
        obs_runtime.snapshot() if obs_runtime is not None and spec.obs else None
    )
    if publisher is not None:
        publisher({"kind": "cell-end", "wall_s": elapsed})
    return spec.spec_hash, row, elapsed, snapshot, trace, obs_snap


class ScenarioRunner:
    """Executes scenario specs with caching, parallelism and progress."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        progress: Optional[ProgressCallback] = None,
        watch: Optional[SweepWatcher] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.store = store
        self.jobs = jobs
        self.progress = progress
        self.watch = watch

    def run(self, specs: Sequence[ScenarioSpec]) -> SweepReport:
        """Run every spec, serving cached cells from the store when possible."""
        specs = list(specs)
        started = time.perf_counter()
        outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
        pending: List[Tuple[int, ScenarioSpec]] = []
        completed = 0
        if self.watch is not None:
            self.watch.total_cells = len(specs)

        for index, spec in enumerate(specs):
            record = self.store.get(spec) if self.store is not None else None
            if record is not None:
                outcomes[index] = RunOutcome(
                    spec=spec,
                    row=dict(record["row"]),
                    cached=True,
                    wall_clock_s=0.0,
                    telemetry=record.get("telemetry"),
                    trace=record.get("trace"),
                    obs=record.get("obs"),
                )
                completed += 1
                self._notify(outcomes[index], completed, len(specs))
            else:
                pending.append((index, spec))

        if self.watch is not None and completed:
            self.watch.note_cached(completed)

        try:
            if pending:
                if self.jobs == 1 or len(pending) == 1:
                    results = self._run_serial(pending)
                else:
                    results = self._run_parallel(pending)
                # Both strategies yield outcomes as cells complete, so the
                # store is written incrementally — a killed sweep keeps its
                # finished cells and resumes from cache.
                for index, outcome in results:
                    outcomes[index] = outcome
                    if self.store is not None:
                        self.store.put(
                            outcome.spec,
                            outcome.row,
                            outcome.wall_clock_s,
                            telemetry=outcome.telemetry,
                            trace=outcome.trace,
                            obs=outcome.obs,
                        )
                    completed += 1
                    self._notify(outcome, completed, len(specs))
        finally:
            if self.watch is not None:
                self.watch.finish()

        total = time.perf_counter() - started
        done = [outcome for outcome in outcomes if outcome is not None]
        return SweepReport(
            outcomes=done,
            cache_hits=sum(1 for outcome in done if outcome.cached),
            executed=sum(1 for outcome in done if not outcome.cached),
            wall_clock_s=total,
        )

    # -- execution strategies --------------------------------------------------

    def _run_serial(
        self, pending: Sequence[Tuple[int, ScenarioSpec]]
    ) -> Iterator[Tuple[int, RunOutcome]]:
        global _WATCH_SINK
        if self.watch is not None:
            # In-process cells publish straight into the watcher — no queue.
            _WATCH_SINK = self.watch.ingest
        try:
            for index, spec in pending:
                _, row, elapsed, snapshot, trace, obs_snap = _execute_cell(
                    spec.to_json()
                )
                yield index, RunOutcome(
                    spec=spec,
                    row=row,
                    cached=False,
                    wall_clock_s=elapsed,
                    telemetry=snapshot,
                    trace=trace,
                    obs=obs_snap,
                )
        finally:
            if self.watch is not None:
                _WATCH_SINK = None

    def _run_parallel(
        self, pending: Sequence[Tuple[int, ScenarioSpec]]
    ) -> Iterator[Tuple[int, RunOutcome]]:
        import multiprocessing

        by_hash: Dict[str, List[int]] = {}
        specs_by_index: Dict[int, ScenarioSpec] = {}
        for index, spec in pending:
            by_hash.setdefault(spec.spec_hash, []).append(index)
            specs_by_index[index] = spec

        payloads = [spec.to_json() for _, spec in pending]
        # Prefer fork so families registered at runtime (outside the built-in
        # library) exist in the workers; spawn-only platforms fall back to the
        # default context, where only importable registrations survive.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context()
        initializer = None
        initargs: Tuple[Any, ...] = ()
        if self.watch is not None:
            # Workers stream progress over a queue the watcher drains on its
            # own thread (timeout-polled, so a dead worker can never wedge it).
            watch_queue = context.Queue()
            initializer = _init_watch_worker
            initargs = (watch_queue,)
            self.watch.start(watch_queue)
        with context.Pool(
            processes=min(self.jobs, len(pending)),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            for (
                spec_hash,
                row,
                elapsed,
                snapshot,
                trace,
                obs_snap,
            ) in pool.imap_unordered(_execute_cell, payloads):
                index = by_hash[spec_hash].pop(0)
                yield index, RunOutcome(
                    spec=specs_by_index[index],
                    row=row,
                    cached=False,
                    wall_clock_s=elapsed,
                    telemetry=snapshot,
                    trace=trace,
                    obs=obs_snap,
                )

    def _notify(self, outcome: RunOutcome, completed: int, total: int) -> None:
        if self.progress is not None:
            self.progress(outcome, completed, total)


def run_family(
    family: str,
    scale: str = "small",
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressCallback] = None,
) -> SweepReport:
    """Expand and run one family's grid (the CLI's workhorse)."""
    specs = registry.expand(family, scale)
    runner = ScenarioRunner(store=store, jobs=jobs, progress=progress)
    return runner.run(specs)


def run_specs(
    specs: Sequence[ScenarioSpec],
    store: Optional[ResultStore] = None,
) -> List[Dict[str, Any]]:
    """Serial convenience wrapper returning plain rows (experiment wrappers)."""
    return ScenarioRunner(store=store).run(specs).rows
