"""Declarative scenario specifications.

A :class:`ScenarioSpec` captures *everything* one simulated cell needs — the
fault mix, the delay model, the coalition attack, the client workload, the
protocol knobs, the seed and the stop conditions — as a frozen, hashable value
object.  Two properties make the rest of the subsystem work:

* **content hash** — :attr:`ScenarioSpec.spec_hash` is a stable digest of the
  canonical JSON form, so identical cells hash identically across processes
  and sessions.  The :mod:`repro.scenarios.store` keys its cache on it and the
  :mod:`repro.scenarios.runner` uses it to make parallel sweeps
  order-independent.
* **dict/JSON round-trip** — :meth:`to_dict` / :meth:`from_dict` (and the JSON
  wrappers) reconstruct an identical spec, which is how specs cross the
  ``multiprocessing`` boundary and how cached results record what produced
  them.

Family-specific knobs that do not warrant a first-class field live in
``params``, a sorted tuple of ``(key, value)`` pairs (accepted as a mapping
for convenience) that participates in the hash like every other field.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.common.config import FaultConfig
from repro.common.errors import ConfigurationError

#: Bump when the spec schema changes incompatibly; part of the content hash so
#: stale caches never alias new semantics.
SPEC_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """One fully-determined simulation cell.

    Attributes:
        family: registered scenario family name (see
            :mod:`repro.scenarios.registry`); the family's runner interprets
            the spec.
        n: committee size (0 for cells with no committee, e.g. pure theory).
        deceitful: number of deceitful replicas; ``None`` means "derive from
            the attack": the paper's ``d = ceil(5n/9) - 1`` when an attack is
            set, 0 otherwise.
        benign: number of benign (crash-mute) replicas.
        enforce_model: validate the fault mix against the paper's admissible
            region (disable for deliberately out-of-model sweeps, §5.3 style).
        delay: base delay-model name (``"aws"``, ``"gamma"``, ``"200ms"``,
            ``"jitter"``, ``"lossy"``, ...).
        attack: ``"binary"`` / ``"rbbcast"`` coalition attack, or ``None``.
        cross_partition_delay: delay-model name injected between honest
            partitions while the attack runs (ignored without an attack).
        workload_transactions: client transfers submitted before the run.
            For coalition-attack families, 0 means "the family default" (the
            paper's 12 transfers per replica); the registered grids spell the
            resolved value out so each cell's hash records what actually runs.
        batch_size: transactions per proposal.
        instances: consensus instances each active replica is asked to run.
        seed: seed for every random stream of the run.
        max_time: simulated-time stop condition in seconds.
        telemetry: instrument the cell with a
            :class:`~repro.telemetry.TelemetryRegistry`; the snapshot is
            persisted next to the result row and rendered by
            ``python -m repro.scenarios report``.  Part of the content hash,
            so instrumented and bare runs of the same cell cache separately.
        tracing: instrument the cell with a causal
            :class:`~repro.tracing.TraceRuntime` (spans, flight recorder,
            invariant monitors); the trace summary is persisted next to the
            result row.  Same hash convention as ``telemetry``.
        obs: instrument the cell with a live
            :class:`~repro.obs.ObsRuntime` (streaming sampler, host-CPU
            profiler); the snapshot — time series, quantiles and the CPU
            attribution report — is persisted next to the result row and
            feeds the SLO gates.  Same hash convention as ``telemetry``.
        params: extra family-specific knobs as sorted ``(key, value)`` pairs.
    """

    family: str
    n: int = 0
    deceitful: Optional[int] = None
    benign: int = 0
    enforce_model: bool = True
    delay: str = "aws"
    attack: Optional[str] = None
    cross_partition_delay: Optional[str] = None
    workload_transactions: int = 0
    batch_size: int = 10
    instances: int = 2
    seed: int = 1
    max_time: float = 300.0
    telemetry: bool = False
    tracing: bool = False
    obs: bool = False
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.family:
            raise ConfigurationError("scenario family name cannot be empty")
        params = self.params
        if isinstance(params, Mapping):
            params = tuple(sorted(params.items()))
        else:
            params = tuple(sorted((str(k), v) for k, v in params))
        object.__setattr__(self, "params", params)
        object.__setattr__(self, "max_time", float(self.max_time))

    # -- family-specific knobs -------------------------------------------------

    def param(self, key: str, default: Any = None) -> Any:
        """Return the family-specific knob ``key`` (or ``default``)."""
        for name, value in self.params:
            if name == key:
                return value
        return default

    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """Return a copy with the given fields replaced (params merged)."""
        params = changes.pop("params", None)
        if params is not None:
            merged = dict(self.params)
            merged.update(dict(params))
            changes["params"] = tuple(sorted(merged.items()))
        return dataclasses.replace(self, **changes)

    # -- derived configuration -------------------------------------------------

    def fault_config(self) -> FaultConfig:
        """Materialise the :class:`FaultConfig` the spec describes."""
        if self.deceitful is None:
            if self.attack:
                return FaultConfig.paper_attack(self.n, benign=self.benign)
            return FaultConfig(n=self.n, benign=self.benign)
        return FaultConfig(
            n=self.n,
            deceitful=self.deceitful,
            benign=self.benign,
            enforce_model=self.enforce_model,
        )

    def attack_spec(self):
        """Materialise the :class:`~repro.zlb.system.AttackSpec` (or None)."""
        if not self.attack:
            return None
        from repro.zlb.system import AttackSpec

        return AttackSpec(
            kind=self.attack,
            cross_partition_delay=self.cross_partition_delay or "1000ms",
        )

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form; JSON-serialisable and accepted by :meth:`from_dict`.

        The ``telemetry``, ``tracing`` and ``obs`` flags are only serialised
        when set, so bare (uninstrumented) cells keep the hashes they had
        before the flags existed and old result stores stay valid.
        """
        data = self._base_dict()
        if self.telemetry:
            data["telemetry"] = True
        if self.tracing:
            data["tracing"] = True
        if self.obs:
            data["obs"] = True
        return data

    def _base_dict(self) -> Dict[str, Any]:
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "family": self.family,
            "n": self.n,
            "deceitful": self.deceitful,
            "benign": self.benign,
            "enforce_model": self.enforce_model,
            "delay": self.delay,
            "attack": self.attack,
            "cross_partition_delay": self.cross_partition_delay,
            "workload_transactions": self.workload_transactions,
            "batch_size": self.batch_size,
            "instances": self.instances,
            "seed": self.seed,
            "max_time": self.max_time,
            "params": {key: value for key, value in self.params},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        schema = data.get("schema", SPEC_SCHEMA_VERSION)
        if schema != SPEC_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported scenario spec schema {schema!r} "
                f"(expected {SPEC_SCHEMA_VERSION})"
            )
        fields = {field.name for field in dataclasses.fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in fields}
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(payload))

    # -- identity --------------------------------------------------------------

    @property
    def spec_hash(self) -> str:
        """Stable content hash (16 hex chars) of the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]

    def label(self) -> str:
        """Compact human-readable cell label for progress output."""
        parts = [self.family]
        if self.n:
            parts.append(f"n={self.n}")
        if self.attack:
            parts.append(f"attack={self.attack}")
            if self.cross_partition_delay:
                parts.append(f"cross={self.cross_partition_delay}")
        elif self.delay != "aws":
            parts.append(f"delay={self.delay}")
        for key, value in self.params:
            parts.append(f"{key}={value}")
        parts.append(f"seed={self.seed}")
        if self.telemetry:
            parts.append("telemetry")
        if self.tracing:
            parts.append("tracing")
        if self.obs:
            parts.append("obs")
        return " ".join(parts)


def spec_key(spec_or_hash: Union[ScenarioSpec, str]) -> str:
    """Accept either a spec or a raw hash (store/runner convenience)."""
    if isinstance(spec_or_hash, ScenarioSpec):
        return spec_or_hash.spec_hash
    return spec_or_hash
