"""Declarative scenario orchestration.

This package turns every experiment — the paper's figures and tables as well
as brand-new workloads — into a *scenario family*: a named grid of frozen
:class:`~repro.scenarios.spec.ScenarioSpec` cells that can be listed,
expanded, executed serially or in parallel, and cached by content hash.

Layout:

* :mod:`repro.scenarios.spec` — the frozen spec value object (hash + JSON);
* :mod:`repro.scenarios.registry` — named families, ``@scenario`` decorator,
  sweep-grid expansion;
* :mod:`repro.scenarios.runner` — serial / ``multiprocessing`` execution with
  progress callbacks and wall-clock accounting;
* :mod:`repro.scenarios.store` — the JSONL result cache keyed by spec hash;
* :mod:`repro.scenarios.library` — the built-in families (fig3-fig6, table1,
  appendix-b, sec53, quickstart, churn, crash-recovery, jitter-stress);
* :mod:`repro.scenarios.cli` — ``python -m repro.scenarios
  list|run|sweep|report`` (``--telemetry`` instruments cells; ``report``
  renders the stored snapshots as comparative tables).
"""

from repro.scenarios.registry import (
    ScenarioFamily,
    expand,
    expand_grid,
    family_names,
    get_family,
    iter_families,
    register,
    run_spec,
    scenario,
)
from repro.scenarios.runner import RunOutcome, ScenarioRunner, SweepReport, run_family, run_specs
from repro.scenarios.spec import SPEC_SCHEMA_VERSION, ScenarioSpec
from repro.scenarios.store import ResultStore

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "ScenarioSpec",
    "ScenarioFamily",
    "ScenarioRunner",
    "SweepReport",
    "RunOutcome",
    "ResultStore",
    "expand",
    "expand_grid",
    "family_names",
    "get_family",
    "iter_families",
    "register",
    "run_spec",
    "run_family",
    "run_specs",
    "scenario",
]
