"""Command-line interface of the scenario subsystem.

::

    python -m repro.scenarios list
    python -m repro.scenarios run fig3 --scale small
    python -m repro.scenarios sweep fig4 --scale small --jobs 2 --out results.jsonl
    python -m repro.scenarios sweep fig4 --telemetry --out results.jsonl
    python -m repro.scenarios report results.jsonl --metric rbc

``list`` shows every registered family with its cell counts; ``run`` executes
one family and prints the result rows as a table; ``sweep`` executes one or
more families against a JSONL :class:`ResultStore`, so re-running the same
sweep serves every already-computed cell from cache.  ``--telemetry``
instruments every cell (per-protocol message counts, per-phase latency
histograms, recovery timelines) and ``report`` renders the stored snapshots
as comparative tables, optionally exporting them as CSV/JSON.

``trace`` replays a single cell with causal tracing on::

    python -m repro.scenarios trace fig4 --cell 0 --out trace.json

It prints the critical-path analysis (which phase — mempool wait, RBC,
binary rounds or commit — dominates time-to-commit, per percentile), writes
a Chrome-tracing/Perfetto-compatible JSON export, checks the online
invariant monitors (agreement, validity, supply conservation, zero-loss
accounting) and exits non-zero — dumping the flight recorder — when any
invariant tripped.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.metrics import format_table
from repro.common.errors import ConfigurationError
from repro.scenarios import registry
from repro.scenarios.runner import RunOutcome, ScenarioRunner
from repro.scenarios.store import ResultStore

DEFAULT_OUT = "scenario-results.jsonl"


def _progress(outcome: RunOutcome, completed: int, total: int) -> None:
    status = "cache" if outcome.cached else f"{outcome.wall_clock_s:6.1f}s"
    print(f"[{completed:>3}/{total}] {status}  {outcome.spec.label()}", flush=True)


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for family in registry.iter_families():
        rows.append(
            {
                "family": family.name,
                "cells_small": len(family.expand("small")),
                "cells_full": len(family.expand("full")),
                "tags": ",".join(family.tags),
                "description": family.description,
            }
        )
    print(format_table(rows))
    return 0


def _run_families(
    families: List[str],
    scale: str,
    jobs: int,
    store: Optional[ResultStore],
    quiet: bool,
    print_rows: bool = False,
    telemetry: bool = False,
    report_telemetry: bool = False,
) -> int:
    for name in families:
        specs = registry.expand(name, scale)
        if telemetry:
            specs = [spec.with_overrides(telemetry=True) for spec in specs]
        runner = ScenarioRunner(
            store=store, jobs=jobs, progress=None if quiet else _progress
        )
        report = runner.run(specs)
        print(
            f"{name}: {len(specs)} cells — {report.cache_hits} cache hits, "
            f"{report.executed} executed in {report.wall_clock_s:.1f}s wall-clock"
        )
        if print_rows:
            print(format_table(report.rows))
        if report_telemetry:
            # `run --telemetry` renders the snapshots inline: without a store
            # they would otherwise be collected and silently discarded.
            from repro.telemetry.report import render_report

            records = [
                {
                    "family": outcome.spec.family,
                    "spec": outcome.spec.to_dict(),
                    "telemetry": outcome.telemetry,
                }
                for outcome in report.outcomes
            ]
            print(render_report(records))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    store = ResultStore(args.out) if args.out else None
    return _run_families(
        [args.family],
        args.scale,
        args.jobs,
        store,
        args.quiet,
        print_rows=True,
        telemetry=args.telemetry,
        report_telemetry=args.telemetry,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    store = ResultStore(args.out)
    code = _run_families(
        args.families,
        args.scale,
        args.jobs,
        store,
        args.quiet,
        telemetry=args.telemetry,
    )
    print(f"results: {store.path} ({len(store)} cells cached)")
    return code


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.tracing import core as tracing_core
    from repro.tracing.core import TraceRuntime
    from repro.tracing.critical_path import render_critical_path
    from repro.tracing.export import write_chrome_trace, write_span_tree

    specs = registry.expand(args.family, args.scale)
    if not 0 <= args.cell < len(specs):
        print(
            f"error: --cell {args.cell} out of range "
            f"({args.family}/{args.scale} has {len(specs)} cells)",
            file=sys.stderr,
        )
        return 2
    spec = specs[args.cell].with_overrides(tracing=True)
    print(f"tracing cell: {spec.label()}", flush=True)

    runtime = TraceRuntime.enabled(dump_path=args.dump)
    with tracing_core.activate(runtime):
        row = registry.run_spec(spec)
    # End-of-run zero-loss accounting, for rows that carry the ledger totals
    # (coalition-attack families do; fault-free families have nothing to seize).
    if {"realized_gain", "seized_deposit"} <= set(row):
        runtime.monitors.finalize(
            row["realized_gain"],
            row["seized_deposit"],
            row.get("deposit_shortfall") or 0,
            at=row.get("simulated_time_s"),
        )

    print(format_table([row]))
    summary = runtime.summary()
    print(
        f"traces: {summary['traces']}  spans: {summary['spans']}  "
        f"events: {summary['events']}"
    )
    print(render_critical_path(summary["critical_path"]))
    print(f"chrome trace: {write_chrome_trace(runtime.tracer, args.out)}")
    if args.tree:
        print(f"span tree: {write_span_tree(runtime.tracer, args.tree)}")

    monitors = runtime.monitors
    if monitors.ok:
        print("invariant monitors: all green")
        return 0
    print("invariant monitors: VIOLATED", file=sys.stderr)
    for violation in monitors.violations:
        print(f"  {violation.describe()}", file=sys.stderr)
    if monitors.dump_written:
        print(f"flight recorder dump: {args.dump}", file=sys.stderr)
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.telemetry.export import snapshot_rows, write_csv, write_json
    from repro.telemetry.report import render_report, telemetry_cells

    store = ResultStore(args.store)
    records = store.records(args.family)
    print(render_report(records, metric_filter=args.metric))
    cells = telemetry_cells(records)
    if args.json and cells:
        write_json([snapshot for _, snapshot in cells], args.json)
        print(f"json: {args.json}")
    if args.csv and cells:
        rows = [
            row
            for label, snapshot in cells
            for row in snapshot_rows(snapshot, cell=label)
        ]
        write_csv(rows, args.csv)
        print(f"csv: {args.csv}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="List and run declarative ZLB scenario sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show registered scenario families").set_defaults(
        func=_cmd_list
    )

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--scale",
            choices=("small", "full"),
            default="small",
            help="sweep grid scale (default: small)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes (default: 1 = serial)",
        )
        p.add_argument(
            "--quiet", action="store_true", help="suppress per-cell progress lines"
        )
        p.add_argument(
            "--telemetry",
            action="store_true",
            help="instrument every cell and store telemetry snapshots "
            "(see the `report` subcommand)",
        )
        p.add_argument(
            "--log-level",
            default=None,
            help="enable stdlib logging for the 'repro' logger tree "
            "(DEBUG, INFO, WARNING, ...)",
        )

    run = sub.add_parser("run", help="run one family and print its rows")
    run.add_argument("family", help="scenario family name (see `list`)")
    add_run_options(run)
    run.add_argument(
        "--out",
        default=None,
        help="optional JSONL result store (enables caching)",
    )
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="run one or more families against a JSONL result store"
    )
    sweep.add_argument("families", nargs="+", help="scenario family names")
    add_run_options(sweep)
    sweep.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"JSONL result store path (default: {DEFAULT_OUT})",
    )
    sweep.set_defaults(func=_cmd_sweep)

    trace = sub.add_parser(
        "trace",
        help="replay one cell with causal tracing and invariant monitors",
    )
    trace.add_argument("family", help="scenario family name (see `list`)")
    trace.add_argument(
        "--cell",
        type=int,
        default=0,
        help="cell index within the family grid (default: 0)",
    )
    trace.add_argument(
        "--scale",
        choices=("small", "full"),
        default="small",
        help="grid scale the cell index refers to (default: small)",
    )
    trace.add_argument(
        "--out",
        default="trace.json",
        help="Chrome-tracing/Perfetto JSON output path (default: trace.json)",
    )
    trace.add_argument(
        "--tree",
        default=None,
        help="optional span-tree JSON output path",
    )
    trace.add_argument(
        "--dump",
        default="flight-recorder.jsonl",
        help="flight-recorder dump path written on an invariant violation "
        "(default: flight-recorder.jsonl)",
    )
    trace.add_argument(
        "--log-level",
        default=None,
        help="enable stdlib logging for the 'repro' logger tree",
    )
    trace.set_defaults(func=_cmd_trace)

    report = sub.add_parser(
        "report",
        help="render comparative telemetry tables from a result store",
    )
    report.add_argument(
        "store",
        nargs="?",
        default=DEFAULT_OUT,
        help=f"JSONL result store to read (default: {DEFAULT_OUT})",
    )
    report.add_argument("--family", default=None, help="restrict to one family")
    report.add_argument(
        "--metric",
        default=None,
        help="substring filter on histogram/gauge metric names (e.g. 'rbc')",
    )
    report.add_argument("--csv", default=None, help="export flattened metrics as CSV")
    report.add_argument(
        "--json", default=None, help="export the raw snapshots as JSON"
    )
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if getattr(args, "log_level", None):
            from repro.common.logging import configure_logging

            configure_logging(args.log_level)
        return args.func(args)
    except (ConfigurationError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        # Point stdout at devnull so the interpreter-exit flush of the
        # broken stream cannot re-raise (and flip the exit status to 120).
        import os

        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
