"""Command-line interface of the scenario subsystem.

::

    python -m repro.scenarios list
    python -m repro.scenarios run fig3 --scale small
    python -m repro.scenarios sweep fig4 --scale small --jobs 2 --out results.jsonl
    python -m repro.scenarios sweep fig4 --telemetry --out results.jsonl
    python -m repro.scenarios report results.jsonl --metric rbc

``list`` shows every registered family with its cell counts; ``run`` executes
one family and prints the result rows as a table; ``sweep`` executes one or
more families against a JSONL :class:`ResultStore`, so re-running the same
sweep serves every already-computed cell from cache.  ``--telemetry``
instruments every cell (per-protocol message counts, per-phase latency
histograms, recovery timelines) and ``report`` renders the stored snapshots
as comparative tables, optionally exporting them as CSV/JSON.

``run``/``sweep`` also drive the live observability plane::

    python -m repro.scenarios sweep fig4 --jobs 4 --watch --serve 9100
    python -m repro.scenarios run fig4 --obs --profile-out profile.json
    python -m repro.scenarios report results.jsonl --gate

``--watch`` renders an in-place terminal table of per-cell progress (percent
complete, events/sec, simulated time, ETA) streamed from the workers;
``--serve PORT`` additionally exposes the same state as Prometheus text
(``/metrics``) and JSON (``/state``) on loopback.  ``--obs`` samples
time-series metrics and host-CPU attribution into the result store;
``--profile-out`` / ``--series-out`` / ``--series-csv`` export them.
``report --gate`` evaluates each family's declared SLOs against the stored
records and exits non-zero on breach.

``trace`` replays a single cell with causal tracing on::

    python -m repro.scenarios trace fig4 --cell 0 --out trace.json

It prints the critical-path analysis (which phase — mempool wait, RBC,
binary rounds or commit — dominates time-to-commit, per percentile), writes
a Chrome-tracing/Perfetto-compatible JSON export, checks the online
invariant monitors (agreement, validity, supply conservation, zero-loss
accounting) and exits non-zero — dumping the flight recorder — when any
invariant tripped.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.metrics import format_table
from repro.common.errors import ConfigurationError
from repro.scenarios import registry
from repro.scenarios.runner import RunOutcome, ScenarioRunner
from repro.scenarios.store import ResultStore

DEFAULT_OUT = "scenario-results.jsonl"


def _progress(outcome: RunOutcome, completed: int, total: int) -> None:
    status = "cache" if outcome.cached else f"{outcome.wall_clock_s:6.1f}s"
    print(f"[{completed:>3}/{total}] {status}  {outcome.spec.label()}", flush=True)


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for family in registry.iter_families():
        rows.append(
            {
                "family": family.name,
                "cells_small": len(family.expand("small")),
                "cells_full": len(family.expand("full")),
                "tags": ",".join(family.tags),
                "description": family.description,
            }
        )
    print(format_table(rows))
    return 0


def _run_families(
    families: List[str],
    scale: str,
    jobs: int,
    store: Optional[ResultStore],
    quiet: bool,
    print_rows: bool = False,
    telemetry: bool = False,
    report_telemetry: bool = False,
    obs: bool = False,
    watch: bool = False,
    serve: Optional[int] = None,
    profile_out: Optional[str] = None,
    series_out: Optional[str] = None,
    series_csv: Optional[str] = None,
) -> int:
    watcher = None
    server = None
    if watch or serve is not None:
        from repro.obs.watch import SweepWatcher

        watcher = SweepWatcher(out=sys.stderr)
        if serve is not None:
            from repro.obs.serve import WatchServer

            server = WatchServer(watcher, port=serve)
            server.start()
            print(
                f"serving sweep state on http://127.0.0.1:{server.port} "
                "(/metrics, /state)",
                flush=True,
            )
    obs_snapshots: List[dict] = []
    try:
        for name in families:
            specs = registry.expand(name, scale)
            if telemetry:
                specs = [spec.with_overrides(telemetry=True) for spec in specs]
            if obs:
                specs = [spec.with_overrides(obs=True) for spec in specs]
            runner = ScenarioRunner(
                store=store,
                jobs=jobs,
                # The watcher owns the terminal; per-cell progress lines would
                # tear its in-place table.
                progress=None if quiet or watcher is not None else _progress,
                watch=watcher,
            )
            report = runner.run(specs)
            print(
                f"{name}: {len(specs)} cells — {report.cache_hits} cache hits, "
                f"{report.executed} executed in {report.wall_clock_s:.1f}s wall-clock"
            )
            if print_rows:
                print(format_table(report.rows))
            obs_snapshots.extend(
                outcome.obs for outcome in report.outcomes if outcome.obs
            )
            if report_telemetry:
                # `run --telemetry` renders the snapshots inline: without a store
                # they would otherwise be collected and silently discarded.
                from repro.telemetry.report import render_report

                records = [
                    {
                        "family": outcome.spec.family,
                        "spec": outcome.spec.to_dict(),
                        "telemetry": outcome.telemetry,
                    }
                    for outcome in report.outcomes
                ]
                print(render_report(records))
    finally:
        if server is not None:
            server.stop()
    _export_obs(obs_snapshots, profile_out, series_out, series_csv, print_rows)
    return 0


def _export_obs(
    snapshots: List[dict],
    profile_out: Optional[str],
    series_out: Optional[str],
    series_csv: Optional[str],
    render_profiles: bool,
) -> None:
    """Render and export the obs snapshots a run/sweep collected."""
    if not snapshots:
        return
    from repro.obs.profiler import render_report as render_profile
    from repro.obs.series import write_series_csv, write_series_jsonl

    if render_profiles:
        for snap in snapshots:
            profile = dict(snap.get("profile") or {})
            if not profile:
                continue
            top = profile.get("buckets", [])[:10]
            truncated = len(profile.get("buckets", [])) - len(top)
            profile["buckets"] = top
            profile["truncated_buckets"] = (
                profile.get("truncated_buckets", 0) + truncated
            )
            print(render_profile(profile, title=f"profile {snap.get('cell')}"))
    if profile_out:
        import json

        with open(profile_out, "w", encoding="utf-8") as handle:
            json.dump(
                [
                    {"cell": snap.get("cell"), "profile": snap.get("profile")}
                    for snap in snapshots
                ],
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"profile report: {profile_out}")
    if series_out:
        points = write_series_jsonl(series_out, snapshots)
        print(f"time series: {series_out} ({points} points)")
    if series_csv:
        points = write_series_csv(series_csv, snapshots)
        print(f"time series csv: {series_csv} ({points} points)")


def _obs_flags(args: argparse.Namespace) -> bool:
    """--obs, or any flag that needs obs snapshots to produce its artifact."""
    return bool(
        args.obs or args.profile_out or args.series_out or args.series_csv
    )


def _cmd_run(args: argparse.Namespace) -> int:
    store = ResultStore(args.out) if args.out else None
    return _run_families(
        [args.family],
        args.scale,
        args.jobs,
        store,
        args.quiet,
        print_rows=True,
        telemetry=args.telemetry,
        report_telemetry=args.telemetry,
        obs=_obs_flags(args),
        watch=args.watch,
        serve=args.serve,
        profile_out=args.profile_out,
        series_out=args.series_out,
        series_csv=args.series_csv,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    store = ResultStore(args.out)
    code = _run_families(
        args.families,
        args.scale,
        args.jobs,
        store,
        args.quiet,
        telemetry=args.telemetry,
        obs=_obs_flags(args),
        watch=args.watch,
        serve=args.serve,
        profile_out=args.profile_out,
        series_out=args.series_out,
        series_csv=args.series_csv,
    )
    print(f"results: {store.path} ({len(store)} cells cached)")
    return code


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.tracing import core as tracing_core
    from repro.tracing.core import TraceRuntime
    from repro.tracing.critical_path import render_critical_path
    from repro.tracing.export import write_chrome_trace, write_span_tree

    specs = registry.expand(args.family, args.scale)
    if not 0 <= args.cell < len(specs):
        print(
            f"error: --cell {args.cell} out of range "
            f"({args.family}/{args.scale} has {len(specs)} cells)",
            file=sys.stderr,
        )
        return 2
    spec = specs[args.cell].with_overrides(tracing=True)
    print(f"tracing cell: {spec.label()}", flush=True)

    runtime = TraceRuntime.enabled(dump_path=args.dump)
    with tracing_core.activate(runtime):
        row = registry.run_spec(spec)
    # End-of-run zero-loss accounting, for rows that carry the ledger totals
    # (coalition-attack families do; fault-free families have nothing to seize).
    if {"realized_gain", "seized_deposit"} <= set(row):
        runtime.monitors.finalize(
            row["realized_gain"],
            row["seized_deposit"],
            row.get("deposit_shortfall") or 0,
            at=row.get("simulated_time_s"),
        )

    print(format_table([row]))
    summary = runtime.summary()
    print(
        f"traces: {summary['traces']}  spans: {summary['spans']}  "
        f"events: {summary['events']}"
    )
    print(render_critical_path(summary["critical_path"]))
    print(f"chrome trace: {write_chrome_trace(runtime.tracer, args.out)}")
    if args.tree:
        print(f"span tree: {write_span_tree(runtime.tracer, args.tree)}")

    monitors = runtime.monitors
    if monitors.ok:
        print("invariant monitors: all green")
        return 0
    print("invariant monitors: VIOLATED", file=sys.stderr)
    for violation in monitors.violations:
        print(f"  {violation.describe()}", file=sys.stderr)
    if monitors.dump_written:
        print(f"flight recorder dump: {args.dump}", file=sys.stderr)
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.telemetry.export import snapshot_rows, write_csv, write_json
    from repro.telemetry.report import render_report, telemetry_cells

    store = ResultStore(args.store)
    records = store.records(args.family)
    if not args.gate:
        print(render_report(records, metric_filter=args.metric))
    cells = telemetry_cells(records)
    if args.json and cells:
        write_json([snapshot for _, snapshot in cells], args.json)
        print(f"json: {args.json}")
    if args.csv and cells:
        rows = [
            row
            for label, snapshot in cells
            for row in snapshot_rows(snapshot, cell=label)
        ]
        write_csv(rows, args.csv)
        print(f"csv: {args.csv}")
    if args.gate:
        return _evaluate_gates(records, args.slo or [])
    return 0


def _evaluate_gates(records: List[dict], overrides: List[str]) -> int:
    """Evaluate declared (and overridden) family SLOs; exit 1 on breach."""
    from repro.obs.gates import (
        SLO,
        evaluate_records,
        parse_slo_overrides,
        render_gate_report,
    )

    slos = {
        family.name: family.slo
        for family in registry.iter_families()
        if family.slo is not None
    }
    for family_name, metrics in parse_slo_overrides(overrides).items():
        base = slos.get(family_name, SLO())
        slos[family_name] = base.merged(metrics)
    report = evaluate_records(slos, records)
    print(render_gate_report(report))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="List and run declarative ZLB scenario sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show registered scenario families").set_defaults(
        func=_cmd_list
    )

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--scale",
            choices=("small", "full"),
            default="small",
            help="sweep grid scale (default: small)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes (default: 1 = serial)",
        )
        p.add_argument(
            "--quiet", action="store_true", help="suppress per-cell progress lines"
        )
        p.add_argument(
            "--telemetry",
            action="store_true",
            help="instrument every cell and store telemetry snapshots "
            "(see the `report` subcommand)",
        )
        p.add_argument(
            "--obs",
            action="store_true",
            help="instrument every cell with the live observability plane "
            "(streamed time series, host-CPU profile) and store snapshots",
        )
        p.add_argument(
            "--watch",
            action="store_true",
            help="live terminal table of per-cell progress "
            "(percent, events/sec, sim-time, ETA)",
        )
        p.add_argument(
            "--serve",
            type=int,
            default=None,
            metavar="PORT",
            help="expose watch state over loopback HTTP "
            "(Prometheus text on /metrics, JSON on /state); implies --watch",
        )
        p.add_argument(
            "--profile-out",
            default=None,
            metavar="PATH",
            help="write per-cell host-CPU attribution reports as JSON "
            "(implies --obs)",
        )
        p.add_argument(
            "--series-out",
            default=None,
            metavar="PATH",
            help="write sampled time series as JSONL, one point per line "
            "(implies --obs)",
        )
        p.add_argument(
            "--series-csv",
            default=None,
            metavar="PATH",
            help="write sampled time series as plot-ready long-form CSV "
            "(implies --obs)",
        )
        p.add_argument(
            "--log-level",
            default=None,
            help="enable stdlib logging for the 'repro' logger tree "
            "(DEBUG, INFO, WARNING, ...)",
        )

    run = sub.add_parser("run", help="run one family and print its rows")
    run.add_argument("family", help="scenario family name (see `list`)")
    add_run_options(run)
    run.add_argument(
        "--out",
        default=None,
        help="optional JSONL result store (enables caching)",
    )
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="run one or more families against a JSONL result store"
    )
    sweep.add_argument("families", nargs="+", help="scenario family names")
    add_run_options(sweep)
    sweep.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"JSONL result store path (default: {DEFAULT_OUT})",
    )
    sweep.set_defaults(func=_cmd_sweep)

    trace = sub.add_parser(
        "trace",
        help="replay one cell with causal tracing and invariant monitors",
    )
    trace.add_argument("family", help="scenario family name (see `list`)")
    trace.add_argument(
        "--cell",
        type=int,
        default=0,
        help="cell index within the family grid (default: 0)",
    )
    trace.add_argument(
        "--scale",
        choices=("small", "full"),
        default="small",
        help="grid scale the cell index refers to (default: small)",
    )
    trace.add_argument(
        "--out",
        default="trace.json",
        help="Chrome-tracing/Perfetto JSON output path (default: trace.json)",
    )
    trace.add_argument(
        "--tree",
        default=None,
        help="optional span-tree JSON output path",
    )
    trace.add_argument(
        "--dump",
        default="flight-recorder.jsonl",
        help="flight-recorder dump path written on an invariant violation "
        "(default: flight-recorder.jsonl)",
    )
    trace.add_argument(
        "--log-level",
        default=None,
        help="enable stdlib logging for the 'repro' logger tree",
    )
    trace.set_defaults(func=_cmd_trace)

    report = sub.add_parser(
        "report",
        help="render comparative telemetry tables from a result store",
    )
    report.add_argument(
        "store",
        nargs="?",
        default=DEFAULT_OUT,
        help=f"JSONL result store to read (default: {DEFAULT_OUT})",
    )
    report.add_argument("--family", default=None, help="restrict to one family")
    report.add_argument(
        "--metric",
        default=None,
        help="substring filter on histogram/gauge metric names (e.g. 'rbc')",
    )
    report.add_argument("--csv", default=None, help="export flattened metrics as CSV")
    report.add_argument(
        "--json", default=None, help="export the raw snapshots as JSON"
    )
    report.add_argument(
        "--gate",
        action="store_true",
        help="evaluate each family's declared SLOs against the stored "
        "records and exit non-zero on any breach",
    )
    report.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="FAMILY:METRIC=VALUE",
        help="override (or inject) one SLO limit for the gate evaluation; "
        "repeatable (e.g. fig4-recovery:min_events_per_sec=1e12)",
    )
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if getattr(args, "log_level", None):
            from repro.common.logging import configure_logging

            configure_logging(args.log_level)
        return args.func(args)
    except (ConfigurationError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        # Point stdout at devnull so the interpreter-exit flush of the
        # broken stream cannot re-raise (and flip the exit status to 120).
        import os

        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
