"""The built-in scenario library.

Registers every experiment of the paper as a declarative scenario family —
``fig3`` .. ``fig6``, ``table1``, ``appendix-b``, ``sec53`` and the
``quickstart`` walkthrough — plus three families the paper does not plot:

* ``churn`` — committee churn under repeated membership changes: consecutive
  attack/recovery rounds, measuring how exclusion/inclusion costs accumulate;
* ``crash-recovery`` — honest replicas crash mid-run (``disconnect``) and come
  back (``reconnect``); the committee must keep committing through the outage;
* ``jitter-stress`` — fault-free committees under the high-jitter and lossy
  delay models, measuring throughput degradation relative to the calm
  ``gamma`` baseline.

Every family follows the same contract: a grid builder expands
``sizes x seeds x attack variants`` for a scale (``small`` keeps cells
laptop-sized, ``full`` matches the paper), and a cell runner turns one
:class:`ScenarioSpec` into a flat JSON-serialisable row.  Rows carry the cell
axes (``n``, ``seed``, ``delay``/``attack`` where relevant) so aggregation
(means over seeds, figure tables) can happen downstream without re-running.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from repro.obs.gates import SLO
from repro.scenarios.registry import expand_grid, scenario
from repro.scenarios.spec import ScenarioSpec


def _attack_sizes(scale: str) -> List[int]:
    from repro.experiments.common import attack_sizes

    return attack_sizes(scale)


def _figure_sizes(scale: str) -> List[int]:
    from repro.experiments.common import figure_sizes

    return figure_sizes(scale)


def _sweep_seeds(scale: str) -> List[int]:
    from repro.experiments.common import sweep_seeds

    return sweep_seeds(scale)


def _metrics_row(result) -> Dict[str, Any]:
    """Flatten a :class:`~repro.zlb.system.SystemResult` into a plain row."""
    return result.to_metrics().to_row()


def _run_attack_spec(spec: ScenarioSpec) -> Dict[str, Any]:
    """Shared cell body of every coalition-attack family."""
    from repro.experiments.fig4_disagreements import run_attack_cell

    result = run_attack_cell(
        n=spec.n,
        attack_kind=spec.attack or "binary",
        cross_partition_delay=spec.cross_partition_delay or "1000ms",
        seed=spec.seed,
        instances=spec.instances,
        max_time=spec.max_time,
        # The scale family raises the livelock guard: n=100 cells need more
        # than the default 5M events to resolve the attack and recover.
        max_events=spec.param("max_events"),
        benign=spec.benign,
        deceitful=spec.deceitful,
        delay=spec.delay,
        # 0 means "family default" (the paper's 12 transfers per replica).
        workload_transactions=spec.workload_transactions or None,
        batch_size=spec.batch_size,
    )
    row = _metrics_row(result)
    row.update(
        {
            "attack": spec.attack or "binary",
            "delay": spec.cross_partition_delay or "1000ms",
            "seed": spec.seed,
            "instances": spec.instances,
            "recovered": result.recovered,
        }
    )
    return row


# -- paper families ------------------------------------------------------------


def _fig3_grid(scale: str) -> List[ScenarioSpec]:
    from repro.experiments.fig3_throughput import fig3_specs

    return fig3_specs(sizes=_figure_sizes(scale))


@scenario(
    "fig3",
    description="Throughput of ZLB vs Polygraph/HotStuff/Red Belly (phase model)",
    grid=_fig3_grid,
    tags=("paper", "model"),
    # Analytical model cells — only their host-side cost is gated.
    slo=SLO(max_host_seconds=30.0),
)
def _run_fig3_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    from repro.analysis.throughput import ThroughputModel, available_protocols
    from repro.network.delays import AwsRegionDelay

    model = ThroughputModel(AwsRegionDelay())
    row: Dict[str, Any] = {"n": spec.n}
    for protocol in available_protocols():
        row[protocol] = round(model.throughput(protocol, spec.n), 1)
    row["zlb_vs_hotstuff"] = round(row["ZLB"] / row["HotStuff"], 2)
    return row


def _fig4_grid(scale: str) -> List[ScenarioSpec]:
    from repro.experiments.fig4_disagreements import fig4_specs

    return [
        spec
        for attack in ("binary", "rbbcast")
        for spec in fig4_specs(
            attack,
            sizes=_attack_sizes(scale),
            seeds=_sweep_seeds(scale),
        )
    ]


@scenario(
    "fig4",
    description="Disagreeing decisions per committee size under both attacks",
    grid=_fig4_grid,
    tags=("paper", "attack"),
    # Generous floors: catch order-of-magnitude regressions (a stalled event
    # loop, a quadratic merge) without flaking on slow CI runners.
    slo=SLO(
        min_events_per_sec=250.0,
        max_p99_commit_s=120.0,
        max_host_seconds=120.0,
    ),
)
def _run_fig4_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    return _run_attack_spec(spec)


def _fig5_grid(scale: str) -> List[ScenarioSpec]:
    from repro.experiments.fig5_membership import fig5_specs

    return fig5_specs(sizes=_attack_sizes(scale), seeds=_sweep_seeds(scale))


@scenario(
    "fig5",
    description="Detect / exclude / include times of the membership change",
    grid=_fig5_grid,
    tags=("paper", "attack"),
)
def _run_fig5_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    return _run_attack_spec(spec)


def _fig6_grid(scale: str) -> List[ScenarioSpec]:
    from repro.experiments.fig6_blockdepth import fig6_specs

    return fig6_specs(sizes=_attack_sizes(scale), seeds=_sweep_seeds(scale))


@scenario(
    "fig6",
    description="Minimum finalization blockdepth for zero loss (D = G/10)",
    grid=_fig6_grid,
    tags=("paper", "attack", "analysis"),
)
def _run_fig6_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    from repro.analysis.zero_loss import (
        attack_success_probability,
        branch_bound,
        minimum_blockdepth,
    )

    row = _run_attack_spec(spec)
    fault_config = spec.fault_config()
    rho = attack_success_probability(
        row["disagreement_instances"], spec.instances
    )
    branches = branch_bound(spec.n, fault_config.deceitful)
    row.update(
        {
            "estimated_rho": round(rho, 3),
            "branches": branches,
            "min_blockdepth": minimum_blockdepth(
                a=branches, b=spec.param("deposit_factor", 0.1), rho=rho
            ),
        }
    )
    return row


def _table1_grid(scale: str) -> List[ScenarioSpec]:
    from repro.experiments.table1_merge import TABLE1_SIZES, table1_specs

    sizes = tuple(TABLE1_SIZES) if scale == "full" else tuple(TABLE1_SIZES[:2])
    seeds = (0, 1, 2) if scale == "full" else (0,)
    return table1_specs(sizes, seeds=seeds)


@scenario(
    "table1",
    description="Local wall-clock time to merge two fully-conflicting blocks",
    grid=_table1_grid,
    tags=("paper", "local"),
)
def _run_table1_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    from repro.experiments.table1_merge import merge_two_blocks

    blocksize = spec.param("blocksize", 100)
    elapsed = merge_two_blocks(blocksize, seed=spec.seed)
    return {
        "blocksize_txs": blocksize,
        "seed": spec.seed,
        "merge_time_ms": round(elapsed * 1000, 3),
    }


def _appendix_b_grid(scale: str) -> List[ScenarioSpec]:
    cases = (
        {"delta": 0.5, "rho": 0.55},
        {"delta": 0.5, "rho": 0.9},
        {"delta": 0.6, "rho": 0.9},
        {"delta": 0.64, "rho": 0.9},
        {"delta": 0.66, "rho": 0.9},
    )
    return [
        ScenarioSpec(
            family="appendix-b",
            n=900,
            params={"delta": case["delta"], "rho": case["rho"], "deposit_factor": 0.1},
            seed=0,
        )
        for case in cases
    ]


@scenario(
    "appendix-b",
    description="Appendix B closed-form (delta, rho) -> minimum blockdepth table",
    grid=_appendix_b_grid,
    tags=("paper", "theory"),
)
def _run_appendix_b_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    from repro.analysis.zero_loss import branch_bound, minimum_blockdepth

    delta = spec.param("delta")
    rho = spec.param("rho")
    deceitful = int(round(delta * spec.n))
    branches = branch_bound(spec.n, deceitful)
    return {
        "delta": delta,
        "rho": rho,
        "branches": branches,
        "min_blockdepth": minimum_blockdepth(
            a=branches, b=spec.param("deposit_factor", 0.1), rho=rho
        ),
    }


def _sec53_grid(scale: str) -> List[ScenarioSpec]:
    from repro.experiments.sec53_catastrophic import sec53_specs

    return sec53_specs(sizes=_attack_sizes(scale), seeds=_sweep_seeds(scale))


@scenario(
    "sec53",
    description="Disagreements under catastrophic 5-10 s partition delays",
    grid=_sec53_grid,
    tags=("paper", "attack"),
)
def _run_sec53_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    return _run_attack_spec(spec)


def _quickstart_grid(scale: str) -> List[ScenarioSpec]:
    return [
        ScenarioSpec(
            family="quickstart",
            n=7,
            delay="aws",
            workload_transactions=200,
            batch_size=25,
            instances=3,
            seed=42,
            max_time=120.0,
        )
    ]


@scenario(
    "quickstart",
    description="Fault-free 7-replica committee committing client payments",
    grid=_quickstart_grid,
    tags=("example",),
)
def _run_quickstart_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    from repro.zlb.system import ZLBSystem

    system = ZLBSystem.create(
        spec.fault_config(),
        seed=spec.seed,
        delay=spec.delay,
        workload_transactions=spec.workload_transactions,
        batch_size=spec.batch_size,
        max_time=spec.max_time,
    )
    result = system.run_instances(spec.instances, until=spec.max_time)
    row = _metrics_row(result)
    row.update({"seed": spec.seed, "delay": spec.delay})
    return row


# -- non-paper families --------------------------------------------------------


def _churn_grid(scale: str) -> List[ScenarioSpec]:
    if scale == "full":
        axes = {"n": (20, 40), "rounds": (3, 5), "seed": (1, 2, 3)}
    else:
        axes = {"n": (9,), "rounds": (2, 3), "seed": (1,)}
    return [
        spec.with_overrides(workload_transactions=12 * spec.n)
        for spec in expand_grid(
            "churn",
            axes,
            base={
                "attack": "binary",
                "cross_partition_delay": "1000ms",
                "instances": 2,
                "max_time": 300.0,
            },
        )
    ]


@scenario(
    "churn",
    description="Committee churn: repeated attack -> membership-change rounds",
    grid=_churn_grid,
    tags=("extra", "attack", "membership"),
)
def _run_churn_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    """Back-to-back recovery rounds on successive committees.

    Each round deploys the paper's coalition on a fresh committee (the
    post-recovery committee of round ``k`` seeds round ``k+1`` via the seed
    offset) and runs until the membership change completes, accumulating how
    churn costs — excluded/included replicas, exclusion and inclusion
    durations — behave when membership changes happen repeatedly rather than
    once.
    """
    from repro.experiments.fig4_disagreements import run_attack_cell

    rounds = int(spec.param("rounds", 2))
    recovered_rounds = 0
    total_excluded = 0
    total_included = 0
    exclusion_times: List[float] = []
    inclusion_times: List[float] = []
    disagreements = 0
    committed = 0
    simulated = 0.0
    for round_index in range(rounds):
        result = run_attack_cell(
            n=spec.n,
            attack_kind=spec.attack or "binary",
            cross_partition_delay=spec.cross_partition_delay or "1000ms",
            seed=spec.seed + 1_000 * round_index,
            instances=spec.instances,
            max_time=spec.max_time,
            delay=spec.delay,
            workload_transactions=spec.workload_transactions or None,
            batch_size=spec.batch_size,
        )
        recovered_rounds += int(result.recovered)
        total_excluded += len(result.excluded)
        total_included += len(result.included)
        if result.exclusion_time is not None:
            exclusion_times.append(result.exclusion_time)
        if result.inclusion_time is not None:
            inclusion_times.append(result.inclusion_time)
        disagreements += result.disagreements
        committed += result.committed_transactions
        simulated += result.simulated_time
    return {
        "n": spec.n,
        "seed": spec.seed,
        "rounds": rounds,
        "recovered_rounds": recovered_rounds,
        "excluded_total": total_excluded,
        "included_total": total_included,
        "mean_exclusion_s": (
            round(sum(exclusion_times) / len(exclusion_times), 3)
            if exclusion_times
            else None
        ),
        "mean_inclusion_s": (
            round(sum(inclusion_times) / len(inclusion_times), 3)
            if inclusion_times
            else None
        ),
        "disagreements_total": disagreements,
        "committed_transactions": committed,
        "simulated_time_s": round(simulated, 3),
    }


def _crash_recovery_grid(scale: str) -> List[ScenarioSpec]:
    if scale == "full":
        axes = {"n": (10, 20), "crashes": (1, 3), "seed": (1, 2, 3)}
    else:
        axes = {"n": (7, 10), "crashes": (1, 2), "seed": (1,)}
    return expand_grid(
        "crash-recovery",
        axes,
        base={
            "delay": "aws",
            "workload_transactions": 120,
            "batch_size": 20,
            "instances": 2,
            "max_time": 120.0,
        },
    )


@scenario(
    "crash-recovery",
    description="Honest replicas crash mid-run and reconnect; liveness holds",
    grid=_crash_recovery_grid,
    tags=("extra", "faults"),
)
def _run_crash_recovery_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    """Three phases: healthy -> ``crashes`` replicas disconnected -> rejoined.

    Crashed replicas keep their deposits and state but drop every message
    (the simulator's ``disconnect``); as long as ``crashes < n/3`` the
    remaining quorum keeps deciding, and after ``reconnect`` the stragglers
    rejoin the message flow.  The row records committed transactions after
    each phase so throughput through the outage is visible.
    """
    from repro.zlb.system import ZLBSystem

    crashes = int(spec.param("crashes", 1))
    phase_instances = spec.instances
    system = ZLBSystem.create(
        spec.fault_config(),
        seed=spec.seed,
        delay=spec.delay,
        workload_transactions=spec.workload_transactions,
        batch_size=spec.batch_size,
        max_time=spec.max_time,
    )
    healthy = system.run_instances(phase_instances, until=spec.max_time)
    committee = sorted(
        replica_id
        for replica_id, replica in system.replicas.items()
        if not replica.standby
    )
    crashed = committee[-crashes:]
    for replica_id in crashed:
        system.simulator.disconnect(replica_id)
    # Fresh client traffic per phase: transfers routed to a crashed replica's
    # mempool stall until it reconnects, so phase deltas show the outage cost.
    system.submit_workload(spec.workload_transactions)
    outage = system.run_instances(phase_instances, until=spec.max_time)
    for replica_id in crashed:
        system.simulator.reconnect(replica_id)
    system.submit_workload(spec.workload_transactions)
    final = system.run_instances(phase_instances, until=spec.max_time)

    row = _metrics_row(final)
    # run_instances reports cumulative commits; per-phase deltas are what a
    # reader of "committed during the outage" expects.
    committed_outage = outage.committed_transactions - healthy.committed_transactions
    row.update(
        {
            "seed": spec.seed,
            "crashes": crashes,
            "crashed_replicas": list(crashed),
            "committed_healthy": healthy.committed_transactions,
            "committed_during_outage": committed_outage,
            "committed_after_reconnect": (
                final.committed_transactions - outage.committed_transactions
            ),
            "progress_during_outage": committed_outage > 0,
        }
    )
    return row


def _jitter_stress_grid(scale: str) -> List[ScenarioSpec]:
    if scale == "full":
        axes = {"delay": ("gamma", "jitter", "lossy"), "n": (10, 20, 40), "seed": (1, 2, 3)}
    else:
        axes = {"delay": ("gamma", "jitter", "lossy"), "n": (7,), "seed": (1,)}
    return expand_grid(
        "jitter-stress",
        axes,
        base={
            "workload_transactions": 120,
            "batch_size": 20,
            "instances": 3,
            "max_time": 300.0,
        },
    )


@scenario(
    "jitter-stress",
    description="Fault-free throughput under high-jitter and lossy networks",
    grid=_jitter_stress_grid,
    tags=("extra", "network"),
)
def _run_jitter_stress_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    """One fault-free run under a hostile delay model.

    ``gamma`` cells provide the calm baseline; ``jitter`` cells inject
    multi-hundred-ms spikes on a fifth of the links and ``lossy`` cells drop
    5% of all messages outright.  Quorum-based protocols should keep deciding
    in all three, at degraded throughput.
    """
    from repro.zlb.system import ZLBSystem

    start = time.perf_counter()
    system = ZLBSystem.create(
        spec.fault_config(),
        seed=spec.seed,
        delay=spec.delay,
        workload_transactions=spec.workload_transactions,
        batch_size=spec.batch_size,
        max_time=spec.max_time,
    )
    result = system.run_instances(spec.instances, until=spec.max_time)
    row = _metrics_row(result)
    row.update(
        {
            "seed": spec.seed,
            "delay": spec.delay,
            "wall_clock_s": round(time.perf_counter() - start, 3),
            # Lost messages are modelled as never-arriving events, so after the
            # run they are exactly the ones still queued past the horizon.
            "undelivered_messages": system.simulator.pending_events(),
        }
    )
    return row


# The scale family (hundreds-of-replicas cells) lives in its own module; the
# import registers it alongside the built-ins above.
from repro.scenarios import scale as _scale  # noqa: E402,F401  (registers on import)
