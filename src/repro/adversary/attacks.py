"""The two coalition attacks of Appendix B.

Both attacks equivocate towards the partitions of honest replicas defined by a
:class:`~repro.adversary.coalition.CoalitionPlan`:

* :class:`BinaryConsensusAttack` rewrites the coalition's BVAL/AUX votes on the
  binary consensus instances of the attacked slots so that each partition is
  pushed towards a different bit — "deceitful replicas vote for each binary
  value in each of two partitions for the same binary consensus".
* :class:`ReliableBroadcastAttack` rewrites the coalition's INIT/ECHO/READY
  messages on the reliable broadcasts of the coalition's own proposal slots so
  that each partition delivers a different proposal — "deceitful replicas
  misbehave during the reliable broadcast by sending different proposals to
  different partitions".

Because every rewritten vote is *signed* by the deceitful replica, the
equivocation leaves exactly the cryptographic trace that the accountability
layer later turns into proofs of fraud.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.types import ReplicaId
from repro.adversary.behaviors import AttackStrategy
from repro.adversary.coalition import CoalitionPlan
from repro.consensus.binary import BinaryConsensus, value_digest
from repro.consensus.certificates import VoteKind, make_vote
from repro.crypto.hashing import hash_payload
from repro.network.topic import TopicLike, as_topic
from repro.rbc.bracha import ReliableBroadcast


#: Accepted names for the two attacks (the paper's and common spellings).
BINARY_ATTACK_NAMES = ("binary", "binary-consensus", "binary_consensus")
RBC_ATTACK_NAMES = ("rbbcast", "reliable-broadcast", "reliable_broadcast", "rbc")


def _slot_of(protocol: TopicLike, layer: str) -> Optional[int]:
    """The slot of an RBC/binary topic (``(..., layer, slot)``), else None."""
    segments = as_topic(protocol).segments
    if len(segments) >= 2 and segments[-2] == layer and isinstance(segments[-1], int):
        return segments[-1]
    return None


class BinaryConsensusAttack(AttackStrategy):
    """Per-partition equivocation on the binary consensus of attacked slots.

    For an attacked slot ``j`` and a partition ``p``, the coalition votes 1
    when ``j % branches == p`` and 0 otherwise, so each partition is steered
    towards a different subset of included proposals (up to ``branches``
    distinct decisions, the Appendix B bound).
    """

    name = "binary-consensus"

    def __init__(self, plan: CoalitionPlan, attacked_slots: Optional[Sequence[ReplicaId]] = None):
        self.plan = plan
        self.attacked_slots = (
            frozenset(attacked_slots)
            if attacked_slots is not None
            else frozenset(plan.deceitful)
        )
        if not self.attacked_slots:
            raise ConfigurationError("binary consensus attack needs attacked slots")

    def value_for(self, slot: ReplicaId, partition_index: int) -> int:
        """The bit the coalition pushes for ``slot`` towards ``partition_index``."""
        branches = max(1, self.plan.num_branches)
        return 1 if slot % branches == partition_index else 0

    def filter_incoming(self, replica: Any, message: Any) -> bool:
        """Ignore DECIDE certificates on attacked slots.

        Adopting one partition's decision would make the coalition stop voting
        and starve the other partition's later rounds; a real attacker keeps
        equivocating until every partition has decided its pushed value.
        """
        slot = _slot_of(message.topic, "bin")
        if slot is not None and slot in self.attacked_slots:
            if message.kind == BinaryConsensus.DECIDE:
                return False
        return True

    def rewrite_broadcast(
        self,
        replica: Any,
        protocol: TopicLike,
        kind: str,
        body: Dict[str, Any],
        recipients: Sequence[ReplicaId],
    ) -> bool:
        slot = _slot_of(protocol, "bin")
        if slot is None or slot not in self.attacked_slots:
            return False
        if kind == BinaryConsensus.DECIDE:
            # Suppress the coalition's own decide broadcasts on attacked slots:
            # a valid certificate would pull both partitions to the same value.
            return True
        if kind not in (BinaryConsensus.BVAL, BinaryConsensus.AUX):
            return False
        round_number = int(body.get("round", 0))
        recipient_set = set(recipients)
        for partition_index, partition in enumerate(self.plan.partition.partitions):
            value = self.value_for(slot, partition_index)
            targets = [r for r in partition if r in recipient_set]
            if not targets:
                continue
            if kind == BinaryConsensus.BVAL:
                forged_body: Dict[str, Any] = {"round": round_number, "value": value}
            else:
                vote = make_vote(
                    replica, protocol, round_number, VoteKind.AUX, value_digest(value)
                )
                forged_body = {
                    "round": round_number,
                    "value": value,
                    "vote": vote.to_payload(),
                }
            replica.broadcast(protocol, kind, forged_body, recipients=targets)
        # Bridging replicas (the rest of the coalition and benign replicas)
        # receive the partition-0 flavour so the coalition stays coordinated.
        bridge_targets = [
            r
            for r in recipient_set
            if self.plan.partition.partition_of(r) is None
        ]
        if bridge_targets:
            value = self.value_for(slot, 0)
            if kind == BinaryConsensus.BVAL:
                forged_body = {"round": round_number, "value": value}
            else:
                vote = make_vote(
                    replica, protocol, round_number, VoteKind.AUX, value_digest(value)
                )
                forged_body = {
                    "round": round_number,
                    "value": value,
                    "vote": vote.to_payload(),
                }
            replica.broadcast(protocol, kind, forged_body, recipients=bridge_targets)
        return True


class ReliableBroadcastAttack(AttackStrategy):
    """Per-partition equivocation on the reliable broadcast of attacked slots.

    ``variants`` maps an attacked slot to the list of proposal payloads to
    disseminate, one per partition (index ``p`` goes to partition ``p``).  The
    whole coalition shares the same strategy object so deceitful echoers
    amplify the variant that matches each partition.
    """

    name = "reliable-broadcast"

    def __init__(self, plan: CoalitionPlan, variants: Dict[ReplicaId, List[Any]]):
        if not variants:
            raise ConfigurationError("reliable broadcast attack needs proposal variants")
        self.plan = plan
        self.variants = variants

    def variant_for(self, slot: ReplicaId, partition_index: int) -> Any:
        """The proposal variant pushed for ``slot`` towards ``partition_index``."""
        options = self.variants[slot]
        return options[partition_index % len(options)]

    def rewrite_broadcast(
        self,
        replica: Any,
        protocol: TopicLike,
        kind: str,
        body: Dict[str, Any],
        recipients: Sequence[ReplicaId],
    ) -> bool:
        slot = _slot_of(protocol, "rbc")
        if slot is None or slot not in self.variants:
            return False
        if kind not in (
            ReliableBroadcast.INIT,
            ReliableBroadcast.ECHO,
            ReliableBroadcast.READY,
        ):
            return False
        if kind == ReliableBroadcast.INIT and slot != replica.replica_id:
            # Only the proposer equivocates on INIT; other coalition members
            # never legitimately send INIT in the first place.
            return True
        vote_kind = {
            ReliableBroadcast.INIT: VoteKind.RBC_INIT,
            ReliableBroadcast.ECHO: VoteKind.RBC_ECHO,
            ReliableBroadcast.READY: VoteKind.RBC_READY,
        }[kind]
        recipient_set = set(recipients)
        for partition_index, partition in enumerate(self.plan.partition.partitions):
            targets = [r for r in partition if r in recipient_set]
            if not targets:
                continue
            value = self.variant_for(slot, partition_index)
            digest = hash_payload(value)
            vote = make_vote(replica, protocol, 0, vote_kind, digest)
            forged_body = {"value": value, "digest": digest, "vote": vote.to_payload()}
            replica.broadcast(protocol, kind, forged_body, recipients=targets)
        bridge_targets = [
            r for r in recipient_set if self.plan.partition.partition_of(r) is None
        ]
        if bridge_targets:
            value = self.variant_for(slot, 0)
            digest = hash_payload(value)
            vote = make_vote(replica, protocol, 0, vote_kind, digest)
            forged_body = {"value": value, "digest": digest, "vote": vote.to_payload()}
            replica.broadcast(protocol, kind, forged_body, recipients=bridge_targets)
        return True


def attack_from_name(
    name: str,
    plan: CoalitionPlan,
    variants: Optional[Dict[ReplicaId, List[Any]]] = None,
) -> AttackStrategy:
    """Build an attack strategy by the name the paper uses.

    ``"binary"`` / ``"binary-consensus"`` build the binary consensus attack;
    ``"rbbcast"`` / ``"reliable-broadcast"`` build the reliable broadcast
    attack (``variants`` is then required).
    """
    key = name.strip().lower()
    if key in BINARY_ATTACK_NAMES:
        return BinaryConsensusAttack(plan)
    if key in RBC_ATTACK_NAMES:
        if variants is None:
            raise ConfigurationError(
                "the reliable broadcast attack requires proposal variants"
            )
        return ReliableBroadcastAttack(plan, variants)
    raise ConfigurationError(f"unknown attack {name!r}")
