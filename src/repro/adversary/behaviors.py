"""Attack strategy interface.

A strategy is installed on a deceitful replica (``replica.attack_strategy``)
and intercepts outgoing broadcasts at the :meth:`BaseReplica.emit` seam.  The
strategy may rewrite the message per partition (equivocation) or let it pass
through untouched.  Keeping the hook at the emission layer means the honest
protocol components run unmodified on deceitful replicas — exactly like a
hacked binary that only tampers with what it sends.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.common.types import ReplicaId
from repro.network.topic import TopicLike


class AttackStrategy:
    """Base class of deceitful behaviours."""

    def filter_incoming(self, replica: Any, message: Any) -> bool:
        """Return False to make the deceitful replica ignore an incoming message.

        Used to keep the coalition actively equivocating: e.g. the binary
        consensus attack drops incoming DECIDE certificates on attacked slots
        so the coalition keeps voting in later rounds instead of adopting one
        partition's decision.
        """
        return True

    def rewrite_broadcast(
        self,
        replica: Any,
        protocol: TopicLike,
        kind: str,
        body: Dict[str, Any],
        recipients: Sequence[ReplicaId],
    ) -> bool:
        """Intercept an outgoing broadcast.

        Return True when the strategy took over delivery (it already sent
        whatever it wanted to send); return False to let the replica broadcast
        the original message normally.
        """
        raise NotImplementedError


class PassiveStrategy(AttackStrategy):
    """A strategy that never interferes (useful as a default and in tests)."""

    def rewrite_broadcast(
        self,
        replica: Any,
        protocol: TopicLike,
        kind: str,
        body: Dict[str, Any],
        recipients: Sequence[ReplicaId],
    ) -> bool:
        return False
