"""Coalition planning: who is deceitful, how honest replicas are partitioned.

A :class:`CoalitionPlan` derives, from a :class:`~repro.common.config.FaultConfig`,
the concrete cast of an attack experiment: the deceitful coalition, the benign
replicas, the honest replicas, the number of branches the coalition can force
(Appendix B bound) and the resulting partition of honest replicas.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.common.config import FaultConfig
from repro.common.types import FaultKind, ReplicaId, ReplicaSet, max_branches
from repro.network.partition import PartitionSpec


@dataclasses.dataclass(frozen=True)
class CoalitionPlan:
    """The cast and partition layout of one coalition-attack experiment."""

    fault_config: FaultConfig
    deceitful: ReplicaSet
    benign: ReplicaSet
    honest: ReplicaSet
    partition: PartitionSpec

    @property
    def num_branches(self) -> int:
        """Number of honest partitions (= branches the attack aims to create)."""
        return self.partition.num_partitions

    def fault_of(self, replica: ReplicaId) -> FaultKind:
        """Fault kind of ``replica`` under this plan."""
        if replica in self.deceitful:
            return FaultKind.DECEITFUL
        if replica in self.benign:
            return FaultKind.BENIGN
        return FaultKind.HONEST

    @staticmethod
    def from_fault_config(
        config: FaultConfig, branches: Optional[int] = None
    ) -> "CoalitionPlan":
        """Build the canonical plan for ``config``.

        Replica ids ``0..d-1`` are deceitful and ``d..d+q-1`` benign (matching
        :meth:`FaultConfig.fault_of`).  Honest replicas are split into
        ``branches`` partitions; by default the attack creates the maximum
        number of branches the Appendix B bound allows (capped at the number
        of honest replicas).
        """
        deceitful = frozenset(range(config.deceitful))
        benign = frozenset(range(config.deceitful, config.deceitful + config.benign))
        honest = frozenset(range(config.deceitful + config.benign, config.n))
        if branches is None:
            branches = max_branches(config.n, config.deceitful, config.benign)
        branches = max(1, min(branches, len(honest))) if honest else 1
        partition = PartitionSpec.split_evenly(
            honest, branches, bridging=sorted(deceitful | benign)
        )
        return CoalitionPlan(
            fault_config=config,
            deceitful=deceitful,
            benign=benign,
            honest=honest,
            partition=partition,
        )
