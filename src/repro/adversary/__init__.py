"""The deceitful adversary: coalition configuration and coalition attacks.

The paper's threat model (§3.2) distinguishes *deceitful* replicas, which send
protocol-violating messages to try to create disagreements, from *benign*
replicas, which merely stop contributing.  Appendix B describes the two
coalition attacks mounted against the SBC solution:

* the **reliable broadcast attack** — deceitful proposers (and echoers) send
  different proposals to different partitions of honest replicas;
* the **binary consensus attack** — deceitful replicas vote for different
  binary values in different partitions of honest replicas.

Both are implemented as :class:`~repro.adversary.behaviors.AttackStrategy`
objects installed on deceitful replicas; honest protocol code is unchanged.
"""

from repro.adversary.behaviors import AttackStrategy, PassiveStrategy
from repro.adversary.attacks import (
    BinaryConsensusAttack,
    ReliableBroadcastAttack,
    attack_from_name,
)
from repro.adversary.coalition import CoalitionPlan

__all__ = [
    "AttackStrategy",
    "PassiveStrategy",
    "BinaryConsensusAttack",
    "ReliableBroadcastAttack",
    "attack_from_name",
    "CoalitionPlan",
]
