"""Phase-level throughput model for the Figure 3 comparison.

The paper measures absolute throughput on 90 AWS machines; a message-level
pure-Python simulation of 90 replicas exchanging millions of signed messages
per instance cannot reproduce absolute numbers (see DESIGN.md §2).  This model
reproduces the *shape* of Figure 3 from the cost terms the paper itself uses
to explain the results:

* SBC-style protocols (ZLB, Red Belly, Polygraph) decide up to ``n`` proposals
  of ``batch`` transactions per consensus instance, so their useful work grows
  with ``n``;
* HotStuff decides a single proposal per instance regardless of load, which is
  why its throughput stays flat (§5.1);
* each decided proposal costs per-transaction work (signature verification,
  deserialisation, UTXO checks);
* accountability adds certificate transfer/verification overhead — moderate
  for ZLB's ECDSA certificates, larger for Polygraph's RSA certificates (the
  reason Polygraph falls behind ZLB beyond ≈40 replicas);
* every instance also pays a fixed number of communication rounds over the
  WAN delay distribution.

The constants were calibrated so that the n = 90 ordering and ratios match the
paper (Red Belly ≥ ZLB ≈ 5–6× HotStuff, Polygraph crossing ZLB around 40
replicas); EXPERIMENTS.md records the calibrated outputs next to the paper's.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.network.delays import DelayModel, AwsRegionDelay


@dataclasses.dataclass(frozen=True)
class ProtocolCostModel:
    """Cost parameters of one protocol under the phase-level model.

    Attributes:
        name: protocol name as used in Figure 3.
        decides_all_proposals: True for SBC-style protocols (n proposals per
            instance), False for single-proposal SMR (HotStuff).
        batch_size: transactions per proposal (the paper uses 10,000).
        communication_rounds: one-way message delays on the critical path of
            one consensus instance.
        per_tx_cost: seconds of per-transaction work (verification, execution).
        per_proposal_overhead: fixed seconds per decided proposal (batching,
            Merkle roots, dissemination book-keeping).
        certificate_overhead_per_replica: seconds per committee member per
            instance spent shipping and verifying accountability certificates
            (0 for non-accountable protocols).
        base_latency: fixed seconds per instance (client interaction, disk).
    """

    name: str
    decides_all_proposals: bool
    batch_size: int = 10_000
    communication_rounds: int = 7
    per_tx_cost: float = 0.0
    per_proposal_overhead: float = 0.0
    certificate_overhead_per_replica: float = 0.0
    base_latency: float = 0.0

    def instance_latency(self, n: int, mean_delay: float) -> float:
        """Latency of one consensus instance with ``n`` replicas."""
        if n <= 0:
            raise ConfigurationError("committee size must be positive")
        proposals = n if self.decides_all_proposals else 1
        transactions = proposals * self.batch_size
        return (
            self.base_latency
            + self.communication_rounds * mean_delay
            + proposals * self.per_proposal_overhead
            + transactions * self.per_tx_cost
            + n * self.certificate_overhead_per_replica
        )

    def transactions_per_instance(self, n: int) -> int:
        """Transactions decided by one instance."""
        proposals = n if self.decides_all_proposals else 1
        return proposals * self.batch_size

    def throughput(self, n: int, mean_delay: float) -> float:
        """Throughput in transactions per second."""
        return self.transactions_per_instance(n) / self.instance_latency(n, mean_delay)


#: Calibrated cost models (see module docstring and EXPERIMENTS.md).
_PROTOCOL_MODELS: Dict[str, ProtocolCostModel] = {
    "zlb": ProtocolCostModel(
        name="ZLB",
        decides_all_proposals=True,
        communication_rounds=9,
        per_tx_cost=47e-6,
        per_proposal_overhead=0.04,
        certificate_overhead_per_replica=0.03,
        # Request batching and dissemination pipeline fill dominate at small n,
        # which is what makes throughput grow with the committee size (Fig. 3).
        base_latency=9.0,
    ),
    "redbelly": ProtocolCostModel(
        name="Red Belly",
        decides_all_proposals=True,
        communication_rounds=7,
        per_tx_cost=36e-6,
        per_proposal_overhead=0.03,
        certificate_overhead_per_replica=0.0,
        base_latency=7.0,
    ),
    "polygraph": ProtocolCostModel(
        name="Polygraph",
        decides_all_proposals=True,
        communication_rounds=8,
        per_tx_cost=47e-6,
        per_proposal_overhead=0.03,
        # RSA certificates: larger and slower to verify than ZLB's ECDSA ones,
        # and the overhead compounds with the committee size (crossover ~40).
        certificate_overhead_per_replica=0.12,
        base_latency=6.0,
    ),
    "hotstuff": ProtocolCostModel(
        name="HotStuff",
        decides_all_proposals=False,
        communication_rounds=8,
        # HotStuff is benchmarked without transaction verification (§5.1).
        per_tx_cost=8e-6,
        per_proposal_overhead=0.03,
        certificate_overhead_per_replica=0.015,
        base_latency=2.0,
    ),
}


def protocol_model(name: str) -> ProtocolCostModel:
    """Look up the calibrated cost model of a protocol by name."""
    key = name.strip().lower().replace(" ", "").replace("-", "").replace("_", "")
    aliases = {
        "zlb": "zlb",
        "zeroloss": "zlb",
        "redbelly": "redbelly",
        "redbellyblockchain": "redbelly",
        "polygraph": "polygraph",
        "hotstuff": "hotstuff",
        "libra": "hotstuff",
    }
    if key not in aliases:
        raise ConfigurationError(f"unknown protocol {name!r}")
    return _PROTOCOL_MODELS[aliases[key]]


def available_protocols() -> List[str]:
    """Names accepted by :func:`protocol_model`, in Figure 3 order."""
    return ["ZLB", "Polygraph", "HotStuff", "Red Belly"]


class ThroughputModel:
    """Computes the Figure 3 series for a set of protocols and committee sizes."""

    def __init__(self, delay_model: Optional[DelayModel] = None):
        self.delay_model = delay_model or AwsRegionDelay()

    def mean_delay(self) -> float:
        """Mean one-way WAN delay used by the model."""
        return self.delay_model.mean_delay()

    def throughput(self, protocol: str, n: int) -> float:
        """Transactions per second for ``protocol`` at committee size ``n``."""
        return protocol_model(protocol).throughput(n, self.mean_delay())

    def series(self, protocol: str, sizes: Sequence[int]) -> List[float]:
        """Throughput series over committee sizes (one Figure 3 line)."""
        return [self.throughput(protocol, n) for n in sizes]

    def figure3(self, sizes: Sequence[int]) -> Dict[str, List[float]]:
        """All four Figure 3 series keyed by protocol name."""
        return {name: self.series(name, sizes) for name in available_protocols()}
