"""Zero-loss theory (Appendix B of the paper).

Closed-form expressions for the expected gain and punishment of a coalition
attack, the zero-loss condition ``g(a, b, rho, m) >= 0`` (Theorem .5), the
minimum finalization blockdepth, the maximum tolerated attack probability and
the branch bound ``a <= (n - (f - q)) / (ceil(2n/3) - (f - q))``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.types import quorum_size


def _check_probability(rho: float) -> None:
    if not 0.0 <= rho <= 1.0:
        raise ConfigurationError(f"probability must be in [0, 1], got {rho}")


def expected_gain(a: int, gain: float, rho: float, m: int) -> float:
    """Expected attacker gain per attempt: ``(a - 1) * rho^(m+1) * G``.

    The attack only pays off when it stays undetected for the whole
    finalization window of ``m`` blocks (probability ``rho^(m+1)``), in which
    case the attacker double-spends the per-block gain ``G`` on each of the
    ``a - 1`` extra branches.
    """
    _check_probability(rho)
    if a < 1:
        raise ConfigurationError("the number of branches must be at least 1")
    if m < 0:
        raise ConfigurationError("blockdepth cannot be negative")
    return (a - 1) * (rho ** (m + 1)) * gain


def expected_punishment(deposit: float, rho: float, m: int) -> float:
    """Expected punishment per attempt: ``(1 - rho^(m+1)) * D``."""
    _check_probability(rho)
    if m < 0:
        raise ConfigurationError("blockdepth cannot be negative")
    return (1 - rho ** (m + 1)) * deposit


def g_function(a: int, b: float, rho: float, m: int) -> float:
    """``g(a, b, rho, m) = (1 - rho^(m+1)) b - (a - 1) rho^(m+1)`` (Thm .5).

    ZLB is a zero-loss payment system iff this is non-negative.
    """
    _check_probability(rho)
    if a < 1:
        raise ConfigurationError("the number of branches must be at least 1")
    if b <= 0:
        raise ConfigurationError("the deposit factor b must be positive")
    if m < 0:
        raise ConfigurationError("blockdepth cannot be negative")
    escape = rho ** (m + 1)
    return (1 - escape) * b - (a - 1) * escape


def minimum_blockdepth(a: int, b: float, rho: float, max_m: int = 100_000) -> int:
    """Smallest finalization blockdepth ``m`` with ``g(a, b, rho, m) >= 0``.

    The closed form is ``m >= log(c) / log(rho) - 1`` with ``c = b / (a-1+b)``;
    the function returns the smallest integer satisfying it (0 when even
    ``m = 0`` suffices).  ``rho = 1`` is only tolerable when ``a = 1``.
    """
    _check_probability(rho)
    if a < 1:
        raise ConfigurationError("the number of branches must be at least 1")
    if b <= 0:
        raise ConfigurationError("the deposit factor b must be positive")
    if a == 1 or rho == 0.0:
        return 0
    if rho >= 1.0:
        raise ConfigurationError(
            "no finite blockdepth yields zero loss when the attack always succeeds"
        )
    c = b / (a - 1 + b)
    # Solve rho^(m+1) <= c.
    m_real = math.log(c) / math.log(rho) - 1
    m = max(0, math.ceil(m_real))
    # Guard against floating point edge cases right at the boundary.
    while g_function(a, b, rho, m) < 0 and m <= max_m:
        m += 1
    return m


def tolerated_attack_probability(a: int, b: float, m: int) -> float:
    """Largest ``rho`` such that ``g(a, b, rho, m) >= 0``: ``c^(1/(m+1))``."""
    if a < 1:
        raise ConfigurationError("the number of branches must be at least 1")
    if b <= 0:
        raise ConfigurationError("the deposit factor b must be positive")
    if m < 0:
        raise ConfigurationError("blockdepth cannot be negative")
    if a == 1:
        return 1.0
    c = b / (a - 1 + b)
    return c ** (1.0 / (m + 1))


def branch_bound(n: int, deceitful: int, benign: int = 0) -> int:
    """Maximum number of branches ``a <= (n - d) / (ceil(2n/3) - d)`` ([57], §B).

    ``d = f - q`` is the number of deceitful replicas.  When the denominator is
    not positive the coalition already controls a quorum; the bound degenerates
    to the number of honest replicas (every honest replica on its own branch).
    """
    if n <= 0:
        raise ConfigurationError("committee size must be positive")
    if deceitful < 0 or benign < 0 or deceitful + benign > n:
        raise ConfigurationError("invalid fault counts")
    denominator = quorum_size(n) - deceitful
    honest = n - deceitful - benign
    if denominator <= 0:
        return max(1, honest)
    return max(1, math.floor((n - deceitful) / denominator))


def deceitful_ratio_to_branches(delta: float, n: int = 90) -> int:
    """Convenience wrapper mapping a deceitful ratio to the branch bound."""
    if not 0.0 <= delta <= 1.0:
        raise ConfigurationError("the deceitful ratio must be in [0, 1]")
    return branch_bound(n, int(math.floor(delta * n)))


def attack_success_probability(
    disagreements: int, attempts: int, laplace_smoothing: bool = True
) -> float:
    """Estimate the per-block attack success probability ``rho`` from a run.

    ``disagreements`` counts consensus instances on which the attack produced
    conflicting decisions out of ``attempts`` attacked instances.  Laplace
    smoothing keeps the estimate away from the degenerate 0/1 endpoints so the
    blockdepth formulas stay finite (matching how the paper derives Fig. 6
    from measured disagreement frequencies).
    """
    if attempts < 0 or disagreements < 0 or disagreements > attempts:
        raise ConfigurationError("invalid disagreement counts")
    if laplace_smoothing:
        return (disagreements + 1) / (attempts + 2)
    if attempts == 0:
        return 0.0
    return disagreements / attempts
