"""Analysis utilities: zero-loss theory, throughput model and run metrics."""

from repro.analysis.zero_loss import (
    branch_bound,
    expected_gain,
    expected_punishment,
    g_function,
    minimum_blockdepth,
    tolerated_attack_probability,
)
from repro.analysis.metrics import RunMetrics, percentiles, summarize_latencies
from repro.analysis.throughput import (
    ProtocolCostModel,
    ThroughputModel,
    protocol_model,
)

__all__ = [
    "branch_bound",
    "expected_gain",
    "expected_punishment",
    "g_function",
    "minimum_blockdepth",
    "tolerated_attack_probability",
    "RunMetrics",
    "percentiles",
    "summarize_latencies",
    "ProtocolCostModel",
    "ThroughputModel",
    "protocol_model",
]
