"""Metrics helpers shared by experiments and benchmarks."""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence


def summarize_latencies(samples: Sequence[float]) -> Dict[str, float]:
    """Mean, standard deviation and a 95% confidence half-interval.

    The paper reports 95% confidence intervals over 3–5 runs; the same summary
    is used for every timing series the reproduction produces.
    """
    values = [float(v) for v in samples]
    if not values:
        return {"count": 0, "mean": 0.0, "std": 0.0, "ci95": 0.0}
    mean = sum(values) / len(values)
    if len(values) > 1:
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    else:
        variance = 0.0
    std = math.sqrt(variance)
    ci95 = 1.96 * std / math.sqrt(len(values)) if len(values) > 1 else 0.0
    return {"count": len(values), "mean": mean, "std": std, "ci95": ci95}


@dataclasses.dataclass
class RunMetrics:
    """Aggregated metrics of one simulated run (one configuration, one seed)."""

    n: int
    deceitful: int = 0
    benign: int = 0
    simulated_time: float = 0.0
    messages_sent: int = 0
    messages_delivered: int = 0
    decided_instances: int = 0
    committed_transactions: int = 0
    disagreements: int = 0
    disagreement_instances: int = 0
    detect_time: Optional[float] = None
    exclusion_time: Optional[float] = None
    inclusion_time: Optional[float] = None
    excluded_replicas: int = 0
    included_replicas: int = 0
    deposit_shortfall: int = 0

    @property
    def throughput_tx_per_sec(self) -> float:
        """Committed transactions divided by simulated time."""
        if self.simulated_time <= 0:
            return 0.0
        return self.committed_transactions / self.simulated_time

    def to_row(self) -> Dict[str, float]:
        """Flat dictionary used when printing experiment tables."""
        return {
            "n": self.n,
            "deceitful": self.deceitful,
            "benign": self.benign,
            "simulated_time_s": round(self.simulated_time, 3),
            "decided_instances": self.decided_instances,
            "committed_transactions": self.committed_transactions,
            "throughput_tx_s": round(self.throughput_tx_per_sec, 1),
            "disagreements": self.disagreements,
            "disagreement_instances": self.disagreement_instances,
            "detect_time_s": round(self.detect_time, 3) if self.detect_time else None,
            "exclusion_time_s": (
                round(self.exclusion_time, 3) if self.exclusion_time else None
            ),
            "inclusion_time_s": (
                round(self.inclusion_time, 3) if self.inclusion_time else None
            ),
            "excluded_replicas": self.excluded_replicas,
            "included_replicas": self.included_replicas,
            "deposit_shortfall": self.deposit_shortfall,
        }


def format_table(rows: Iterable[Dict[str, object]]) -> str:
    """Render a list of dict rows as an aligned text table (for harness output)."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns: List[str] = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), max(len(str(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
