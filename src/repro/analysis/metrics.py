"""Metrics helpers shared by experiments and benchmarks."""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence


def percentiles(
    samples: Sequence[float], points: Sequence[float] = (50.0, 95.0, 99.0)
) -> Dict[str, float]:
    """Percentiles of ``samples`` with linear interpolation between ranks.

    Returns ``{"p50": ..., "p95": ..., ...}`` keyed by the requested points
    (trailing ``.0`` stripped, so ``99.9`` becomes ``"p99.9"``).  The single
    quantile implementation shared by :func:`summarize_latencies` and the
    telemetry :class:`~repro.telemetry.core.Histogram`.
    """
    ordered = sorted(float(v) for v in samples)
    result: Dict[str, float] = {}
    for point in points:
        key = f"p{point:g}"
        if not ordered:
            result[key] = 0.0
            continue
        rank = (point / 100.0) * (len(ordered) - 1)
        lower = math.floor(rank)
        upper = math.ceil(rank)
        if lower == upper:
            result[key] = ordered[int(rank)]
        else:
            fraction = rank - lower
            result[key] = ordered[lower] * (1 - fraction) + ordered[upper] * fraction
    return result


def summarize_latencies(samples: Sequence[float]) -> Dict[str, float]:
    """Mean, std, a 95% confidence half-interval and p50/p95/p99.

    The paper reports 95% confidence intervals over 3–5 runs; the same summary
    is used for every timing series the reproduction produces.
    """
    values = [float(v) for v in samples]
    if not values:
        return {"count": 0, "mean": 0.0, "std": 0.0, "ci95": 0.0, **percentiles(())}
    mean = sum(values) / len(values)
    if len(values) > 1:
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    else:
        variance = 0.0
    std = math.sqrt(variance)
    ci95 = 1.96 * std / math.sqrt(len(values)) if len(values) > 1 else 0.0
    return {
        "count": len(values),
        "mean": mean,
        "std": std,
        "ci95": ci95,
        **percentiles(values),
    }


@dataclasses.dataclass
class RunMetrics:
    """Aggregated metrics of one simulated run (one configuration, one seed)."""

    n: int
    deceitful: int = 0
    benign: int = 0
    simulated_time: float = 0.0
    messages_sent: int = 0
    messages_delivered: int = 0
    decided_instances: int = 0
    committed_transactions: int = 0
    disagreements: int = 0
    disagreement_instances: int = 0
    detect_time: Optional[float] = None
    exclusion_time: Optional[float] = None
    inclusion_time: Optional[float] = None
    excluded_replicas: int = 0
    included_replicas: int = 0
    deposit_shortfall: int = 0
    #: Net value the coalition actually realised through double spends (the
    #: deposit refunds honest replicas paid for genuinely double-spent inputs,
    #: net of later recoveries) — *not* a bound, the measured gain.
    realized_gain: int = 0
    #: Value seized back from the coalition: slashed deposit accounts plus
    #: confiscated outputs to punished addresses.
    seized_deposit: int = 0

    @property
    def attacker_net_gain(self) -> int:
        """The coalition's profit after recovery: realised gain minus seizures.

        The paper's zero-loss claim is exactly that this is ≤ 0 in
        expectation for a correctly-sized deposit policy.
        """
        return self.realized_gain - self.seized_deposit

    @property
    def zero_loss(self) -> bool:
        """True when the seized deposits covered everything the coalition
        actually realised (and the shared deposit never went negative)."""
        return self.attacker_net_gain <= 0 and self.deposit_shortfall == 0

    @property
    def throughput_tx_per_sec(self) -> float:
        """Committed transactions divided by simulated time."""
        if self.simulated_time <= 0:
            return 0.0
        return self.committed_transactions / self.simulated_time

    def to_row(self) -> Dict[str, float]:
        """Flat dictionary used when printing experiment tables."""
        return {
            "n": self.n,
            "deceitful": self.deceitful,
            "benign": self.benign,
            "simulated_time_s": round(self.simulated_time, 3),
            "decided_instances": self.decided_instances,
            "committed_transactions": self.committed_transactions,
            "throughput_tx_s": round(self.throughput_tx_per_sec, 1),
            "disagreements": self.disagreements,
            "disagreement_instances": self.disagreement_instances,
            "detect_time_s": round(self.detect_time, 3) if self.detect_time else None,
            "exclusion_time_s": (
                round(self.exclusion_time, 3) if self.exclusion_time else None
            ),
            "inclusion_time_s": (
                round(self.inclusion_time, 3) if self.inclusion_time else None
            ),
            "excluded_replicas": self.excluded_replicas,
            "included_replicas": self.included_replicas,
            "deposit_shortfall": self.deposit_shortfall,
            "realized_gain": self.realized_gain,
            "seized_deposit": self.seized_deposit,
            "attacker_net_gain": self.attacker_net_gain,
        }


def format_table(rows: Iterable[Dict[str, object]]) -> str:
    """Render a list of dict rows as an aligned text table (for harness output)."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns: List[str] = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), max(len(str(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
