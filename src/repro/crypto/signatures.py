"""Signature schemes with a common interface.

Protocol code never touches raw keys: it asks a :class:`Signer` to sign a
payload and a :class:`SignatureScheme` (via the key registry) to verify a
:class:`SignedPayload`.  This lets large simulations swap real ECDSA for the
fast keyed-hash :class:`SimulatedSigner` without changing a single protocol
line — accountability (certificates, proofs of fraud) operates on
``SignedPayload`` objects either way.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
from typing import Any, Dict, Optional

from repro.common.errors import InvalidSignatureError
from repro.common.types import ReplicaId
from repro.crypto.ecdsa import (
    EcdsaKeyPair,
    EcdsaSignature,
    ecdsa_generate_keypair,
    ecdsa_sign,
    ecdsa_verify,
)
from repro.crypto.hashing import canonical_bytes, sha256_hex


@dataclasses.dataclass(frozen=True)
class SignedPayload:
    """A payload together with the signer id and signature bytes.

    The payload hash, not the payload itself, is what gets signed; the hash is
    recomputed at verification time so a tampered payload fails verification.
    """

    signer: ReplicaId
    payload_hash: str
    signature: bytes
    scheme: str

    def to_payload(self) -> Dict[str, Any]:
        return {
            "signer": self.signer,
            "payload_hash": self.payload_hash,
            "signature": self.signature,
            "scheme": self.scheme,
        }


class Signer:
    """Interface implemented by every signature scheme's signing side."""

    scheme_name = "abstract"

    def __init__(self, replica: ReplicaId):
        self.replica = replica

    def sign(self, payload: Any) -> SignedPayload:
        """Sign ``payload`` and return a :class:`SignedPayload`."""
        raise NotImplementedError

    def public_material(self) -> Any:
        """Return the public verification material to register in the PKI."""
        raise NotImplementedError


class SignatureScheme:
    """Interface implemented by every signature scheme's verification side."""

    scheme_name = "abstract"

    def verify(self, payload: Any, signed: SignedPayload, public_material: Any) -> bool:
        """Return True when ``signed`` is a valid signature on ``payload``."""
        if self.scheme_name != signed.scheme:
            return False
        if payload_digest(payload) != signed.payload_hash:
            return False
        return self.verify_digest(signed.payload_hash, signed, public_material)

    def verify_digest(
        self, digest: str, signed: SignedPayload, public_material: Any
    ) -> bool:
        """Return True when ``signed`` validly signs the given payload digest.

        Callers that already hold the payload's canonical digest (memoised
        votes, the key registry's verified-signature cache) use this entry
        point to skip re-encoding the payload; the caller is responsible for
        checking ``digest == signed.payload_hash`` binds the digest to the
        payload it claims to sign.
        """
        raise NotImplementedError


def payload_digest(payload: Any) -> str:
    """Hex digest of the canonical encoding of ``payload``."""
    return sha256_hex(canonical_bytes(payload))


class EcdsaSigner(Signer):
    """Signs payload hashes with secp256k1 ECDSA (paper §4.2.4)."""

    scheme_name = "ecdsa-secp256k1"

    def __init__(self, replica: ReplicaId, keypair: Optional[EcdsaKeyPair] = None):
        super().__init__(replica)
        self._keypair = keypair or ecdsa_generate_keypair(seed=replica)

    def sign(self, payload: Any) -> SignedPayload:
        digest = payload_digest(payload)
        signature = ecdsa_sign(self._keypair.private_key, digest.encode("ascii"))
        return SignedPayload(
            signer=self.replica,
            payload_hash=digest,
            signature=signature.encode(),
            scheme=self.scheme_name,
        )

    def public_material(self) -> Any:
        return self._keypair.public_key


class EcdsaScheme(SignatureScheme):
    """Verification side of :class:`EcdsaSigner`."""

    scheme_name = "ecdsa-secp256k1"

    def verify_digest(
        self, digest: str, signed: SignedPayload, public_material: Any
    ) -> bool:
        if signed.scheme != self.scheme_name:
            return False
        try:
            signature = EcdsaSignature.decode(signed.signature)
        except ValueError:
            return False
        return ecdsa_verify(public_material, digest.encode("ascii"), signature)


class SimulatedSigner(Signer):
    """A fast keyed-hash signature scheme for large simulations.

    Each replica holds a secret derived from a per-run root secret; signatures
    are HMAC-SHA256 over the payload hash.  Within the simulation only the
    holder of the secret (or the verifier, who is trusted simulation
    infrastructure) can produce a valid tag, so equivocation still requires the
    signer to actually sign both conflicting payloads — exactly the property
    proofs of fraud rely on.
    """

    scheme_name = "simulated-hmac"

    def __init__(self, replica: ReplicaId, root_secret: bytes = b"repro-simulated"):
        super().__init__(replica)
        self._secret = hashlib.sha256(
            root_secret + b":" + str(replica).encode("ascii")
        ).digest()
        self._root_secret = root_secret

    def sign(self, payload: Any) -> SignedPayload:
        digest = payload_digest(payload)
        tag = hmac.new(self._secret, digest.encode("ascii"), hashlib.sha256).digest()
        return SignedPayload(
            signer=self.replica,
            payload_hash=digest,
            signature=tag,
            scheme=self.scheme_name,
        )

    def public_material(self) -> Any:
        # Verification recomputes the per-replica secret from the root secret;
        # the "public material" is the root secret handle (shared by the
        # simulation's trusted verifier, standing in for a PKI).
        return self._root_secret


class SimulatedScheme(SignatureScheme):
    """Verification side of :class:`SimulatedSigner`."""

    scheme_name = "simulated-hmac"

    def verify_digest(
        self, digest: str, signed: SignedPayload, public_material: Any
    ) -> bool:
        if signed.scheme != self.scheme_name:
            return False
        secret = hashlib.sha256(
            public_material + b":" + str(signed.signer).encode("ascii")
        ).digest()
        expected = hmac.new(secret, digest.encode("ascii"), hashlib.sha256).digest()
        return hmac.compare_digest(expected, signed.signature)


_SCHEMES: Dict[str, SignatureScheme] = {
    EcdsaScheme.scheme_name: EcdsaScheme(),
    SimulatedScheme.scheme_name: SimulatedScheme(),
}


def scheme_for(name: str) -> SignatureScheme:
    """Look up the verification scheme registered under ``name``."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise InvalidSignatureError(f"unknown signature scheme {name!r}") from None
