"""SHA-256 helpers and canonical serialisation of structured payloads.

Every protocol message, transaction and block in the reproduction is hashed
through :func:`hash_payload`, which serialises nested Python structures into a
canonical byte string first.  Canonicalisation matters: two replicas hashing
the same logical payload must obtain the same digest, otherwise certificates
built from signed hashes could not be cross-checked.
"""

from __future__ import annotations

import hashlib
from typing import Any


def sha256_bytes(data: bytes) -> bytes:
    """Return the raw SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the hex-encoded SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def canonical_bytes(payload: Any) -> bytes:
    """Serialise ``payload`` into a canonical, order-stable byte string.

    Supported types: ``None``, bool, int, float, str, bytes, and (possibly
    nested) lists, tuples, dicts, sets and frozensets of supported types.
    Dictionaries and sets are serialised in sorted order so the encoding does
    not depend on insertion order or hash randomisation.
    """
    return _encode(payload)


def _encode(value: Any) -> bytes:
    if value is None:
        return b"N;"
    if isinstance(value, bool):
        return b"B1;" if value else b"B0;"
    if isinstance(value, int):
        encoded = str(value).encode("ascii")
        return b"I" + encoded + b";"
    if isinstance(value, float):
        encoded = repr(value).encode("ascii")
        return b"F" + encoded + b";"
    if isinstance(value, str):
        encoded = value.encode("utf-8")
        return b"S" + str(len(encoded)).encode("ascii") + b":" + encoded + b";"
    if isinstance(value, bytes):
        return b"Y" + str(len(value)).encode("ascii") + b":" + value + b";"
    if isinstance(value, (list, tuple)):
        inner = b"".join(_encode(item) for item in value)
        return b"L" + str(len(value)).encode("ascii") + b":" + inner + b";"
    if isinstance(value, (set, frozenset)):
        encoded_items = sorted(_encode(item) for item in value)
        inner = b"".join(encoded_items)
        return b"E" + str(len(value)).encode("ascii") + b":" + inner + b";"
    if isinstance(value, dict):
        encoded_items = sorted(
            (_encode(key), _encode(val)) for key, val in value.items()
        )
        inner = b"".join(key + val for key, val in encoded_items)
        return b"D" + str(len(value)).encode("ascii") + b":" + inner + b";"
    # Objects that memoise their own canonical encoding (e.g. transactions,
    # which are immutable once built and re-hashed on every proposal digest)
    # short-circuit the recursive walk entirely.
    cached = getattr(value, "canonical_bytes_cached", None)
    if callable(cached):
        return cached()
    # Objects that know how to serialise themselves participate transparently.
    to_payload = getattr(value, "to_payload", None)
    if callable(to_payload):
        return b"O" + _encode(to_payload())
    raise TypeError(f"cannot canonically encode value of type {type(value)!r}")


def hash_payload(payload: Any) -> str:
    """Return the hex SHA-256 digest of the canonical encoding of ``payload``."""
    return sha256_hex(canonical_bytes(payload))
