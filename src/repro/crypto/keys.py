"""Public-key infrastructure: the registry mapping replica ids to public keys.

The paper assumes a standard PKI common to all replicas (§3.2).  The registry
is the single verification entry point used by the accountability layer:
certificates and proofs of fraud are validated by calling
:meth:`KeyRegistry.verify` on each embedded :class:`SignedPayload`.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.common.errors import InvalidSignatureError
from repro.common.types import ReplicaId
from repro.crypto.signatures import (
    EcdsaSigner,
    SignedPayload,
    Signer,
    SimulatedSigner,
    payload_digest,
    scheme_for,
)

#: Safety valve for the verified-signature cache: a long-lived process running
#: many simulations back to back must not accumulate entries without bound.
#: One run's distinct votes fit comfortably; past the cap the cache resets and
#: simply re-verifies (correctness never depends on a hit).
_VERIFIED_CACHE_MAX = 1 << 20

#: Process-unique registry tokens: caches living outside the registry (e.g.
#: certificate validity maps) key their entries by this token so verdicts
#: from one deployment's PKI can never leak into another's.
_REGISTRY_TOKENS = itertools.count(1)


class KeyRegistry:
    """Maps replica ids to their public verification material.

    The registry also acts as a signer factory so tests and simulations can
    provision a whole committee in one call (:meth:`provision`).
    """

    def __init__(self) -> None:
        self._public: Dict[ReplicaId, Any] = {}
        self._schemes: Dict[ReplicaId, str] = {}
        #: Verified-signature cache: ``(signer, payload_hash, signature,
        #: scheme) -> bool``.  The key covers every input of the cryptographic
        #: check, so each distinct signature is verified exactly once per
        #: deployment — re-checks (certificates re-validated against shrinking
        #: committees, catch-up blocks, every recipient of a broadcast vote)
        #: become one dict probe.  Tampering any component of the signature
        #: changes the key and therefore misses the cache; tampering the
        #: *payload* is caught by the digest comparison done before the cache
        #: is ever consulted.
        self._verified: Dict[Tuple[ReplicaId, str, bytes, str], bool] = {}
        #: Unique identity of this registry for external verification caches.
        self.verification_token: int = next(_REGISTRY_TOKENS)

    def register(self, replica: ReplicaId, scheme: str, public_material: Any) -> None:
        """Register (or overwrite) the public material of ``replica``."""
        if replica in self._public:
            # Overwriting a key changes what verifies: drop the replica's
            # cached verdicts and retire the token so external caches keyed
            # by it go stale too (rare — provisioning and inclusion only).
            self._verified = {
                key: ok for key, ok in self._verified.items() if key[0] != replica
            }
            self.verification_token = next(_REGISTRY_TOKENS)
        self._public[replica] = public_material
        self._schemes[replica] = scheme

    def register_signer(self, signer: Signer) -> None:
        """Register the public material of an existing signer."""
        self.register(signer.replica, signer.scheme_name, signer.public_material())

    def knows(self, replica: ReplicaId) -> bool:
        """Return True when ``replica`` has registered public material."""
        return replica in self._public

    def replicas(self) -> Iterable[ReplicaId]:
        """Iterate over every registered replica id."""
        return self._public.keys()

    def verify(self, payload: Any, signed: SignedPayload) -> bool:
        """Return True when ``signed`` validly signs ``payload``.

        Unknown signers and scheme mismatches verify to False rather than
        raising: a Byzantine replica may claim an arbitrary identity, and the
        protocol treats such messages as invalid, not as crashes.
        """
        return self.verify_digest(payload_digest(payload), signed)

    def verify_digest(self, digest: str, signed: SignedPayload) -> bool:
        """Verify ``signed`` against a precomputed canonical payload digest.

        The digest-to-payload binding is the caller's statement ("this is the
        canonical digest of the payload I received"); this method checks that
        the digest matches the one the signer committed to and that the
        signature over it is genuine.  The cryptographic check is memoised in
        the verified-signature cache — every re-verification of the same
        ``(signer, digest, signature, scheme)`` tuple is a dict probe.
        """
        if digest != signed.payload_hash:
            return False
        key = (signed.signer, signed.payload_hash, signed.signature, signed.scheme)
        cached = self._verified.get(key)
        if cached is not None:
            return cached
        material = self._public.get(signed.signer)
        if material is None:
            return False
        if self._schemes.get(signed.signer) != signed.scheme:
            return False
        scheme = scheme_for(signed.scheme)
        ok = scheme.verify_digest(digest, signed, material)
        if len(self._verified) >= _VERIFIED_CACHE_MAX:
            self._verified.clear()
        self._verified[key] = ok
        return ok

    def require_valid(self, payload: Any, signed: SignedPayload) -> None:
        """Raise :class:`InvalidSignatureError` when verification fails."""
        if not self.verify(payload, signed):
            raise InvalidSignatureError(
                f"invalid signature from replica {signed.signer}"
            )

    @staticmethod
    def provision(
        replicas: Iterable[ReplicaId],
        use_ecdsa: bool = False,
        root_secret: bytes = b"repro-simulated",
    ) -> "ProvisionedKeys":
        """Create signers for ``replicas`` and a registry knowing all of them.

        ``use_ecdsa=True`` provisions real secp256k1 keys (slow but faithful);
        the default provisions :class:`SimulatedSigner` instances suitable for
        large simulations.
        """
        registry = KeyRegistry()
        signers: Dict[ReplicaId, Signer] = {}
        for replica in replicas:
            if use_ecdsa:
                signer: Signer = EcdsaSigner(replica)
            else:
                signer = SimulatedSigner(replica, root_secret=root_secret)
            signers[replica] = signer
            registry.register_signer(signer)
        return ProvisionedKeys(registry=registry, signers=signers)


class ProvisionedKeys:
    """The result of :meth:`KeyRegistry.provision`: a registry plus signers."""

    def __init__(self, registry: KeyRegistry, signers: Dict[ReplicaId, Signer]):
        self.registry = registry
        self.signers = signers

    def signer_for(self, replica: ReplicaId) -> Signer:
        """Return the signer of ``replica``; raises KeyError if unknown."""
        return self.signers[replica]

    def add_replica(
        self,
        replica: ReplicaId,
        use_ecdsa: bool = False,
        root_secret: Optional[bytes] = None,
    ) -> Signer:
        """Provision and register a new replica (used by the inclusion phase)."""
        if use_ecdsa:
            signer: Signer = EcdsaSigner(replica)
        else:
            secret = root_secret if root_secret is not None else b"repro-simulated"
            signer = SimulatedSigner(replica, root_secret=secret)
        self.signers[replica] = signer
        self.registry.register_signer(signer)
        return signer
