"""Merkle trees over transaction (or arbitrary payload) hashes.

Blocks commit to their transaction set through a Merkle root, which keeps the
block header small while letting replicas verify membership proofs during
catch-up (Figure 5, right).
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Sequence, Tuple

from repro.crypto.hashing import hash_payload, sha256_hex


def _combine(left: str, right: str) -> str:
    return sha256_hex((left + right).encode("ascii"))


def merkle_root(leaves: Sequence[Any]) -> str:
    """Return the Merkle root of ``leaves`` (hashed with :func:`hash_payload`).

    An empty sequence hashes to the digest of the empty payload list so that
    empty blocks still have a well-defined, unique root.
    """
    if not leaves:
        return hash_payload(["empty-merkle-tree"])
    level: List[str] = [hash_payload(leaf) for leaf in leaves]
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [_combine(level[i], level[i + 1]) for i in range(0, len(level), 2)]
    return level[0]


@dataclasses.dataclass
class MerkleProof:
    """An audit path proving that a leaf belongs to a tree."""

    leaf_hash: str
    # Each step is (sibling_hash, sibling_is_right).
    path: Tuple[Tuple[str, bool], ...]

    def verify(self, root: str) -> bool:
        """Return True when replaying the path from the leaf reaches ``root``."""
        current = self.leaf_hash
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                current = _combine(current, sibling)
            else:
                current = _combine(sibling, current)
        return current == root


class MerkleTree:
    """A full Merkle tree retaining every level, able to emit audit proofs."""

    def __init__(self, leaves: Sequence[Any]):
        self._leaf_hashes: List[str] = [hash_payload(leaf) for leaf in leaves]
        self._levels: List[List[str]] = []
        self._build()

    def _build(self) -> None:
        if not self._leaf_hashes:
            self._levels = [[hash_payload(["empty-merkle-tree"])]]
            return
        level = list(self._leaf_hashes)
        self._levels = [level]
        while len(level) > 1:
            if len(level) % 2 == 1:
                level = level + [level[-1]]
                self._levels[-1] = level
            level = [
                _combine(level[i], level[i + 1]) for i in range(0, len(level), 2)
            ]
            self._levels.append(level)

    @property
    def root(self) -> str:
        """The Merkle root of the tree."""
        return self._levels[-1][0]

    def __len__(self) -> int:
        return len(self._leaf_hashes)

    def proof(self, index: int) -> MerkleProof:
        """Return the audit path of the ``index``-th leaf."""
        if not self._leaf_hashes:
            raise IndexError("cannot build a proof for an empty tree")
        if index < 0 or index >= len(self._leaf_hashes):
            raise IndexError(f"leaf index {index} out of range")
        path: List[Tuple[str, bool]] = []
        position = index
        for level in self._levels[:-1]:
            sibling_index = position ^ 1
            sibling_index = min(sibling_index, len(level) - 1)
            sibling_is_right = sibling_index > position
            path.append((level[sibling_index], sibling_is_right))
            position //= 2
        return MerkleProof(
            leaf_hash=self._leaf_hashes[index], path=tuple(path)
        )
