"""Cryptographic substrate: hashing, Merkle trees, ECDSA and signature schemes.

Two signature schemes share the :class:`~repro.crypto.signatures.Signer`
interface:

* :class:`~repro.crypto.signatures.EcdsaSigner` — a pure-Python secp256k1
  ECDSA implementation matching what the paper deploys (§4.2.4).
* :class:`~repro.crypto.signatures.SimulatedSigner` — a fast keyed-hash scheme
  used inside large simulations; it preserves unforgeability within the
  simulation so the accountability machinery (certificates, proofs of fraud)
  exercises identical code paths.
"""

from repro.crypto.hashing import sha256_hex, sha256_bytes, hash_payload
from repro.crypto.merkle import MerkleTree, merkle_root
from repro.crypto.ecdsa import (
    EcdsaKeyPair,
    EcdsaSignature,
    ecdsa_generate_keypair,
    ecdsa_sign,
    ecdsa_verify,
)
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import (
    EcdsaSigner,
    SignatureScheme,
    SignedPayload,
    Signer,
    SimulatedSigner,
)

__all__ = [
    "sha256_hex",
    "sha256_bytes",
    "hash_payload",
    "MerkleTree",
    "merkle_root",
    "EcdsaKeyPair",
    "EcdsaSignature",
    "ecdsa_generate_keypair",
    "ecdsa_sign",
    "ecdsa_verify",
    "KeyRegistry",
    "EcdsaSigner",
    "SignatureScheme",
    "SignedPayload",
    "Signer",
    "SimulatedSigner",
]
