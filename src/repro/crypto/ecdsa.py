"""Pure-Python ECDSA over secp256k1.

The paper signs transactions and protocol messages with ECDSA over the
secp256k1 curve (§4.2.4), the same parameters Bitcoin uses.  This module
implements the curve arithmetic, key generation, deterministic nonces
(RFC 6979 style, via HMAC-SHA256) and low-s normalised signatures.

The implementation favours clarity over speed: it is used to sign real
transactions in tests and examples, while large simulations use the faster
:class:`repro.crypto.signatures.SimulatedSigner`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import secrets
from typing import Optional, Tuple

# secp256k1 domain parameters.
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
A = 0
B = 7
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8

# The point at infinity is represented as ``None``.
Point = Optional[Tuple[int, int]]

GENERATOR: Point = (GX, GY)


def _inverse_mod(value: int, modulus: int) -> int:
    """Return the modular inverse of ``value`` modulo ``modulus``."""
    if value % modulus == 0:
        raise ZeroDivisionError("inverse of zero is undefined")
    return pow(value, -1, modulus)


def is_on_curve(point: Point) -> bool:
    """Return True when ``point`` lies on secp256k1 (infinity counts)."""
    if point is None:
        return True
    x, y = point
    return (y * y - x * x * x - A * x - B) % P == 0


def point_add(point_a: Point, point_b: Point) -> Point:
    """Add two curve points."""
    if point_a is None:
        return point_b
    if point_b is None:
        return point_a
    xa, ya = point_a
    xb, yb = point_b
    if xa == xb and (ya + yb) % P == 0:
        return None
    if point_a == point_b:
        numerator = (3 * xa * xa + A) % P
        denominator = _inverse_mod(2 * ya, P)
    else:
        numerator = (yb - ya) % P
        denominator = _inverse_mod((xb - xa) % P, P)
    slope = (numerator * denominator) % P
    xr = (slope * slope - xa - xb) % P
    yr = (slope * (xa - xr) - ya) % P
    return (xr, yr)


def point_multiply(scalar: int, point: Point) -> Point:
    """Return ``scalar * point`` using double-and-add."""
    if point is None or scalar % N == 0:
        return None
    if scalar < 0:
        x, y = point  # type: ignore[misc]
        return point_multiply(-scalar, (x, (-y) % P))
    result: Point = None
    addend: Point = point
    k = scalar
    while k:
        if k & 1:
            result = point_add(result, addend)
        addend = point_add(addend, addend)
        k >>= 1
    return result


@dataclasses.dataclass(frozen=True)
class EcdsaSignature:
    """An ECDSA signature ``(r, s)`` with low-s normalisation applied."""

    r: int
    s: int

    def to_payload(self) -> Tuple[int, int]:
        return (self.r, self.s)

    def encode(self) -> bytes:
        """Serialise as 64 bytes (32-byte big-endian r and s)."""
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    @staticmethod
    def decode(data: bytes) -> "EcdsaSignature":
        if len(data) != 64:
            raise ValueError(f"expected 64-byte signature, got {len(data)} bytes")
        return EcdsaSignature(
            r=int.from_bytes(data[:32], "big"),
            s=int.from_bytes(data[32:], "big"),
        )


@dataclasses.dataclass(frozen=True)
class EcdsaKeyPair:
    """A secp256k1 key pair."""

    private_key: int
    public_key: Tuple[int, int]

    def public_bytes(self) -> bytes:
        """Uncompressed SEC1 encoding (0x04 || X || Y)."""
        x, y = self.public_key
        return b"\x04" + x.to_bytes(32, "big") + y.to_bytes(32, "big")


def ecdsa_generate_keypair(seed: Optional[int] = None) -> EcdsaKeyPair:
    """Generate a key pair; a ``seed`` makes generation deterministic for tests."""
    if seed is not None:
        digest = hashlib.sha256(f"repro-ecdsa-seed-{seed}".encode()).digest()
        private = (int.from_bytes(digest, "big") % (N - 1)) + 1
    else:
        private = secrets.randbelow(N - 1) + 1
    public = point_multiply(private, GENERATOR)
    assert public is not None
    return EcdsaKeyPair(private_key=private, public_key=public)


def _message_digest(message: bytes) -> int:
    return int.from_bytes(hashlib.sha256(message).digest(), "big") % N


def _deterministic_nonce(private_key: int, digest: int) -> int:
    """Derive a deterministic nonce from the key and digest (RFC 6979 flavour)."""
    key_bytes = private_key.to_bytes(32, "big")
    digest_bytes = digest.to_bytes(32, "big")
    v = b"\x01" * 32
    k = b"\x00" * 32
    k = hmac.new(k, v + b"\x00" + key_bytes + digest_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + key_bytes + digest_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = int.from_bytes(v, "big")
        if 1 <= candidate < N:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


def ecdsa_sign(private_key: int, message: bytes) -> EcdsaSignature:
    """Sign ``message`` (hashed internally with SHA-256)."""
    digest = _message_digest(message)
    while True:
        nonce = _deterministic_nonce(private_key, digest)
        point = point_multiply(nonce, GENERATOR)
        assert point is not None
        r = point[0] % N
        if r == 0:
            digest = (digest + 1) % N
            continue
        s = (_inverse_mod(nonce, N) * (digest + r * private_key)) % N
        if s == 0:
            digest = (digest + 1) % N
            continue
        if s > N // 2:
            s = N - s
        return EcdsaSignature(r=r, s=s)


def ecdsa_verify(
    public_key: Tuple[int, int], message: bytes, signature: EcdsaSignature
) -> bool:
    """Return True when ``signature`` is valid for ``message`` under ``public_key``."""
    if not (1 <= signature.r < N and 1 <= signature.s < N):
        return False
    if not is_on_curve(public_key):
        return False
    digest = _message_digest(message)
    s_inverse = _inverse_mod(signature.s, N)
    u1 = (digest * s_inverse) % N
    u2 = (signature.r * s_inverse) % N
    point = point_add(
        point_multiply(u1, GENERATOR), point_multiply(u2, public_key)
    )
    if point is None:
        return False
    return point[0] % N == signature.r
