"""The ZLB replica: ASMR wired to the Blockchain Manager and payment rules."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import ProtocolConfig
from repro.common.types import FaultKind, ReplicaId
from repro.consensus.sbc import SBCDecision
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signer
from repro.ledger.transaction import Transaction
from repro.smr.asmr import ASMRReplica
from repro.smr.pool import CandidatePool
from repro.zlb.blockchain_manager import BlockchainManager


class ZLBReplica(ASMRReplica):
    """One ZLB node (Fig. 1): payment system + Blockchain Manager + ASMR."""

    def __init__(
        self,
        replica_id: ReplicaId,
        committee: Sequence[ReplicaId],
        signer: Signer,
        registry: KeyRegistry,
        blockchain: BlockchainManager,
        pool: Optional[CandidatePool] = None,
        config: Optional[ProtocolConfig] = None,
        fault: FaultKind = FaultKind.HONEST,
        standby: bool = False,
    ):
        self.blockchain = blockchain
        #: Admission sim-times of pending transactions, recorded only while
        #: the obs plane is active (feeds the time-to-commit sliding series).
        self._obs_admit: Optional[Dict[str, float]] = None
        super().__init__(
            replica_id=replica_id,
            committee=committee,
            signer=signer,
            registry=registry,
            pool=pool,
            config=config,
            fault=fault,
            proposal_factory=self._make_proposal,
            proposal_validator=self._validate_proposal,
            on_commit=self._commit,
            on_merge=self._merge,
            on_exclude=self._exclude,
            standby=standby,
        )

    # -- lifecycle ------------------------------------------------------------------

    def bind(self, transport) -> None:
        super().bind(transport)
        telemetry = self.telemetry
        # The manager mirrors its LedgerStats rejection counters to telemetry
        # once a registry is attached (stays None — zero overhead — otherwise).
        self.blockchain.telemetry = telemetry
        if telemetry is not None:
            # Mempool occupancy gauges, updated by the pool itself on every
            # mutation (the ``gauge_hook`` satellite of the mempool).
            replica = self.replica_id
            pending = telemetry.gauge("mempool.pending", replica=replica)
            pending_bytes = telemetry.gauge("mempool.pending_bytes", replica=replica)

            def _update(pool) -> None:
                pending.set(len(pool))
                pending_bytes.set(pool.pending_bytes)

            self.blockchain.mempool.add_gauge_hook(_update)
            _update(self.blockchain.mempool)
        obs = self.obs
        # The manager brackets its append/merge/validate hot paths with
        # profiler sections once a runtime is attached (None otherwise).
        self.blockchain.obs = obs
        if obs is not None:
            self._obs_admit = {}

    # -- ASMR hooks ---------------------------------------------------------------

    def _make_proposal(self, instance: int) -> List[Transaction]:
        batch = self.blockchain.next_proposal(instance)
        tracing = self.tracing
        if tracing is not None and batch:
            # Closes the per-transaction mempool wait opened by mempool.admit.
            tracing.tracer.event(
                "mempool.batch",
                self.replica_id,
                self.now,
                instance=instance,
                txs=[tx.tx_id for tx in batch],
            )
        return batch

    def _validate_proposal(self, proposer: ReplicaId, payload: Any) -> bool:
        return self.blockchain.validate_proposal(proposer, payload)

    def _commit(self, instance: int, decision: SBCDecision) -> None:
        block = self.blockchain.commit_decision(instance, decision)
        admit = self._obs_admit
        if admit is not None:
            observe = self.obs.sampler.observe
            now = self.now
            for tx in block.transactions:
                admitted_at = admit.pop(tx.tx_id, None)
                if admitted_at is not None:
                    observe("commit_latency_s", now - admitted_at)
        if self.telemetry is not None:
            self.telemetry.counter("zlb.blocks_committed").inc()
            self.telemetry.counter("zlb.transactions_committed").inc(
                len(block.transactions)
            )
        tracing = self.tracing
        if tracing is not None:
            tracing.tracer.event(
                "zlb.commit",
                self.replica_id,
                self.now,
                instance=instance,
                txs=len(block.transactions),
                height=block.index,
            )
            report = self.blockchain.last_append_report
            tracing.monitors.on_commit(
                self.replica_id,
                instance,
                report.invalid if report is not None else 0,
                report.phantom if report is not None else 0,
                self.blockchain.conserved_total(),
                self.now,
            )

    def _merge(self, instance: int, remote_proposals: Dict[ReplicaId, Any]) -> None:
        outcome = self.blockchain.merge_remote_decision(instance, remote_proposals)
        if self.telemetry is not None:
            self.telemetry.counter("zlb.merges").inc()
            self.telemetry.counter("zlb.merged_transactions").inc(
                outcome.merged_transactions
            )
            self.telemetry.timeline("zlb.recovery").mark("merged", self.now)
        tracing = self.tracing
        if tracing is not None:
            tracing.tracer.event(
                "zlb.merge",
                self.replica_id,
                self.now,
                instance=instance,
                merged=outcome.merged_transactions,
                refunded=outcome.refunded_amount,
            )
            tracing.monitors.on_merge(
                self.replica_id, instance, self.blockchain.conserved_total(), self.now
            )

    def _exclude(self, excluded: List[ReplicaId]) -> None:
        self.blockchain.punish_replicas(excluded)
        tracing = self.tracing
        if tracing is not None:
            tracing.monitors.on_punish(
                self.replica_id, self.blockchain.conserved_total(), self.now
            )

    # -- client API ------------------------------------------------------------------

    def submit_transaction(self, transaction: Transaction) -> bool:
        """Client entry point: enqueue a payment request at this replica."""
        accepted = self.blockchain.submit_transaction(transaction)
        if accepted and self._obs_admit is not None:
            self._obs_admit[transaction.tx_id] = self.now
        tracing = self.tracing
        if accepted and tracing is not None:
            # Opens the per-transaction mempool wait; closed by mempool.batch.
            tracing.tracer.event(
                "mempool.admit", self.replica_id, self.now, tx=transaction.tx_id
            )
        return accepted

    def submit_transactions(self, transactions) -> int:
        """Enqueue many payment requests; returns how many were accepted."""
        admit = self._obs_admit
        if admit is None:
            return self.blockchain.submit_transactions(transactions)
        accepted = 0
        now = self.now
        for transaction in transactions:
            if self.blockchain.submit_transaction(transaction):
                admit[transaction.tx_id] = now
                accepted += 1
        return accepted

    # -- observability -------------------------------------------------------------------

    def chain_summary(self) -> Dict[str, int]:
        """Summary of the local chain (height, transactions, deposit, merges)."""
        return self.blockchain.summary()
