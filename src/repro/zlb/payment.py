"""The zero-loss payment rules (Appendix B).

The payment system decides how large the shared deposit must be and how many
blocks a transaction must be buried under (the *finalization blockdepth* ``m``)
before it is considered irreversible, so that in expectation the coins seized
from attackers cover everything the attackers manage to double-spend:
zero loss for honest participants.

Theorem .5: with an attack success probability ``rho`` per block, a deposit
``D = b * G`` (a factor ``b`` of the per-block gain bound ``G``) and at most
``a`` branches, ZLB is zero-loss iff::

    g(a, b, rho, m) = (1 - rho^(m+1)) * b - (a - 1) * rho^(m+1) >= 0
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.analysis.zero_loss import (
    expected_gain,
    expected_punishment,
    g_function,
    minimum_blockdepth,
    tolerated_attack_probability,
)


@dataclasses.dataclass(frozen=True)
class DepositPolicy:
    """Deposit sizing for the committee (Appendix B, "Deposit refund").

    Attributes:
        gain_bound: ``G``, the per-block upper bound on the sum of outputs an
            attacker can double-spend (replicas may discard blocks exceeding it).
        deposit_factor: ``b`` such that the coalition-level deposit is ``b*G``.
        finalization_blockdepth: ``m``, blocks to wait before finality and
            before deposits are returned.
    """

    gain_bound: int = 1_000_000
    deposit_factor: float = 0.1
    finalization_blockdepth: int = 5

    def __post_init__(self) -> None:
        if self.gain_bound <= 0:
            raise ConfigurationError("gain_bound must be positive")
        if self.deposit_factor <= 0:
            raise ConfigurationError("deposit_factor must be positive")
        if self.finalization_blockdepth < 0:
            raise ConfigurationError("finalization_blockdepth cannot be negative")

    @property
    def coalition_deposit(self) -> int:
        """``D = b * G``, the deposit each possible coalition must cover."""
        return int(round(self.deposit_factor * self.gain_bound))

    def per_replica_deposit(self, n: int) -> int:
        """Each replica deposits ``3 b G / n`` so any ``ceil(n/3)`` coalition holds ``D``."""
        if n <= 0:
            raise ConfigurationError("committee size must be positive")
        return int(round(3 * self.deposit_factor * self.gain_bound / n))


class ZeroLossPaymentSystem:
    """Analytical zero-loss accounting on top of the deposit policy."""

    def __init__(self, policy: DepositPolicy, branches: int = 3):
        if branches < 1:
            raise ConfigurationError("branches must be at least 1")
        self.policy = policy
        self.branches = branches

    def is_zero_loss(self, attack_success_probability: float) -> bool:
        """True when the current policy yields zero loss against ``rho``."""
        return (
            g_function(
                a=self.branches,
                b=self.policy.deposit_factor,
                rho=attack_success_probability,
                m=self.policy.finalization_blockdepth,
            )
            >= 0
        )

    def expected_flux(self, attack_success_probability: float) -> float:
        """Expected deposit flux Δ = punishment − gain per attack attempt (coins)."""
        rho = attack_success_probability
        gain = expected_gain(
            a=self.branches,
            gain=self.policy.gain_bound,
            rho=rho,
            m=self.policy.finalization_blockdepth,
        )
        punishment = expected_punishment(
            deposit=self.policy.coalition_deposit,
            rho=rho,
            m=self.policy.finalization_blockdepth,
        )
        return punishment - gain

    def required_blockdepth(self, attack_success_probability: float) -> int:
        """Smallest ``m`` that yields zero loss for ``rho`` under this policy."""
        return minimum_blockdepth(
            a=self.branches,
            b=self.policy.deposit_factor,
            rho=attack_success_probability,
        )

    def tolerated_probability(self) -> float:
        """Largest ``rho`` the configured blockdepth tolerates with zero loss."""
        return tolerated_attack_probability(
            a=self.branches,
            b=self.policy.deposit_factor,
            m=self.policy.finalization_blockdepth,
        )

    def describe(self) -> Dict[str, float]:
        """Summary of the policy parameters and derived quantities."""
        return {
            "gain_bound": float(self.policy.gain_bound),
            "deposit_factor": float(self.policy.deposit_factor),
            "coalition_deposit": float(self.policy.coalition_deposit),
            "finalization_blockdepth": float(self.policy.finalization_blockdepth),
            "branches": float(self.branches),
            "tolerated_probability": self.tolerated_probability(),
        }
