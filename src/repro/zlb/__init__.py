"""ZLB — the Zero-Loss Blockchain.

This package assembles the paper's system (Fig. 1): the ASMR layer
(:mod:`repro.smr`), the Blockchain Manager that merges forked branches
(:mod:`repro.zlb.blockchain_manager`), the zero-loss payment rules
(:mod:`repro.zlb.payment`) and the :class:`~repro.zlb.system.ZLBSystem`
orchestrator that deploys a full committee (plus candidate pool and optional
coalition attack) on the network simulator.
"""

from repro.zlb.blockchain_manager import BlockchainManager
from repro.zlb.payment import DepositPolicy, ZeroLossPaymentSystem
from repro.zlb.node import ZLBReplica
from repro.zlb.system import AttackSpec, SystemResult, ZLBSystem

__all__ = [
    "BlockchainManager",
    "DepositPolicy",
    "ZeroLossPaymentSystem",
    "ZLBReplica",
    "AttackSpec",
    "SystemResult",
    "ZLBSystem",
]
