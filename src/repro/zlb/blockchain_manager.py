"""The Blockchain Manager (BM) — §4.2 of the paper.

The BM sits between the payment application and ASMR:

* it batches client transactions from the mempool into proposals;
* it validates proposals *statefully* against its branch's UTXO view before
  consensus accepts them (inputs must exist, no intra-proposal double spends);
* it turns SBC decisions into blocks appended to the local branch, dropping —
  and counting — anything that does not execute;
* when the confirmation phase reveals a conflicting decision, it merges the
  other branch's transactions (Alg. 2) instead of discarding them, funding
  *genuinely* double-spent inputs from the deposit and rejecting phantom ones;
* when the membership change excludes deceitful replicas, it slashes their
  deposit accounts (the application punishment of Alg. 1 line 38).

Rejections at every stage are tallied in :class:`LedgerStats` and mirrored to
telemetry counters when a registry is attached (``ledger.*``), so experiment
reports can show how much adversarial traffic the execution layer filtered.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import InvalidTransactionError
from repro.common.types import ReplicaId
from repro.consensus.sbc import SBCDecision
from repro.ledger.block import Block
from repro.ledger.mempool import Mempool
from repro.ledger.merge import AppendReport, BlockchainRecord, MergeOutcome
from repro.ledger.transaction import Transaction
from repro.ledger.utxo import UTXO


def replica_deposit_account(replica: ReplicaId) -> str:
    """Deterministic address of the on-chain deposit account of a replica."""
    return f"deposit-replica-{replica}"


def _flatten_payloads(payloads: Iterable[Any]) -> List[Transaction]:
    """Flatten decided/remote proposal payloads into a deduplicated
    transaction list, skipping anything that is not a list of transactions
    (adopted-unvalidated slots may carry arbitrary shapes)."""
    transactions: List[Transaction] = []
    seen: set = set()
    for payload in payloads:
        if not isinstance(payload, list):
            continue
        for transaction in payload:
            if isinstance(transaction, Transaction) and transaction.tx_id not in seen:
                seen.add(transaction.tx_id)
                transactions.append(transaction)
    return transactions


@dataclasses.dataclass
class LedgerStats:
    """Counters of everything the execution-validated pipeline filtered."""

    proposals_validated: int = 0
    proposals_rejected: int = 0
    commit_duplicate: int = 0
    commit_invalid: int = 0
    commit_conflicting: int = 0
    commit_phantom: int = 0
    merge_rejected: int = 0
    merge_phantom_inputs: int = 0

    @property
    def commit_rejected(self) -> int:
        """Transactions dropped on the commit path (duplicates excluded)."""
        return self.commit_invalid + self.commit_conflicting + self.commit_phantom


class BlockchainManager:
    """One replica's view of the chain plus its mempool and deposit accounting."""

    def __init__(
        self,
        replica_id: ReplicaId,
        genesis_allocations: Sequence[Tuple[str, int]] = (),
        initial_deposit: int = 0,
        batch_size: int = 10_000,
        genesis: Optional[Tuple[Block, Sequence[UTXO]]] = None,
    ):
        self.replica_id = replica_id
        self.batch_size = batch_size
        self.record = BlockchainRecord(
            genesis_allocations=genesis_allocations,
            initial_deposit=initial_deposit,
            genesis=genesis,
        )
        self.mempool = Mempool()
        #: Blocks appended from local SBC decisions, indexed by ASMR instance.
        self.blocks_by_instance: Dict[int, Block] = {}
        #: Merge outcomes from reconciliations, in arrival order.
        self.merge_outcomes: List[MergeOutcome] = []
        self.transactions_committed = 0
        self.stats = LedgerStats()
        #: Telemetry registry mirrored by the stats counters; attached by the
        #: owning replica at bind time (None = disabled, zero overhead).
        self.telemetry = None
        #: Obs runtime whose profiler brackets the append/merge/validate hot
        #: paths; attached by the owning replica at bind time (same contract).
        self.obs = None
        #: Screening report of the most recent commit (observability).
        self.last_append_report: Optional[AppendReport] = None

    # -- client-facing --------------------------------------------------------------

    def submit_transaction(self, transaction: Transaction) -> bool:
        """Accept a client transaction into the mempool (§4.2: permissionless)."""
        if not transaction.is_valid():
            return False
        if self.record.contains_tx(transaction.tx_id):
            return False
        return self.mempool.add(transaction)

    def submit_transactions(self, transactions: Iterable[Transaction]) -> int:
        """Submit many transactions; returns the number accepted."""
        return sum(1 for tx in transactions if self.submit_transaction(tx))

    # -- ASMR hooks --------------------------------------------------------------------

    def next_proposal(self, instance: int) -> List[Transaction]:
        """Batch of pending transactions to propose for ``instance``."""
        return self.mempool.peek_batch(self.batch_size)

    def validate_proposal(self, proposer: ReplicaId, payload: Any) -> bool:
        """SBC proposal validator — structural *and* execution validation.

        A proposal is acceptable when it is a list of signed, well-formed
        transactions that applies cleanly to this replica's branch UTXO view:
        every input must reference a spendable output (or one created earlier
        in the same proposal) and no two transactions may consume the same
        output.  Transactions already committed on this branch are tolerated
        as no-ops: a slow proposer re-broadcasting a decided batch is not
        equivocation, and the commit path deduplicates them anyway.
        """
        if not isinstance(payload, list):
            self._reject_proposal()
            return False
        obs = self.obs
        if obs is not None:
            with obs.profiler.section("ledger.validate"):
                return self._validate_proposal_body(payload)
        return self._validate_proposal_body(payload)

    def _validate_proposal_body(self, payload: List[Any]) -> bool:
        view = self.record.utxos.overlay()
        for item in payload:
            if not isinstance(item, Transaction):
                self._reject_proposal()
                return False
            if self.record.contains_tx(item.tx_id):
                continue
            if not item.is_valid_cached():
                self._reject_proposal()
                return False
            if not view.can_apply(item):
                self._reject_proposal()
                return False
            try:
                view.apply_transaction(item)
            except InvalidTransactionError:
                # Input exists but its recorded account/amount disagree with
                # the branch's UTXO table.
                self._reject_proposal()
                return False
        self.stats.proposals_validated += 1
        return True

    def _reject_proposal(self) -> None:
        self.stats.proposals_rejected += 1
        if self.telemetry is not None:
            self.telemetry.counter("ledger.proposals_rejected").inc()

    def commit_decision(self, instance: int, decision: SBCDecision) -> Block:
        """Turn an SBC decision into the next block on the local branch.

        The decided union is screened against the branch state; signatures are
        not re-verified when every decided payload passed
        :meth:`validate_proposal` at this replica.  A decision carrying
        *unvalidated* slots (payloads the local validator rejected but the
        committee adopted — see :attr:`SBCDecision.unvalidated_slots`) loses
        that invariant, so the whole batch is re-screened in full.  In every
        case duplicates, intra-block conflicts and non-executable
        transactions are dropped and counted.
        """
        obs = self.obs
        if obs is not None:
            obs.profiler.enter("ledger.append")
        try:
            transactions = _flatten_payloads(decision.decided_payloads())
            report = self.record.filter_for_append(
                transactions, assume_verified=not decision.unvalidated_slots
            )
            self._count_commit_report(report)
            self.last_append_report = report
            block = self.record.append_block(
                report.accepted,
                proposers=tuple(decision.included_slots()),
                timestamp=decision.decided_at,
                validate=False,
            )
        finally:
            if obs is not None:
                obs.profiler.exit()
        self.blocks_by_instance[instance] = block
        self.mempool.remove_decided(block.tx_ids())
        self.transactions_committed += len(block.transactions)
        return block

    def _count_commit_report(self, report: AppendReport) -> None:
        stats = self.stats
        stats.commit_duplicate += report.duplicate
        stats.commit_invalid += report.invalid
        stats.commit_conflicting += report.conflicting
        stats.commit_phantom += report.phantom
        if self.telemetry is not None and report.rejected:
            for reason, count in (
                ("invalid", report.invalid),
                ("conflicting", report.conflicting),
                ("phantom", report.phantom),
            ):
                if count:
                    self.telemetry.counter(
                        "ledger.commit_rejected", reason=reason
                    ).inc(count)

    def merge_remote_decision(
        self, instance: int, remote_proposals: Dict[ReplicaId, Any]
    ) -> MergeOutcome:
        """Reconciliation: merge a conflicting decision's transactions (Alg. 2).

        The remote branch forked from ours at the parent of our block for
        ``instance``, so its transactions are merged against a copy-on-write
        view based there: inputs genuinely spent on our branch are funded from
        the deposit (the coalition's realised gain), phantom inputs are
        rejected outright.
        """
        obs = self.obs
        if obs is not None:
            obs.profiler.enter("ledger.merge")
        try:
            transactions = _flatten_payloads(remote_proposals.values())
            local_block = self.blocks_by_instance.get(instance)
            # Without a local block for the instance the fork point is unknown:
            # pass None (merge against current state) rather than the current
            # height, which view_at would treat as "rewind everything journalled
            # since the last block" (prior merges, punishments).
            fork_height = local_block.index - 1 if local_block is not None else None
            conflicting_block = Block(
                index=instance + 1,
                parent_hash="remote-branch",
                transactions=tuple(transactions),
            )
            outcome = self.record.merge_block(
                conflicting_block, fork_height=fork_height
            )
        finally:
            if obs is not None:
                obs.profiler.exit()
        self.merge_outcomes.append(outcome)
        self.stats.merge_rejected += outcome.rejected_transactions
        self.stats.merge_phantom_inputs += outcome.phantom_inputs
        if self.telemetry is not None:
            if outcome.rejected_transactions:
                self.telemetry.counter("ledger.merge_rejected").inc(
                    outcome.rejected_transactions
                )
            if outcome.phantom_inputs:
                self.telemetry.counter("ledger.merge_phantom_inputs").inc(
                    outcome.phantom_inputs
                )
            if outcome.realized_gain:
                # Per-merge realised gain can be negative (RefundInputs
                # recoveries), so the cumulative net is a gauge, not a
                # monotonic counter.
                self.telemetry.gauge(
                    "ledger.realized_gain", replica=self.replica_id
                ).set(self.record.realized_attack_gain)
        self.mempool.remove_decided(conflicting_block.tx_ids())
        self.transactions_committed += outcome.merged_transactions
        return outcome

    def punish_replicas(self, replicas: Iterable[ReplicaId]) -> int:
        """Slash the deposit accounts of excluded replicas; returns amount seized."""
        total = 0
        for replica in replicas:
            total += self.record.punish_account(replica_deposit_account(replica))
        if self.telemetry is not None and total:
            self.telemetry.counter("ledger.seized_deposit").inc(total)
        return total

    # -- observability -------------------------------------------------------------------------

    def chain_height(self) -> int:
        """Current block height of the local branch."""
        return self.record.height

    def conserved_total(self) -> int:
        """UTXO supply plus the deposit pool — the conserved quantity.

        Punishment and merge refunds only move value between the two pots;
        the sum may shrink (burns) but must never exceed the genesis
        baseline.  The invariant monitors check exactly this.
        """
        return self.record.utxos.total_supply() + self.record.deposit

    def realized_attack_gain(self) -> int:
        """Net value the coalition actually realised against this branch."""
        return self.record.realized_attack_gain

    def summary(self) -> Dict[str, int]:
        """Counts describing the local chain state."""
        summary = self.record.summary()
        summary["mempool"] = len(self.mempool)
        summary["committed_transactions"] = self.transactions_committed
        summary["merges"] = len(self.merge_outcomes)
        summary["proposals_rejected"] = self.stats.proposals_rejected
        summary["commit_rejected"] = self.stats.commit_rejected
        summary["merge_rejected"] = self.stats.merge_rejected
        return summary
