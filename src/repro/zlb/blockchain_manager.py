"""The Blockchain Manager (BM) — §4.2 of the paper.

The BM sits between the payment application and ASMR:

* it batches client transactions from the mempool into proposals;
* it turns SBC decisions into blocks appended to the local branch;
* when the confirmation phase reveals a conflicting decision, it merges the
  other branch's transactions (Alg. 2) instead of discarding them, funding
  conflicting inputs from the deposit;
* when the membership change excludes deceitful replicas, it slashes their
  deposit accounts (the application punishment of Alg. 1 line 38).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.types import ReplicaId
from repro.consensus.sbc import SBCDecision
from repro.ledger.block import Block
from repro.ledger.mempool import Mempool
from repro.ledger.merge import BlockchainRecord, MergeOutcome
from repro.ledger.transaction import Transaction


def replica_deposit_account(replica: ReplicaId) -> str:
    """Deterministic address of the on-chain deposit account of a replica."""
    return f"deposit-replica-{replica}"


class BlockchainManager:
    """One replica's view of the chain plus its mempool and deposit accounting."""

    def __init__(
        self,
        replica_id: ReplicaId,
        genesis_allocations: Sequence[Tuple[str, int]] = (),
        initial_deposit: int = 0,
        batch_size: int = 10_000,
    ):
        self.replica_id = replica_id
        self.batch_size = batch_size
        self.record = BlockchainRecord(
            genesis_allocations=genesis_allocations, initial_deposit=initial_deposit
        )
        self.mempool = Mempool()
        #: Blocks appended from local SBC decisions, indexed by ASMR instance.
        self.blocks_by_instance: Dict[int, Block] = {}
        #: Merge outcomes from reconciliations, in arrival order.
        self.merge_outcomes: List[MergeOutcome] = []
        self.transactions_committed = 0

    # -- client-facing --------------------------------------------------------------

    def submit_transaction(self, transaction: Transaction) -> bool:
        """Accept a client transaction into the mempool (§4.2: permissionless)."""
        if not transaction.is_valid():
            return False
        if self.record.contains_tx(transaction.tx_id):
            return False
        return self.mempool.add(transaction)

    def submit_transactions(self, transactions: Iterable[Transaction]) -> int:
        """Submit many transactions; returns the number accepted."""
        return sum(1 for tx in transactions if self.submit_transaction(tx))

    # -- ASMR hooks --------------------------------------------------------------------

    def next_proposal(self, instance: int) -> List[Transaction]:
        """Batch of pending transactions to propose for ``instance``."""
        return self.mempool.peek_batch(self.batch_size)

    def validate_proposal(self, proposer: ReplicaId, payload: Any) -> bool:
        """SBC proposal validator: proposals must be lists of valid transactions."""
        if not isinstance(payload, list):
            return False
        for item in payload:
            if not isinstance(item, Transaction):
                return False
            if not item.is_valid():
                return False
        return True

    def commit_decision(self, instance: int, decision: SBCDecision) -> Block:
        """Turn an SBC decision into the next block on the local branch."""
        transactions: List[Transaction] = []
        seen: set = set()
        for payload in decision.decided_payloads():
            for transaction in payload:
                if isinstance(transaction, Transaction) and transaction.tx_id not in seen:
                    seen.add(transaction.tx_id)
                    transactions.append(transaction)
        block = self.record.append_block(
            transactions,
            proposers=tuple(decision.included_slots()),
            timestamp=decision.decided_at,
        )
        self.blocks_by_instance[instance] = block
        self.mempool.remove_decided(block.tx_ids())
        self.transactions_committed += len(block.transactions)
        return block

    def merge_remote_decision(
        self, instance: int, remote_proposals: Dict[ReplicaId, Any]
    ) -> MergeOutcome:
        """Reconciliation: merge a conflicting decision's transactions (Alg. 2)."""
        transactions: List[Transaction] = []
        seen: set = set()
        for payload in remote_proposals.values():
            if not isinstance(payload, list):
                continue
            for transaction in payload:
                if isinstance(transaction, Transaction) and transaction.tx_id not in seen:
                    seen.add(transaction.tx_id)
                    transactions.append(transaction)
        conflicting_block = Block(
            index=instance + 1,
            parent_hash="remote-branch",
            transactions=tuple(transactions),
        )
        outcome = self.record.merge_block(conflicting_block)
        self.merge_outcomes.append(outcome)
        self.mempool.remove_decided(conflicting_block.tx_ids())
        self.transactions_committed += outcome.merged_transactions
        return outcome

    def punish_replicas(self, replicas: Iterable[ReplicaId]) -> int:
        """Slash the deposit accounts of excluded replicas; returns amount seized."""
        total = 0
        for replica in replicas:
            total += self.record.punish_account(replica_deposit_account(replica))
        return total

    # -- observability -------------------------------------------------------------------------

    def chain_height(self) -> int:
        """Current block height of the local branch."""
        return self.record.height

    def summary(self) -> Dict[str, int]:
        """Counts describing the local chain state."""
        summary = self.record.summary()
        summary["mempool"] = len(self.mempool)
        summary["committed_transactions"] = self.transactions_committed
        summary["merges"] = len(self.merge_outcomes)
        return summary
