"""The ZLB system orchestrator: a full deployment on the network simulator.

:class:`ZLBSystem` assembles everything the paper's experiments need: a
committee of :class:`~repro.zlb.node.ZLBReplica` processes (honest, deceitful
and benign according to a :class:`~repro.common.config.FaultConfig`), a pool of
standby candidates for inclusion, a client workload, a deposit policy and —
optionally — one of the two coalition attacks together with the partition
delays that §5.2–§5.3 inject between honest partitions.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.adversary.attacks import (
    RBC_ATTACK_NAMES,
    BinaryConsensusAttack,
    ReliableBroadcastAttack,
)
from repro.adversary.coalition import CoalitionPlan
from repro.common.config import FaultConfig, ProtocolConfig, SimulationConfig
from repro.common.errors import ConfigurationError
from repro.common.types import FaultKind, ReplicaId, recovery_threshold
from repro.crypto.keys import KeyRegistry
from repro.ledger.transaction import Transaction, build_transfer
from repro.ledger.utxo import UTXOTable
from repro.ledger.wallet import Wallet
from repro.ledger.workload import TransferWorkload
from repro.ledger.block import make_genesis_block
from repro.analysis.metrics import RunMetrics
from repro.network.delays import DelayModel, PartitionedDelay, delay_model_from_name
from repro.network.simulator import NetworkSimulator
from repro.obs import core as obs_core
from repro.obs.core import ObsRuntime
from repro.smr.pool import CandidatePool
from repro.telemetry import core as telemetry_core
from repro.telemetry.core import TelemetryRegistry
from repro.tracing import core as tracing_core
from repro.tracing.core import TraceRuntime
from repro.zlb.blockchain_manager import BlockchainManager, replica_deposit_account
from repro.zlb.node import ZLBReplica
from repro.zlb.payment import DepositPolicy


@dataclasses.dataclass(frozen=True)
class AttackSpec:
    """Configuration of a coalition attack for one run.

    Attributes:
        kind: ``"binary"`` (binary consensus attack) or ``"rbbcast"``
            (reliable broadcast attack).
        cross_partition_delay: delay model (or name, e.g. ``"1000ms"``) applied
            to links between honest partitions while the attack runs.
        branches: number of honest partitions to create; defaults to the
            Appendix B bound for the fault configuration.
        double_spend_amount: value of the conflicting transactions the
            coalition injects in the reliable broadcast attack.
    """

    kind: str = "binary"
    cross_partition_delay: Union[str, DelayModel] = "1000ms"
    branches: Optional[int] = None
    double_spend_amount: int = 1_000

    def resolve_cross_delay(self) -> DelayModel:
        if isinstance(self.cross_partition_delay, DelayModel):
            return self.cross_partition_delay
        return delay_model_from_name(self.cross_partition_delay)

    @property
    def is_rbc_attack(self) -> bool:
        """True for the reliable broadcast attack (same name set as
        :func:`repro.adversary.attacks.attack_from_name`)."""
        return self.kind.strip().lower() in RBC_ATTACK_NAMES


@dataclasses.dataclass
class SystemResult:
    """Aggregated outcome of one ZLB run (per-replica detail plus summaries)."""

    n: int
    fault_config: FaultConfig
    simulated_time: float
    messages_sent: int
    messages_delivered: int
    per_replica: Dict[ReplicaId, Dict[str, Any]]
    disagreeing_pairs: set
    disagreement_instances: set
    detect_time: Optional[float]
    exclusion_time: Optional[float]
    inclusion_time: Optional[float]
    excluded: List[ReplicaId]
    included: List[ReplicaId]
    final_committee: List[ReplicaId]
    committed_transactions: int
    deposit_shortfall: int
    #: Net value the coalition actually realised through double spends, as
    #: accounted by the honest replicas' merges (0 when no attack landed).
    realized_gain: int = 0
    #: Value seized from the coalition (slashed deposits plus confiscations).
    seized_deposit: int = 0
    #: Telemetry snapshot of the run (None when telemetry is disabled).
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def disagreements(self) -> int:
        """Number of disagreeing proposals (distinct (instance, slot) pairs)."""
        return len(self.disagreeing_pairs)

    @property
    def recovered(self) -> bool:
        """True when a membership change completed and excluded ≥ ceil(n/3)
        replicas — the recovery threshold of Alg. 1 (a smaller exclusion
        cannot have restored the < n/3 deceitful ratio the paper requires)."""
        return len(self.excluded) >= recovery_threshold(self.n)

    @property
    def throughput_tx_per_sec(self) -> float:
        """Committed transactions per simulated second (honest replica view)."""
        if self.simulated_time <= 0:
            return 0.0
        return self.committed_transactions / self.simulated_time

    def to_metrics(self) -> RunMetrics:
        """Convert into the flat :class:`RunMetrics` record used by harnesses."""
        return RunMetrics(
            n=self.n,
            deceitful=self.fault_config.deceitful,
            benign=self.fault_config.benign,
            simulated_time=self.simulated_time,
            messages_sent=self.messages_sent,
            messages_delivered=self.messages_delivered,
            decided_instances=max(
                (len(d["decided_instances"]) for d in self.per_replica.values()),
                default=0,
            ),
            committed_transactions=self.committed_transactions,
            disagreements=self.disagreements,
            disagreement_instances=len(self.disagreement_instances),
            realized_gain=self.realized_gain,
            seized_deposit=self.seized_deposit,
            detect_time=self.detect_time,
            exclusion_time=self.exclusion_time,
            inclusion_time=self.inclusion_time,
            excluded_replicas=len(self.excluded),
            included_replicas=len(self.included),
            deposit_shortfall=self.deposit_shortfall,
        )

    def chain_summary(self) -> Dict[str, Any]:
        """Chain summary of the lowest-id honest replica."""
        for replica_id in sorted(self.per_replica):
            detail = self.per_replica[replica_id]
            if detail["fault"] == FaultKind.HONEST.value:
                return detail["chain"]
        return {}


class ZLBSystem:
    """A deployed ZLB committee (plus candidate pool) on the simulator."""

    def __init__(
        self,
        fault_config: FaultConfig,
        simulator: NetworkSimulator,
        replicas: Dict[ReplicaId, ZLBReplica],
        plan: CoalitionPlan,
        workload: TransferWorkload,
        deposit_policy: DepositPolicy,
        protocol_config: ProtocolConfig,
    ):
        self.fault_config = fault_config
        self.simulator = simulator
        self.replicas = replicas
        self.plan = plan
        self.workload = workload
        self.deposit_policy = deposit_policy
        self.protocol_config = protocol_config
        self.instances_requested = 0

    @property
    def transport(self) -> NetworkSimulator:
        """The deployment's transport backend (here always the simulator).

        ``ZLBSystem`` drives simulated experiments, so the backend is the
        discrete-event :class:`NetworkSimulator`; real-socket deployments are
        assembled per process by :mod:`repro.cluster` instead.
        """
        return self.simulator

    @property
    def telemetry(self) -> Optional[TelemetryRegistry]:
        """The run's telemetry registry (owned by the simulator), or None."""
        return self.simulator.telemetry

    # -- construction ----------------------------------------------------------------

    @staticmethod
    def create(
        fault_config: FaultConfig,
        seed: int = 0,
        delay: Union[str, DelayModel] = "aws",
        protocol_config: Optional[ProtocolConfig] = None,
        deposit_policy: Optional[DepositPolicy] = None,
        attack: Optional[AttackSpec] = None,
        pool_size: Optional[int] = None,
        workload_accounts: int = 16,
        workload_transactions: int = 200,
        batch_size: Optional[int] = None,
        max_time: float = 3_600.0,
        max_events: Optional[int] = None,
        telemetry: Optional[TelemetryRegistry] = None,
        tracing: Optional[TraceRuntime] = None,
        obs: Optional[ObsRuntime] = None,
    ) -> "ZLBSystem":
        """Build a complete deployment; see the class docstring for the pieces.

        ``telemetry`` instruments the whole stack (simulator, broadcast,
        consensus, membership, blockchain managers); it defaults to the
        registry installed by :func:`repro.telemetry.activate`, i.e. None —
        disabled — unless a scenario cell activated one.  ``tracing`` follows
        the same convention with :func:`repro.tracing.activate`; when a
        runtime carries invariant monitors they are configured here with the
        honest set, the expected-disagreement flag, and each replica's
        conserved-value baseline.
        """
        n = fault_config.n
        telemetry = telemetry if telemetry is not None else telemetry_core.current()
        tracing = tracing if tracing is not None else tracing_core.current()
        obs = obs if obs is not None else obs_core.current()
        if obs is not None:
            # The whole construction — genesis build, key provisioning,
            # workload signing and submission — runs as one root
            # ``system.build`` profiler section (crypto.verify children claim
            # their share); closed right before the system is returned.
            obs.profiler.enter("system.build")
        protocol_config = protocol_config or ProtocolConfig(
            batch_size=batch_size or 50
        )
        deposit_policy = deposit_policy or DepositPolicy(
            gain_bound=100_000, deposit_factor=1.0, finalization_blockdepth=5
        )
        pool_size = n if pool_size is None else pool_size
        plan = CoalitionPlan.from_fault_config(
            fault_config, branches=attack.branches if attack else None
        )

        # Delay model: base everywhere, slowed links between honest partitions
        # while an attack is running.
        base_delay = (
            delay if isinstance(delay, DelayModel) else delay_model_from_name(delay)
        )
        if attack is not None:
            delay_model: DelayModel = PartitionedDelay(
                base=base_delay,
                cross_partition=attack.resolve_cross_delay(),
                partition=plan.partition,
            )
        else:
            delay_model = base_delay

        simulator = NetworkSimulator(
            delay_model=delay_model,
            config=(
                SimulationConfig(seed=seed, max_time=max_time)
                if max_events is None
                else SimulationConfig(
                    seed=seed, max_time=max_time, max_events=max_events
                )
            ),
            telemetry=telemetry,
            tracing=tracing,
            obs=obs,
        )

        committee = list(range(n))
        pool_ids = list(range(n, n + pool_size))
        keys = KeyRegistry.provision(committee + pool_ids)

        # Client workload and genesis allocations.
        workload = TransferWorkload(
            num_accounts=workload_accounts, seed=seed, initial_balance=1_000_000
        )
        allocations: List[Tuple[str, int]] = list(workload.genesis_allocations)
        per_replica_deposit = deposit_policy.per_replica_deposit(n)
        for replica_id in committee + pool_ids:
            allocations.append(
                (replica_deposit_account(replica_id), per_replica_deposit)
            )

        # The reliable broadcast attack needs funded attacker accounts whose
        # UTXOs the coalition double-spends towards different partitions, so
        # their allocations must be part of the deployment genesis *before*
        # it is built: genesis UTXO ids depend on each allocation's position.
        attacker_wallets: Dict[ReplicaId, Wallet] = {}
        if attack is not None and attack.is_rbc_attack:
            for slot in sorted(plan.deceitful):
                wallet = Wallet(name=f"attacker-{seed}-{slot}")
                attacker_wallets[slot] = wallet
                allocations.append((wallet.address, attack.double_spend_amount))

        # Build the deployment genesis once and share it across every
        # replica's blockchain manager (hashing ~thousands of genesis
        # transactions per replica was pure construction overhead).
        genesis_block, genesis_utxos = make_genesis_block(allocations)
        deployment_view = UTXOTable(genesis_utxos)

        # Attack variants spend *real* coins: the conflicting transfers are
        # built from the deployment genesis UTXOs the coalition actually owns,
        # so every partition commits a transaction contesting a genuine output
        # and the merge accounts the coalition's actually-realised gain.
        attack_variants: Dict[ReplicaId, List[Any]] = {}
        if attacker_wallets:
            attack_variants = _build_double_spend_variants(
                plan,
                wallets=attacker_wallets,
                view=deployment_view,
                amount=attack.double_spend_amount,
            )

        # Shared attack strategy object for the whole coalition.
        strategy = None
        if attack is not None:
            if attack.is_rbc_attack:
                strategy = ReliableBroadcastAttack(plan, attack_variants)
            else:
                strategy = BinaryConsensusAttack(plan)

        replicas: Dict[ReplicaId, ZLBReplica] = {}
        for replica_id in committee + pool_ids:
            fault = (
                plan.fault_of(replica_id)
                if replica_id in set(committee)
                else FaultKind.HONEST
            )
            blockchain = BlockchainManager(
                replica_id=replica_id,
                initial_deposit=deposit_policy.coalition_deposit,
                batch_size=protocol_config.batch_size,
                genesis=(genesis_block, genesis_utxos),
            )
            replica = ZLBReplica(
                replica_id=replica_id,
                committee=committee,
                signer=keys.signer_for(replica_id),
                registry=keys.registry,
                blockchain=blockchain,
                pool=CandidatePool(pool_ids),
                config=protocol_config,
                fault=fault,
                standby=replica_id not in set(committee),
            )
            if fault is FaultKind.DECEITFUL and strategy is not None:
                replica.attack_strategy = strategy
            simulator.add_process(replica)
            replicas[replica_id] = replica

        if tracing is not None and tracing.monitors is not None:
            tracing.monitors.configure(
                honest={
                    replica_id
                    for replica_id in committee
                    if plan.fault_of(replica_id) is FaultKind.HONEST
                },
                expect_disagreement=attack is not None,
            )
            for replica_id, replica in replicas.items():
                tracing.monitors.register_ledger(
                    replica_id, replica.blockchain.conserved_total()
                )

        system = ZLBSystem(
            fault_config=fault_config,
            simulator=simulator,
            replicas=replicas,
            plan=plan,
            workload=workload,
            deposit_policy=deposit_policy,
            protocol_config=protocol_config,
        )
        if workload_transactions > 0:
            system.submit_workload(workload_transactions)
        if obs is not None:
            # Aggregate mempool occupancy across the active committee, pulled
            # once per sampler tick (standby pools never receive traffic).
            active = [
                replica
                for replica in replicas.values()
                if not replica.standby
            ]
            obs.sampler.register_gauge(
                "mempool.pending",
                lambda: sum(len(r.blockchain.mempool) for r in active),
            )
            obs.sampler.register_gauge(
                "mempool.pending_bytes",
                lambda: sum(r.blockchain.mempool.pending_bytes for r in active),
            )
            obs.profiler.exit()
        return system

    # -- workload -------------------------------------------------------------------------

    def submit_workload(self, num_transactions: int) -> int:
        """Generate client transfers and spread them across committee mempools.

        Only *proposing* replicas receive traffic: benign (crashed) replicas
        never run instances (:meth:`run_instances` skips them), so anything
        routed to their mempools would be silently stranded and the measured
        throughput would under-count the offered load.  Deceitful replicas
        *do* receive their share — clients cannot distinguish them, and
        transactions lost to an equivocating proposer (e.g. the reliable
        broadcast attack replacing its proposals with double-spend variants)
        are part of the attack's measured cost, not a harness artifact.
        """
        committee = sorted(
            replica_id
            for replica_id, replica in self.replicas.items()
            if not replica.standby and replica.fault is not FaultKind.BENIGN
        )
        if not committee:
            return 0
        transactions = self.workload.batch(num_transactions)
        for index, transaction in enumerate(transactions):
            target = committee[index % len(committee)]
            self.replicas[target].submit_transaction(transaction)
        return len(transactions)

    # -- execution ----------------------------------------------------------------------------

    def run_instances(
        self, count: int = 1, until: Optional[float] = None
    ) -> SystemResult:
        """Ask every active committee member to run ``count`` more instances."""
        self.instances_requested += count
        for replica in self.replicas.values():
            if not replica.standby and replica.fault is not FaultKind.BENIGN:
                replica.submit_instances(count)
        self.simulator.run(until=until)
        return self.result()

    def run(self, until: Optional[float] = None) -> SystemResult:
        """Drain pending events without requesting new instances."""
        self.simulator.run(until=until)
        return self.result()

    # -- results -----------------------------------------------------------------------------------

    def honest_replicas(self) -> List[ZLBReplica]:
        """Committee members that are honest and active."""
        return [
            replica
            for replica in self.replicas.values()
            if not replica.standby and replica.fault is FaultKind.HONEST
        ]

    def result(self) -> SystemResult:
        """Aggregate the current state of every replica into a SystemResult."""
        per_replica: Dict[ReplicaId, Dict[str, Any]] = {}
        disagreeing_pairs = set()
        disagreement_instances = set()
        detect_times: List[float] = []
        exclusion_times: List[float] = []
        inclusion_times: List[float] = []
        excluded: List[ReplicaId] = []
        included: List[ReplicaId] = []
        committed = 0
        shortfall = 0
        realized_gain = 0
        seized = 0
        final_committee: List[ReplicaId] = []

        for replica_id, replica in sorted(self.replicas.items()):
            if replica.standby:
                continue
            detail = {
                "fault": replica.fault.value,
                "decided_instances": replica.decided_instances(),
                "disagreement_instances": replica.disagreement_instances(),
                "disagreeing_slots": replica.total_disagreeing_slots(),
                "detected_at": replica.detected_at,
                "membership_outcomes": replica.membership_outcomes,
                "chain": replica.chain_summary(),
                "committee": list(replica.committee()),
            }
            per_replica[replica_id] = detail
            if replica.fault is not FaultKind.HONEST:
                continue
            for instance, record in replica.instances.items():
                for slot in record.disagreeing_slots:
                    disagreeing_pairs.add((instance, slot))
                if record.disagreed:
                    disagreement_instances.add(instance)
            if replica.detected_at is not None:
                detect_times.append(replica.detected_at)
            for outcome in replica.membership_outcomes:
                exclusion_times.append(outcome.exclusion_duration)
                inclusion_times.append(outcome.inclusion_duration)
                excluded = sorted(set(excluded) | set(outcome.excluded))
                included = sorted(set(included) | set(outcome.included))
            committed = max(committed, replica.blockchain.transactions_committed)
            shortfall = max(shortfall, replica.blockchain.record.deposit_shortfall())
            # Gain/seizure must stay a *consistent pair* from one record (the
            # zero-loss arithmetic compares them): take both from the honest
            # replica that accounted the largest realised gain, i.e. the one
            # that observed the most of the fork.  Mixing independent maxima
            # could pair one replica's gain with another's seizures.
            record = replica.blockchain.record
            if record.realized_attack_gain > realized_gain or (
                record.realized_attack_gain == realized_gain
                and record.seized_total > seized
            ):
                realized_gain = record.realized_attack_gain
                seized = record.seized_total
            if not final_committee:
                final_committee = list(replica.committee())

        return SystemResult(
            n=self.fault_config.n,
            fault_config=self.fault_config,
            simulated_time=self.simulator.now,
            messages_sent=self.simulator.messages_sent,
            messages_delivered=self.simulator.messages_delivered,
            per_replica=per_replica,
            disagreeing_pairs=disagreeing_pairs,
            disagreement_instances=disagreement_instances,
            detect_time=min(detect_times) if detect_times else None,
            exclusion_time=(
                sum(exclusion_times) / len(exclusion_times) if exclusion_times else None
            ),
            inclusion_time=(
                sum(inclusion_times) / len(inclusion_times) if inclusion_times else None
            ),
            excluded=excluded,
            included=included,
            final_committee=final_committee,
            committed_transactions=committed,
            deposit_shortfall=shortfall,
            realized_gain=realized_gain,
            seized_deposit=seized,
            telemetry=(
                self.simulator.telemetry.snapshot()
                if self.simulator.telemetry is not None
                else None
            ),
        )


def _build_double_spend_variants(
    plan: CoalitionPlan,
    wallets: Dict[ReplicaId, Wallet],
    view: UTXOTable,
    amount: int,
) -> Dict[ReplicaId, List[Any]]:
    """Conflicting proposal variants for the reliable broadcast attack.

    For every deceitful slot the coalition owns a funded attacker wallet and
    prepares one transaction per partition, all spending the same UTXO towards
    different recipients — the canonical double spend of Fig. 1.  ``view``
    must be the *deployment* genesis UTXO table: the variants' inputs are
    selected from it, so every conflicting transfer contests a UTXO that
    genuinely exists on the chain the committee runs (a variant built against
    any other genesis would reference phantom outputs and be rejected by the
    execution-validated commit path).
    """
    branches = max(1, plan.num_branches)
    variants: Dict[ReplicaId, List[Any]] = {}
    for slot, attacker in sorted(wallets.items()):
        inputs = view.select_inputs(attacker.address, amount)
        slot_variants: List[List[Transaction]] = []
        for branch in range(branches):
            recipient = Wallet(name=f"fence-{attacker.name}-{branch}")
            slot_variants.append(
                [
                    build_transfer(
                        wallet=attacker,
                        inputs=inputs,
                        recipients=[(recipient.address, amount)],
                        nonce=branch,
                    )
                ]
            )
        variants[slot] = slot_variants
    return variants

