"""The wire codec: canonical, decodable encoding of message envelopes.

The discrete-event simulator ships Python objects *by reference*; a real
socket cannot.  This module gives every :class:`~repro.network.message.Message`
a canonical byte encoding that round-trips: primitives, containers (with dict
key types and tuple/list distinctions preserved — protocol bodies key
bitmasks and proposals by ``int`` slot) and the protocol objects that ride
inside bodies — signed payloads, signed votes, certificates, proofs of fraud,
transactions and blocks.  Decoded copies are *equal* to the originals and
still pass signature verification, because signed content is rebuilt from the
exact wire payloads the accountability layer already defines
(``to_payload`` / ``from_payload``).

Format: a self-describing tag-length-value encoding.  Each value starts with
a one-byte tag; variable-length values carry an ASCII decimal length followed
by ``;``::

    N                 None          T / F          booleans
    I<decimal>;       int           R<8 bytes>     float (IEEE-754 big-endian)
    S<len>;<utf8>     str           B<len>;<raw>   bytes
    L<count>;<v>*     list          P<count>;<v>*  tuple
    D<count>;(<k><v>)*  dict (insertion order, any encodable key)
    O<name><payload>  registered object (name is an encoded str)

Deterministic by construction: the same value always encodes to the same
bytes within a process (dicts keep insertion order — protocol bodies are
built deterministically), so content digests of encoded frames are stable.

Framing for stream transports: :func:`frame_message` prefixes the encoded
envelope with a 4-byte big-endian length; :data:`FRAME_HEADER_SIZE` is what a
reader must consume first.  :meth:`Message.size_bytes` reports exactly
``len(frame_message(message))`` of the *bare* envelope so byte counters in
telemetry mean the same thing under the simulator and the asyncio backend,
with tracing enabled or not.

Trace propagation: a message whose ``trace_ctx`` is set encodes as a 6-tuple
whose last element is the ``(trace_id, span_id)`` pair, so causality survives
the socket and a delivery on the far side opens its child span under the
sender's context.  A message without a context encodes as the original
5-tuple — byte-identical to the pre-trace wire format — and decoders accept
both shapes, so old frames (and peers that never stamp contexts) interoperate
unchanged.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Tuple, Type

from repro.network.message import Message
from repro.network.topic import Topic

#: Bytes of the length prefix a stream reader consumes before each frame.
FRAME_HEADER_SIZE = 4

#: Upper bound on a single frame (sanity check against corrupt prefixes).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class CodecError(ValueError):
    """Raised when a value cannot be encoded or a buffer cannot be decoded."""


# -- object registry ---------------------------------------------------------

#: type -> (wire name, to-encodable converter).
_TO_WIRE: Dict[Type[Any], Tuple[str, Callable[[Any], Any]]] = {}
#: wire name -> from-encodable constructor.
_FROM_WIRE: Dict[str, Callable[[Any], Any]] = {}


def register_object(
    name: str,
    cls: Type[Any],
    encode: Callable[[Any], Any],
    decode: Callable[[Any], Any],
) -> None:
    """Register a wire-encodable object type.

    ``encode`` maps an instance to an encodable value (typically a payload
    dict); ``decode`` inverts it.  Registration is idempotent per name.
    """
    _TO_WIRE[cls] = (name, encode)
    _FROM_WIRE[name] = decode


def registered_kinds() -> List[str]:
    """Wire names of every registered object type (for tests/introspection)."""
    return sorted(_FROM_WIRE)


# -- encoding ----------------------------------------------------------------


def _encode_into(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(b"N")
        return
    kind = type(value)
    if kind is bool:
        out.append(b"T" if value else b"F")
        return
    if kind is int:
        out.append(b"I%d;" % value)
        return
    if kind is float:
        out.append(b"R" + struct.pack(">d", value))
        return
    if kind is str:
        raw = value.encode("utf-8")
        out.append(b"S%d;" % len(raw))
        out.append(raw)
        return
    if kind is bytes:
        out.append(b"B%d;" % len(value))
        out.append(value)
        return
    if kind is list:
        out.append(b"L%d;" % len(value))
        for item in value:
            _encode_into(item, out)
        return
    if kind is tuple:
        out.append(b"P%d;" % len(value))
        for item in value:
            _encode_into(item, out)
        return
    if kind is dict:
        out.append(b"D%d;" % len(value))
        for key, item in value.items():
            _encode_into(key, out)
            _encode_into(item, out)
        return
    registered = _TO_WIRE.get(kind)
    if registered is not None:
        name, encode = registered
        out.append(b"O")
        raw = name.encode("ascii")
        out.append(b"S%d;" % len(raw))
        out.append(raw)
        _encode_into(encode(value), out)
        return
    # Subclasses of registered types (rare) and exotic ints/strs fall through
    # to an exact-type retry before giving up.
    for base, (name, encode) in _TO_WIRE.items():
        if isinstance(value, base):
            out.append(b"O")
            raw = name.encode("ascii")
            out.append(b"S%d;" % len(raw))
            out.append(raw)
            _encode_into(encode(value), out)
            return
    raise CodecError(f"cannot encode value of type {kind.__name__}: {value!r}")


def encode_value(value: Any) -> bytes:
    """Encode any supported value to its canonical wire bytes."""
    out: List[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


# -- decoding ----------------------------------------------------------------


def _read_length(data: bytes, pos: int) -> Tuple[int, int]:
    end = data.index(b";", pos)
    return int(data[pos:end]), end + 1


def _decode_at(data: bytes, pos: int) -> Tuple[Any, int]:
    tag = data[pos : pos + 1]
    pos += 1
    if tag == b"N":
        return None, pos
    if tag == b"T":
        return True, pos
    if tag == b"F":
        return False, pos
    if tag == b"I":
        end = data.index(b";", pos)
        return int(data[pos:end]), end + 1
    if tag == b"R":
        return struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if tag == b"S":
        length, pos = _read_length(data, pos)
        return data[pos : pos + length].decode("utf-8"), pos + length
    if tag == b"B":
        length, pos = _read_length(data, pos)
        return data[pos : pos + length], pos + length
    if tag == b"L":
        count, pos = _read_length(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_at(data, pos)
            items.append(item)
        return items, pos
    if tag == b"P":
        count, pos = _read_length(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_at(data, pos)
            items.append(item)
        return tuple(items), pos
    if tag == b"D":
        count, pos = _read_length(data, pos)
        mapping: Dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_at(data, pos)
            value, pos = _decode_at(data, pos)
            mapping[key] = value
        return mapping, pos
    if tag == b"O":
        name, pos = _decode_at(data, pos)
        payload, pos = _decode_at(data, pos)
        decode = _FROM_WIRE.get(name)
        if decode is None:
            raise CodecError(f"unknown wire object kind {name!r}")
        return decode(payload), pos
    raise CodecError(f"unknown wire tag {tag!r} at offset {pos - 1}")


def decode_value(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode_value`."""
    try:
        value, pos = _decode_at(data, 0)
    except (IndexError, ValueError, struct.error) as exc:
        raise CodecError(f"truncated or corrupt wire value: {exc}") from exc
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after wire value")
    return value


# -- message envelopes -------------------------------------------------------


def encode_message(message: Message, include_trace: bool = True) -> bytes:
    """Encode a full envelope (sender, recipient, topic, kind, body[, trace]).

    A set ``trace_ctx`` rides as a sixth ``(trace_id, span_id)`` element when
    ``include_trace`` is true; without a context the envelope is the original
    5-tuple, byte for byte.
    """
    fields: Tuple[Any, ...] = (
        message.sender,
        message.recipient,
        message.topic.canonical,
        message.kind,
        message.body,
    )
    ctx = message.trace_ctx if include_trace else None
    if ctx is not None:
        fields = fields + ((ctx.trace_id, ctx.span_id),)
    return encode_value(fields)


def decode_message(data: bytes) -> Message:
    """Rebuild a :class:`Message` from :func:`encode_message` bytes.

    The decoded envelope gets a fresh local ``uid`` (uids are process-local
    tie-breakers, not wire identity).  Both envelope shapes decode: the bare
    5-tuple and the traced 6-tuple, whose ``(trace_id, span_id)`` tail is
    restored as the message's ``trace_ctx``.
    """
    fields = decode_value(data)
    if not isinstance(fields, tuple) or len(fields) not in (5, 6):
        raise CodecError("wire envelope is not a 5- or 6-tuple")
    sender, recipient, topic_text, kind, body = fields[:5]
    message = Message(
        sender=sender,
        recipient=recipient,
        protocol=Topic.parse(topic_text),
        kind=kind,
        body=body,
    )
    if len(fields) == 6 and fields[5] is not None:
        wire_ctx = fields[5]
        if not isinstance(wire_ctx, tuple) or len(wire_ctx) != 2:
            raise CodecError("wire trace context is not a (trace, span) pair")
        from repro.tracing.core import TraceContext

        message.trace_ctx = TraceContext(wire_ctx[0], wire_ctx[1])
    return message


def frame_message(message: Message) -> bytes:
    """Length-prefixed frame of the envelope (what stream transports write)."""
    payload = encode_message(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES")
    return struct.pack(">I", len(payload)) + payload


def message_frame_size(message: Message) -> int:
    """Frame length of the bare envelope (header plus encoded 5-tuple).

    Deliberately excludes the optional trace-context tail: ``size_bytes`` is
    memoised and feeds telemetry byte counters, which must report the same
    number whether or not tracing happens to have stamped the message —
    fixed-seed byte-identity with tracing on/off depends on it.  The traced
    frame a socket actually writes is a handful of bytes longer.
    """
    return FRAME_HEADER_SIZE + len(encode_message(message, include_trace=False))


# -- standard registrations --------------------------------------------------
#
# Signed content is rebuilt from the accountability layer's own wire payloads
# so decoded copies verify against the same PKI; ledger objects rebuild their
# construction-time fields (memo caches re-derive lazily per process).


def _register_standard_objects() -> None:
    from repro.consensus.certificates import (
        Certificate,
        SignedVote,
        certificate_from_payload,
        vote_from_payload,
    )
    from repro.consensus.proofs import ProofOfFraud
    from repro.crypto.signatures import SignedPayload
    from repro.ledger.block import Block
    from repro.ledger.transaction import Transaction, TxInput, TxOutput

    register_object(
        "signed-payload",
        SignedPayload,
        lambda signed: signed.to_payload(),
        lambda payload: SignedPayload(
            signer=payload["signer"],
            payload_hash=payload["payload_hash"],
            signature=payload["signature"],
            scheme=payload["scheme"],
        ),
    )
    register_object(
        "signed-vote",
        SignedVote,
        lambda vote: vote.to_payload(),
        vote_from_payload,
    )
    register_object(
        "certificate",
        Certificate,
        lambda certificate: certificate.to_payload(),
        certificate_from_payload,
    )
    register_object(
        "proof-of-fraud",
        ProofOfFraud,
        lambda pof: pof.to_payload(),
        ProofOfFraud.from_payload,
    )
    register_object(
        "tx-input",
        TxInput,
        lambda tx_input: tx_input.to_payload(),
        lambda payload: TxInput(
            utxo_id=payload["utxo_id"],
            account=payload["account"],
            amount=payload["amount"],
        ),
    )
    register_object(
        "tx-output",
        TxOutput,
        lambda tx_output: tx_output.to_payload(),
        lambda payload: TxOutput(
            account=payload["account"], amount=payload["amount"]
        ),
    )
    register_object(
        "transaction",
        Transaction,
        lambda tx: {
            "inputs": list(tx.inputs),
            "outputs": list(tx.outputs),
            "nonce": tx.nonce,
            "signatures": dict(tx.signatures),
            "public_materials": dict(tx.public_materials),
            "signer_names": dict(tx.signer_names),
        },
        lambda payload: Transaction(
            inputs=tuple(payload["inputs"]),
            outputs=tuple(payload["outputs"]),
            nonce=payload["nonce"],
            signatures=dict(payload["signatures"]),
            public_materials=dict(payload["public_materials"]),
            signer_names=dict(payload["signer_names"]),
        ),
    )
    register_object(
        "block",
        Block,
        lambda block: {
            "index": block.index,
            "parent_hash": block.parent_hash,
            "transactions": list(block.transactions),
            "proposers": list(block.proposers),
            "timestamp": block.timestamp,
        },
        lambda payload: Block(
            index=payload["index"],
            parent_hash=payload["parent_hash"],
            transactions=tuple(payload["transactions"]),
            proposers=tuple(payload["proposers"]),
            timestamp=payload["timestamp"],
        ),
    )


_register_standard_objects()
