"""The transport seam: what a replica needs from "the network".

Protocol code never talks to a concrete network implementation.  A
:class:`Process` binds to a :class:`Transport` — an object providing message
submission, fan-out broadcast, timers, a clock and a membership view — and
everything above the seam (routers, protocol hosts, replicas, whole ZLB
deployments) is oblivious to what sits below it:

* :class:`~repro.network.simulator.NetworkSimulator` — the deterministic
  discrete-event backend: virtual time, seeded delays, by-reference delivery.
* :class:`~repro.network.asyncio_transport.AsyncioTransport` — the real
  backend: asyncio TCP/UNIX-domain sockets, wall-clock timers, and the wire
  codec (:mod:`repro.network.codec`) serialising every envelope.

The split mirrors the two halves of the interface:

* :class:`Clock` — time and timers (``now`` / ``schedule`` / ``cancel``).
* :class:`Transport` — a clock plus delivery (``submit`` /
  ``submit_broadcast``), membership (``add_process`` / ``membership_view``)
  and link control (``disconnect`` / ``reconnect``).

Implementations must honour the delivery contract protocol code relies on:
messages submitted by a process are delivered *asynchronously* (never
re-entrantly from inside ``submit``), and a broadcast reaches every target in
``targets`` exactly once, including the sender when listed.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.common.logging import replica_logger
from repro.common.types import ReplicaId
from repro.network.message import Message


class Clock:
    """Time source plus timer scheduling (one half of the transport seam)."""

    @property
    def now(self) -> float:
        """Current time in seconds (simulated or wall-clock)."""
        raise NotImplementedError

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        owner: Optional[ReplicaId] = None,
    ) -> int:
        """Run ``callback`` after ``delay`` seconds; returns a timer id."""
        raise NotImplementedError

    def cancel(self, timer_id: int) -> None:
        """Cancel a pending timer; firing or fired timers are ignored."""
        raise NotImplementedError


class Transport(Clock):
    """A clock plus message delivery, membership and link control.

    The three observability attributes follow the repo-wide zero-overhead
    contract: processes cache them once at bind time and guard every
    instrumented path with ``is not None``.
    """

    #: Telemetry registry of the run, or None when telemetry is disabled.
    telemetry: Optional[Any] = None
    #: Tracing runtime of the run, or None when tracing is disabled.
    tracing: Optional[Any] = None
    #: Live-observability runtime of the run, or None when disabled.
    obs: Optional[Any] = None

    # -- membership ----------------------------------------------------------

    def add_process(self, process: "Process") -> None:
        """Register a process and bind it to this transport."""
        raise NotImplementedError

    def remove_process(self, replica_id: ReplicaId) -> None:
        """Remove a process; in-flight messages to it are dropped."""
        raise NotImplementedError

    def membership_view(self) -> Tuple[ReplicaId, ...]:
        """Sorted tuple of reachable replica ids (do not mutate)."""
        raise NotImplementedError

    def disconnect(self, replica_id: ReplicaId) -> None:
        """Drop all future traffic to and from ``replica_id``."""
        raise NotImplementedError

    def reconnect(self, replica_id: ReplicaId) -> None:
        """Lift a previous :meth:`disconnect`."""
        raise NotImplementedError

    # -- delivery ------------------------------------------------------------

    def submit(self, message: Message) -> None:
        """Queue a point-to-point message for asynchronous delivery."""
        raise NotImplementedError

    def submit_broadcast(self, message: Message, targets: Sequence[ReplicaId]) -> None:
        """Deliver one broadcast envelope to every replica in ``targets``."""
        raise NotImplementedError


class Process:
    """Base class of every replica/protocol endpoint.

    Subclasses implement :meth:`on_message` and may override :meth:`on_start`.
    A process may only send messages once it has been bound to a transport
    (the discrete-event simulator or a real asyncio transport — protocol code
    cannot tell the difference).
    """

    def __init__(self, replica_id: ReplicaId):
        self.replica_id = replica_id
        self._transport: Optional[Transport] = None
        #: Cached telemetry registry (or None when disabled); set at bind time
        #: so hot protocol paths pay a plain attribute load plus a None check.
        self.telemetry: Optional[Any] = None
        #: Cached tracing runtime (or None when disabled); same contract.
        self.tracing: Optional[Any] = None
        #: Cached obs runtime (or None when disabled); same contract.
        self.obs: Optional[Any] = None
        #: Per-replica logger injecting id, transport time and trace context.
        self.log = replica_logger(self)

    # -- lifecycle -----------------------------------------------------------

    def bind(self, transport: Transport) -> None:
        """Attach the process to a transport (called by ``add_process``)."""
        self._transport = transport
        self.telemetry = transport.telemetry
        self.tracing = transport.tracing
        self.obs = transport.obs

    @property
    def transport(self) -> Transport:
        if self._transport is None:
            raise SimulationError(
                f"process {self.replica_id} is not attached to a transport"
            )
        return self._transport

    @property
    def simulator(self) -> Transport:
        """Backwards-compatible alias of :attr:`transport`."""
        return self.transport

    @property
    def now(self) -> float:
        """Current transport time in seconds."""
        return self.transport.now

    # -- communication -------------------------------------------------------

    def send(self, message: Message) -> None:
        """Send a point-to-point message."""
        self.transport.submit(message)

    def send_to(self, recipient: ReplicaId, protocol, kind: str, body: dict) -> None:
        """Convenience wrapper building the envelope and sending it."""
        self.send(
            Message(
                sender=self.replica_id,
                recipient=recipient,
                protocol=protocol,
                kind=kind,
                body=body,
            )
        )

    def broadcast(
        self,
        protocol,
        kind: str,
        body: dict,
        include_self: bool = True,
        recipients: Optional[Iterable[ReplicaId]] = None,
    ) -> None:
        """Send the same message to every replica known to the transport.

        ``recipients`` restricts the broadcast (used by deceitful replicas to
        equivocate towards specific partitions).  One envelope and one submit
        call serve every recipient; without an explicit recipient list the
        transport's cached membership view is used directly (no re-sorting).
        """
        transport = self.transport
        if recipients is not None:
            if include_self:
                targets: Sequence[ReplicaId] = list(recipients)
            else:
                targets = [r for r in recipients if r != self.replica_id]
        else:
            view = transport.membership_view()
            if include_self:
                targets = view
            else:
                targets = [r for r in view if r != self.replica_id]
        message = Message(
            sender=self.replica_id,
            recipient=None,
            protocol=protocol,
            kind=kind,
            body=body,
        )
        transport.submit_broadcast(message, targets)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run after ``delay`` transport seconds."""
        return self.transport.schedule(delay, callback, owner=self.replica_id)

    def cancel_timer(self, timer_id: int) -> None:
        """Cancel a previously scheduled timer (no-op if already fired)."""
        self.transport.cancel(timer_id)

    # -- protocol hooks ------------------------------------------------------

    def on_start(self) -> None:
        """Hook invoked when the transport starts (before any message)."""

    def on_message(self, message: Message) -> None:
        """Handle a delivered message."""
        raise NotImplementedError
