"""Typed message envelopes exchanged between simulated replicas.

Every protocol message travels inside a :class:`Message`: the envelope names
the sender, the recipient, the protocol that should consume it (``protocol``),
a message ``kind`` within that protocol and a free-form ``body``.  Signed
content (votes, echoes, certificates) is carried inside the body as
:class:`~repro.crypto.signatures.SignedPayload` objects so accountability can
later re-verify it independently of the envelope.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, Optional

from repro.common.types import ReplicaId

_message_counter = itertools.count()


@dataclasses.dataclass
class Message:
    """A network message envelope.

    Attributes:
        sender: replica id of the sender (as claimed on the wire; protocols
            that care about authenticity verify the signed content instead).
        recipient: replica id of the destination.
        protocol: name of the protocol instance that should consume the
            message, e.g. ``"rbc:5:2"`` (reliable broadcast for consensus
            instance 5, proposer 2).
        kind: message kind within the protocol, e.g. ``"ECHO"``.
        body: free-form payload dictionary.
        uid: unique, monotonically increasing message id (simulation-local);
            useful for deterministic tie-breaking and debugging.
    """

    sender: ReplicaId
    recipient: ReplicaId
    protocol: str
    kind: str
    body: Dict[str, Any] = dataclasses.field(default_factory=dict)
    uid: int = dataclasses.field(default_factory=lambda: next(_message_counter))

    def with_recipient(self, recipient: ReplicaId) -> "Message":
        """Return a copy of the message addressed to ``recipient``.

        The body dictionary is shared, not copied: protocol code treats bodies
        as immutable once sent.  A fresh ``uid`` is allocated so each copy can
        be traced individually.
        """
        return Message(
            sender=self.sender,
            recipient=recipient,
            protocol=self.protocol,
            kind=self.kind,
            body=self.body,
        )

    def describe(self) -> str:
        """Short human-readable description used in logs and error messages."""
        return (
            f"{self.protocol}/{self.kind} from {self.sender} to {self.recipient}"
        )


def reset_message_counter() -> None:
    """Reset the global message uid counter (test isolation helper)."""
    global _message_counter
    _message_counter = itertools.count()


def estimate_size_bytes(body: Dict[str, Any], base_overhead: int = 64) -> int:
    """Rough wire-size estimate of a message body, used by the cost models.

    The estimate counts canonical-encoding bytes plus a fixed envelope
    overhead.  It only needs to be *consistent*, not exact: the throughput
    model compares protocols whose messages are estimated the same way.
    """
    from repro.crypto.hashing import canonical_bytes

    try:
        return base_overhead + len(canonical_bytes(body))
    except TypeError:
        # Bodies containing non-canonical objects (rare, test-only) fall back
        # to a conservative flat estimate.
        return base_overhead + 512
