"""Typed message envelopes exchanged between simulated replicas.

Every protocol message travels inside a :class:`Message`: a slotted envelope
naming the sender, the recipient, the :class:`~repro.network.topic.Topic` that
should consume it, a message ``kind`` within that protocol and a free-form
``body``.  Signed content (votes, echoes, certificates) is carried inside the
body as :class:`~repro.crypto.signatures.SignedPayload` objects so
accountability can later re-verify it independently of the envelope.

Broadcasts share **one** envelope across all recipients (the simulator fills
in ``recipient`` as each delivery pops); bodies are shared too and treated as
immutable once sent.  The envelope memoises its estimated wire size so
telemetry-enabled runs never re-walk a body dictionary twice.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.common.types import ReplicaId
from repro.network.topic import Topic, TopicLike, as_topic

_message_counter = itertools.count()


class Message:
    """A network message envelope.

    Attributes:
        sender: replica id of the sender (as claimed on the wire; protocols
            that care about authenticity verify the signed content instead).
        recipient: replica id of the destination; ``None`` on a broadcast
            envelope until the simulator stamps each delivery.
        topic: the protocol topic that should consume the message, e.g.
            ``Topic.of("sbc", 0, 5, "rbc", 2)`` (epoch 0, consensus instance
            5, reliable broadcast of proposer 2).
        kind: message kind within the protocol, e.g. ``"ECHO"``.
        body: free-form payload dictionary (shared, never copied).
        uid: unique, monotonically increasing message id (simulation-local);
            useful for deterministic tie-breaking and debugging.
        trace_ctx: optional :class:`~repro.tracing.core.TraceContext` stamped
            by the simulator at submission time when tracing is enabled
            (``None`` otherwise); deliveries open child spans under it.
    """

    __slots__ = (
        "sender",
        "recipient",
        "topic",
        "kind",
        "body",
        "uid",
        "trace_ctx",
        "_size",
    )

    def __init__(
        self,
        sender: ReplicaId,
        recipient: Optional[ReplicaId],
        protocol: TopicLike,
        kind: str,
        body: Optional[Dict[str, Any]] = None,
        uid: Optional[int] = None,
    ):
        self.sender = sender
        self.recipient = recipient
        self.topic = protocol if type(protocol) is Topic else as_topic(protocol)
        self.kind = kind
        self.body: Dict[str, Any] = {} if body is None else body
        self.uid = next(_message_counter) if uid is None else uid
        self.trace_ctx: Optional[Any] = None
        self._size: Optional[int] = None

    @property
    def protocol(self) -> str:
        """Canonical string form of the topic (logs, legacy assertions)."""
        return self.topic.canonical

    def size_bytes(self) -> int:
        """Memoised exact wire size: the codec's length-prefixed frame length.

        This is what the asyncio transport writes per recipient for an
        untraced message, so per-protocol byte counters in telemetry/obs mean
        the same thing under the simulator and the real backend.  The optional
        trace-context tail is excluded on purpose: counters must not change
        when tracing stamps a context (see ``codec.message_frame_size``).
        Bodies carrying objects the codec does not know (test doubles) fall
        back to the canonical-encoding estimate (:func:`estimate_size_bytes`).
        """
        size = self._size
        if size is None:
            from repro.network.codec import CodecError, message_frame_size

            try:
                size = message_frame_size(self)
            except (CodecError, TypeError):
                size = estimate_size_bytes(self.body)
            self._size = size
        return size

    def with_recipient(self, recipient: ReplicaId) -> "Message":
        """Return a copy of the message addressed to ``recipient``.

        The body dictionary is shared, not copied: protocol code treats bodies
        as immutable once sent.  A fresh ``uid`` is allocated so each copy can
        be traced individually.
        """
        copy = Message(
            sender=self.sender,
            recipient=recipient,
            protocol=self.topic,
            kind=self.kind,
            body=self.body,
        )
        copy.trace_ctx = self.trace_ctx
        copy._size = self._size
        return copy

    def describe(self) -> str:
        """Short human-readable description used in logs and error messages.

        Includes the interned topic string and, when the message rides a
        trace, its ``tN:sM`` context — flight-recorder dumps and assertion
        messages are self-describing.
        """
        base = (
            f"{self.topic.canonical}/{self.kind} "
            f"from {self.sender} to {self.recipient}"
        )
        ctx = self.trace_ctx
        if ctx is not None:
            return f"{base} [{ctx.fmt()}]"
        return base

    def __repr__(self) -> str:
        return f"Message({self.describe()}, uid={self.uid})"


def reset_message_counter() -> None:
    """Reset the global message uid counter (test isolation helper)."""
    global _message_counter
    _message_counter = itertools.count()


def estimate_size_bytes(body: Dict[str, Any], base_overhead: int = 64) -> int:
    """Rough wire-size estimate of a message body, used by the cost models.

    The estimate counts canonical-encoding bytes plus a fixed envelope
    overhead.  It only needs to be *consistent*, not exact: the throughput
    model compares protocols whose messages are estimated the same way.
    """
    from repro.crypto.hashing import canonical_bytes

    try:
        return base_overhead + len(canonical_bytes(body))
    except TypeError:
        # Bodies containing non-canonical objects (rare, test-only) fall back
        # to a conservative flat estimate.
        return base_overhead + 512
