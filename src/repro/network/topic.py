"""Structured, interned protocol topics.

Every message envelope names the protocol instance that should consume it.
Historically that name was an ad-hoc string (``"sbc.e0:3:rbc:5"``) built with
f-strings at emission time and taken apart with ``startswith``/regex chains at
delivery time — on the hottest path of every experiment.  A :class:`Topic`
replaces the string with a tuple of path segments::

    ("sbc", 0, 3, "rbc", 5)     # epoch 0, instance 3, RBC of slot 5
    ("asmr", "confirm", 2)      # confirmation of instance 2
    ("excl", 1, "bin", 4)       # exclusion consensus of epoch 1, slot 4

Topics are **interned**: building the same segment tuple twice returns the
same object, so hot-path dictionary lookups hash a cached value and routing
never re-parses anything.  The canonical string form (segments joined with
``":"``) is kept only for human-facing output and for signed vote contexts,
and is computed lazily once per unique topic.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

#: A single path segment: protocol layer names are strings, epochs/instances/
#: slots are ints.
Segment = Union[str, int]

#: Anything accepted where a topic is expected.
TopicLike = Union["Topic", str, Tuple[Segment, ...]]

_INTERNED: Dict[Tuple[Segment, ...], "Topic"] = {}


class Topic:
    """An interned, immutable protocol path.

    Use :func:`topic` (or :meth:`Topic.of`) to construct; direct instantiation
    bypasses interning and is reserved for the intern table itself.
    """

    __slots__ = ("segments", "_canonical", "_hash", "_group")

    def __init__(self, segments: Tuple[Segment, ...]):
        self.segments = segments
        self._canonical: Optional[str] = None
        self._hash = hash(segments)
        #: Telemetry cache: the low-cardinality protocol group of this topic,
        #: filled in by :func:`repro.telemetry.protocol_group` on first use.
        self._group: Optional[str] = None

    # -- construction --------------------------------------------------------

    @staticmethod
    def of(*segments: Segment) -> "Topic":
        """Return the interned topic for ``segments``."""
        existing = _INTERNED.get(segments)
        if existing is not None:
            return existing
        created = Topic(segments)
        _INTERNED[segments] = created
        return created

    @staticmethod
    def parse(text: str) -> "Topic":
        """Parse a canonical ``":"``-joined string into an interned topic.

        Decimal segments become ints so ``Topic.parse(str(t)) is t`` holds for
        every topic built from strings and non-negative ints.
        """
        return Topic.of(
            *(int(part) if part.isdigit() else part for part in text.split(":"))
        )

    def child(self, *suffix: Segment) -> "Topic":
        """The interned topic extending this one with ``suffix`` segments."""
        return Topic.of(*self.segments, *suffix)

    # -- inspection ----------------------------------------------------------

    @property
    def canonical(self) -> str:
        """Canonical string form (lazily computed, cached)."""
        text = self._canonical
        if text is None:
            text = ":".join(str(segment) for segment in self.segments)
            self._canonical = text
        return text

    def is_prefix_of(self, other: "Topic") -> bool:
        """True when this topic is a (non-strict) path prefix of ``other``."""
        segments = self.segments
        return other.segments[: len(segments)] == segments

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def __getitem__(self, index):
        return self.segments[index]

    # -- identity ------------------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Topic):
            return self.segments == other.segments
        return NotImplemented

    def __str__(self) -> str:
        return self.canonical

    def __repr__(self) -> str:
        return f"Topic({self.canonical!r})"

    def __reduce__(self):
        # Re-intern on unpickle so identity-based caches stay coherent.
        return (Topic.of, tuple(self.segments))


def topic(*segments: Segment) -> Topic:
    """Shorthand for :meth:`Topic.of`."""
    return Topic.of(*segments)


def as_topic(value: TopicLike) -> Topic:
    """Normalise a topic-like value (Topic, tuple of segments, or string)."""
    if type(value) is Topic:
        return value
    if isinstance(value, str):
        return Topic.parse(value)
    if isinstance(value, tuple):
        return Topic.of(*value)
    raise TypeError(f"cannot interpret {value!r} as a topic")
