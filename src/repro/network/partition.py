"""Partition specifications for coalition attacks.

To make honest replicas disagree, the adversary of §5.2 splits them into
``a`` partitions (``a`` bounded by the branch formula of Appendix B) and slows
the links between partitions while deceitful replicas talk to every partition
normally.  :class:`PartitionSpec` captures that split and answers the two
questions the attack machinery needs: which partition an honest replica
belongs to, and whether a link crosses partitions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.types import ReplicaId, ReplicaSet, as_replica_set


@dataclasses.dataclass(frozen=True)
class PartitionSpec:
    """Assignment of honest replicas to partitions; deceitful replicas bridge all.

    Attributes:
        partitions: tuple of frozensets of replica ids, one per partition.
        bridging: replicas (typically the deceitful coalition) that are not in
            any partition and communicate normally with everyone.
    """

    partitions: Tuple[ReplicaSet, ...]
    bridging: ReplicaSet = frozenset()

    def __post_init__(self) -> None:
        seen: set = set()
        for partition in self.partitions:
            overlap = seen & set(partition)
            if overlap:
                raise ConfigurationError(
                    f"replicas {sorted(overlap)} appear in multiple partitions"
                )
            seen.update(partition)
        overlap = seen & set(self.bridging)
        if overlap:
            raise ConfigurationError(
                f"bridging replicas {sorted(overlap)} also appear in a partition"
            )

    @property
    def num_partitions(self) -> int:
        """Number of honest partitions."""
        return len(self.partitions)

    def partition_of(self, replica: ReplicaId) -> Optional[int]:
        """Return the partition index of ``replica`` or None if it bridges."""
        for index, partition in enumerate(self.partitions):
            if replica in partition:
                return index
        return None

    def crosses_partitions(self, sender: ReplicaId, recipient: ReplicaId) -> bool:
        """True when both endpoints are partitioned and in different partitions."""
        sender_partition = self.partition_of(sender)
        recipient_partition = self.partition_of(recipient)
        if sender_partition is None or recipient_partition is None:
            return False
        return sender_partition != recipient_partition

    def members(self) -> ReplicaSet:
        """All replicas covered by the spec (partitioned plus bridging)."""
        covered = set(self.bridging)
        for partition in self.partitions:
            covered.update(partition)
        return frozenset(covered)

    @staticmethod
    def split_evenly(
        honest: Iterable[ReplicaId],
        num_partitions: int,
        bridging: Iterable[ReplicaId] = (),
    ) -> "PartitionSpec":
        """Split ``honest`` replicas into ``num_partitions`` near-equal groups.

        The split is deterministic (sorted ids dealt round-robin) so attack
        experiments are reproducible for a given committee.
        """
        if num_partitions <= 0:
            raise ConfigurationError("num_partitions must be positive")
        honest_sorted: List[ReplicaId] = sorted(set(int(r) for r in honest))
        if not honest_sorted and num_partitions > 0:
            raise ConfigurationError("cannot partition an empty honest set")
        groups: List[List[ReplicaId]] = [[] for _ in range(num_partitions)]
        for index, replica in enumerate(honest_sorted):
            groups[index % num_partitions].append(replica)
        partitions = tuple(frozenset(group) for group in groups if group)
        return PartitionSpec(
            partitions=partitions, bridging=as_replica_set(bridging)
        )

    def describe(self) -> Dict[str, Sequence[int]]:
        """Human-readable summary: partition index -> sorted member list."""
        summary: Dict[str, Sequence[int]] = {
            f"partition-{index}": sorted(partition)
            for index, partition in enumerate(self.partitions)
        }
        summary["bridging"] = sorted(self.bridging)
        return summary
