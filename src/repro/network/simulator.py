"""The discrete-event network simulator.

The simulator owns a priority queue of events (message deliveries and timers),
a clock, and the set of :class:`Process` instances standing in for replicas.
Delays come from a :class:`~repro.network.delays.DelayModel`; randomness comes
from a single seeded :class:`random.Random` so every run is reproducible.

The design keeps protocol code synchronous and callback-driven: a process
reacts to :meth:`Process.on_message` and timer callbacks, possibly sending new
messages, and the simulator interleaves everything in timestamp order.

The event kernel is **fan-out-aware**: a broadcast enqueues a single event
carrying the full per-recipient delivery schedule (delays sampled in one
:meth:`~repro.network.delays.DelayModel.sample_many` call, in recipient
order — exactly the RNG consumption order of a per-recipient submission
loop, so seeded runs are bit-identical either way).  The event re-inserts
itself until every recipient is served, keeping the heap proportional to the
number of *pending broadcasts* rather than the number of pending deliveries —
and when consecutive recipients of the same broadcast would be popped
back-to-back anyway, the run loop chains them inline without the heap
round-trip (same delivery order, same counters, fewer heap operations).
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.config import SimulationConfig
from repro.common.errors import SimulationError
from repro.common.types import ReplicaId
from repro.network.delays import ConstantDelay, DelayModel
from repro.network.message import Message
from repro.network.transport import Process, Transport
from repro.obs import core as obs_core
from repro.obs.core import ObsRuntime
from repro.telemetry import core as telemetry_core
from repro.telemetry.core import TelemetryRegistry, protocol_group
from repro.tracing import core as tracing_core
from repro.tracing.core import TraceRuntime

__all__ = [
    "NetworkSimulator",
    "Process",
    "SimulationResult",
    "QUEUE_DEPTH_SAMPLE_EVERY",
]

#: Queue depth is sampled every this many processed events (power of two so
#: the hot loop's modulo is a mask); sampling keeps enabled-mode overhead low
#: while still tracing how the backlog evolves.  Note the sampled value counts
#: heap entries: a pending broadcast is one entry regardless of fan-out.
QUEUE_DEPTH_SAMPLE_EVERY = 64


class _Event:
    """Internal event record ordered by (time, sequence number).

    Three kinds share the class: point-to-point DELIVERY, TIMER callbacks and
    BROADCAST fan-out events.  A broadcast event carries its whole delivery
    schedule (``deliveries`` is a list of ``(time, order, recipient)`` sorted
    by delivery time) and re-enters the heap, keeping its sequence number,
    until ``cursor`` reaches the end — which reproduces exactly the ordering
    a per-recipient event scheme would yield, with one heap entry.
    """

    __slots__ = (
        "time",
        "seq",
        "kind",
        "message",
        "callback",
        "cancelled",
        "deliveries",
        "cursor",
        "owner",
        "trace_ctx",
    )

    DELIVERY = "delivery"
    TIMER = "timer"
    BROADCAST = "broadcast"

    def __init__(
        self,
        time: float,
        seq: int,
        kind: str,
        message: Optional[Message] = None,
        callback: Optional[Callable[[], None]] = None,
    ):
        self.time = time
        self.seq = seq
        self.kind = kind
        self.message = message
        self.callback = callback
        self.cancelled = False
        self.deliveries: Optional[List[Tuple[float, int, ReplicaId]]] = None
        self.cursor = 0
        #: Timer bookkeeping: scheduling replica and, when tracing is
        #: enabled, the trace context captured at scheduling time (restored
        #: around the callback so delayed continuations stay causal).
        self.owner: Optional[ReplicaId] = None
        self.trace_ctx = None

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class NetworkSimulator(Transport):
    """Deterministic discrete-event :class:`Transport` backend.

    Implements the full transport seam (submit/broadcast/timers/clock/
    membership) on top of a priority queue of events and virtual time; the
    real-network counterpart is
    :class:`~repro.network.asyncio_transport.AsyncioTransport`.
    """

    def __init__(
        self,
        delay_model: Optional[DelayModel] = None,
        config: Optional[SimulationConfig] = None,
        telemetry: Optional[TelemetryRegistry] = None,
        tracing: Optional[TraceRuntime] = None,
        obs: Optional[ObsRuntime] = None,
    ):
        self.delay_model = delay_model or ConstantDelay(0.01)
        self.config = config or SimulationConfig()
        #: The run's telemetry registry, or None (disabled — the default).
        #: Falls back to the registry installed by ``telemetry.activate`` so a
        #: scenario cell can instrument the whole stack it builds.
        self.telemetry = telemetry if telemetry is not None else telemetry_core.current()
        #: The run's tracing runtime, or None (disabled — the default); the
        #: same activation fallback as telemetry.  Tracing is observational
        #: only — it consumes no randomness and schedules nothing, so seeded
        #: runs are bit-identical with it on or off.
        self.tracing = tracing if tracing is not None else tracing_core.current()
        #: The run's live-observability runtime, or None (disabled — the
        #: default); same activation fallback and same observational-only
        #: guarantee as tracing.  The sampler adopts this simulator's horizon
        #: and pending-events gauge at construction.
        self.obs = obs if obs is not None else obs_core.current()
        if self.obs is not None:
            self.obs.sampler.attach(self)
        self.rng = random.Random(self.config.seed)
        self._queue: List[_Event] = []
        self._sequence = itertools.count()
        self._processes: Dict[ReplicaId, Process] = {}
        #: Cached sorted membership view, rebuilt only when membership changes.
        self._membership_view: Tuple[ReplicaId, ...] = ()
        self._timers: Dict[int, _Event] = {}
        self._disconnected: Set[ReplicaId] = set()
        self._now: float = 0.0
        self._started = False
        #: Live count of queued, non-cancelled deliveries and timers
        #: (broadcasts count one per still-undelivered recipient), maintained
        #: on push/cancel/pop so :meth:`pending_events` is O(1).
        self._pending = 0
        # Observability counters.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.events_processed = 0

    # -- membership ----------------------------------------------------------

    def add_process(self, process: Process) -> None:
        """Register a process; its ``on_start`` runs when the simulation starts."""
        if process.replica_id in self._processes:
            raise SimulationError(
                f"replica {process.replica_id} already registered"
            )
        process.bind(self)
        self._processes[process.replica_id] = process
        self._membership_view = tuple(sorted(self._processes))
        if self._started:
            process.on_start()

    def remove_process(self, replica_id: ReplicaId) -> None:
        """Remove a process; queued messages to it will be dropped on delivery."""
        if self._processes.pop(replica_id, None) is not None:
            self._membership_view = tuple(sorted(self._processes))

    def membership_view(self) -> Tuple[ReplicaId, ...]:
        """Cached sorted tuple of registered replica ids (do not mutate)."""
        return self._membership_view

    def replica_ids(self) -> List[ReplicaId]:
        """Sorted list of currently registered replica ids."""
        return list(self._membership_view)

    def process_for(self, replica_id: ReplicaId) -> Process:
        """Return the process registered for ``replica_id``."""
        try:
            return self._processes[replica_id]
        except KeyError:
            raise SimulationError(f"no process registered for {replica_id}") from None

    def disconnect(self, replica_id: ReplicaId) -> None:
        """Drop all future messages to and from ``replica_id`` (crash/benign mute)."""
        self._disconnected.add(replica_id)

    def reconnect(self, replica_id: ReplicaId) -> None:
        """Lift a previous :meth:`disconnect`."""
        self._disconnected.discard(replica_id)

    # -- event submission ----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def submit(self, message: Message) -> None:
        """Queue ``message`` for delivery after a sampled delay."""
        self.messages_sent += 1
        telemetry = self.telemetry
        if telemetry is not None:
            group = protocol_group(message.topic)
            telemetry.counter(
                "net.messages_sent", protocol=group, kind=message.kind
            ).inc()
            telemetry.counter(
                "net.bytes_sent", protocol=group, kind=message.kind
            ).inc(message.size_bytes())
        tracing = self.tracing
        if tracing is not None:
            tracing.on_send(message, self._now)
        obs = self.obs
        if obs is not None:
            obs.sampler.count_message(protocol_group(message.topic))
        if (
            message.sender in self._disconnected
            or message.recipient in self._disconnected
        ):
            self.messages_dropped += 1
            if telemetry is not None:
                telemetry.counter("net.messages_dropped").inc()
            if tracing is not None:
                tracing.on_drop(message, self._now)
            return
        delay = self.delay_model.sample(message.sender, message.recipient, self.rng)
        if delay < 0:
            raise SimulationError(f"negative delay {delay} sampled")
        event = _Event(
            time=self._now + delay,
            seq=next(self._sequence),
            kind=_Event.DELIVERY,
            message=message,
        )
        heapq.heappush(self._queue, event)
        self._pending += 1

    def submit_broadcast(
        self, message: Message, targets: Sequence[ReplicaId]
    ) -> None:
        """Queue one broadcast envelope for delivery to every target.

        Per-recipient delays are sampled immediately, in target order — the
        same RNG consumption order as submitting one message per recipient —
        and the schedule rides a single heap event.
        """
        count = len(targets)
        if count == 0:
            return
        self.messages_sent += count
        telemetry = self.telemetry
        if telemetry is not None:
            group = protocol_group(message.topic)
            telemetry.counter(
                "net.messages_sent", protocol=group, kind=message.kind
            ).inc(count)
            telemetry.counter(
                "net.bytes_sent", protocol=group, kind=message.kind
            ).inc(message.size_bytes() * count)
        tracing = self.tracing
        if tracing is not None:
            # One stamped envelope serves every recipient; each delivery then
            # opens its own child span under the shared context.
            tracing.on_send(message, self._now)
        obs = self.obs
        if obs is not None:
            obs.sampler.count_message(protocol_group(message.topic), count)
        sender = message.sender
        if sender in self._disconnected:
            self.messages_dropped += count
            if telemetry is not None:
                telemetry.counter("net.messages_dropped").inc(count)
            if tracing is not None:
                tracing.on_drop(message, self._now, count=count)
            return
        # Filter disconnected targets *before* sampling: the scalar submission
        # loop never consumed randomness for dropped recipients, and the
        # batched path must not either (seeded-run parity).
        disconnected = self._disconnected
        if disconnected:
            reachable = [
                (order, target)
                for order, target in enumerate(targets)
                if target not in disconnected
            ]
            dropped = count - len(reachable)
            if dropped:
                self.messages_dropped += dropped
                if telemetry is not None:
                    telemetry.counter("net.messages_dropped").inc(dropped)
            if not reachable:
                return
            delays = self.delay_model.sample_many(
                sender, [target for _, target in reachable], self.rng
            )
        else:
            reachable = list(enumerate(targets))
            delays = self.delay_model.sample_many(sender, targets, self.rng)
        now = self._now
        deliveries: List[Tuple[float, int, ReplicaId]] = []
        append = deliveries.append
        for (order, target), delay in zip(reachable, delays):
            if delay < 0:
                raise SimulationError(f"negative delay {delay} sampled")
            append((now + delay, order, target))
        deliveries.sort()
        event = _Event(
            time=deliveries[0][0],
            seq=next(self._sequence),
            kind=_Event.BROADCAST,
            message=message,
        )
        event.deliveries = deliveries
        heapq.heappush(self._queue, event)
        self._pending += len(deliveries)

    def schedule(
        self, delay: float, callback: Callable[[], None], owner: Optional[ReplicaId] = None
    ) -> int:
        """Schedule ``callback`` after ``delay`` seconds; returns a timer id."""
        if delay < 0:
            raise SimulationError("timer delay must be non-negative")
        event = _Event(
            time=self._now + delay,
            seq=next(self._sequence),
            kind=_Event.TIMER,
            callback=callback,
        )
        event.owner = owner
        tracing = self.tracing
        if tracing is not None:
            # Capture the active context so the callback runs on the causal
            # chain that scheduled it (e.g. the delivery that armed a grace
            # timer), not on whatever happens to be active when it fires.
            event.trace_ctx = tracing.tracer.current_ctx
        heapq.heappush(self._queue, event)
        self._timers[event.seq] = event
        self._pending += 1
        return event.seq

    def cancel(self, timer_id: int) -> None:
        """Cancel a pending timer; firing or fired timers are ignored."""
        event = self._timers.get(timer_id)
        if event is not None and not event.cancelled:
            event.cancelled = True
            self._pending -= 1

    # -- execution -----------------------------------------------------------

    def _start_processes(self) -> None:
        if not self._started:
            self._started = True
            for replica_id in sorted(self._processes):
                self._processes[replica_id].on_start()

    def run(
        self,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
    ) -> "SimulationResult":
        """Process events until the queue drains, a deadline, or a predicate.

        Args:
            until: absolute simulated time at which to stop (defaults to the
                configured ``max_time``).
            stop_when: optional predicate evaluated after every event; the run
                stops as soon as it returns True.
            max_events: optional cap on the number of events processed in this
                call (defaults to the configured ``max_events``).
        """
        self._start_processes()
        deadline = self.config.max_time if until is None else until
        budget = self.config.max_events if max_events is None else max_events
        telemetry = self.telemetry
        tracing = self.tracing
        obs = self.obs
        sampler = obs.sampler if obs is not None else None
        profiler = obs.profiler if obs is not None else None
        if profiler is not None:
            # The whole loop runs as one ``sim.kernel`` section: dispatch,
            # timer and ledger children claim their share on the stack, and
            # the kernel's remaining *self* time is exactly the scheduling
            # overhead (heap ops, delivery bookkeeping).
            profiler.enter("sim.kernel")
        processed = 0
        try:
            while self._queue and processed < budget:
                event = self._queue[0]
                if event.time > deadline:
                    break
                heapq.heappop(self._queue)
                kind = event.kind
                if kind == _Event.TIMER:
                    # Drop the bookkeeping entry whether the timer fires or was
                    # cancelled — cancelled entries must not outlive their event.
                    self._timers.pop(event.seq, None)
                    if event.cancelled:
                        continue
                self._now = max(self._now, event.time)
                if sampler is not None and self._now >= sampler.next_tick:
                    sampler.tick(self._now, self.events_processed)
                processed += 1
                self.events_processed += 1
                self._pending -= 1
                if (
                    telemetry is not None
                    and self.events_processed % QUEUE_DEPTH_SAMPLE_EVERY == 0
                ):
                    telemetry.histogram("net.queue_depth").observe(len(self._queue))
                if kind == _Event.TIMER:
                    assert event.callback is not None
                    if profiler is not None:
                        profiler.enter("timer")
                        try:
                            if tracing is None:
                                event.callback()
                            else:
                                tracing.fire_timer(
                                    event.callback,
                                    event.trace_ctx,
                                    self._now,
                                    event.owner,
                                )
                        finally:
                            profiler.exit()
                    elif tracing is None:
                        event.callback()
                    else:
                        tracing.fire_timer(
                            event.callback, event.trace_ctx, self._now, event.owner
                        )
                elif kind == _Event.BROADCAST:
                    deliveries = event.deliveries
                    assert deliveries is not None and event.message is not None
                    cursor = event.cursor
                    message = event.message
                    total = len(deliveries)
                    queue = self._queue
                    seq = event.seq
                    while True:
                        message.recipient = deliveries[cursor][2]
                        cursor += 1
                        if cursor == total:
                            self._deliver(message)
                            break
                        next_time = deliveries[cursor][0]
                        if processed >= budget or next_time > deadline:
                            event.cursor = cursor
                            event.time = next_time
                            heapq.heappush(queue, event)
                            self._deliver(message)
                            break
                        self._deliver(message)
                        if stop_when is not None and stop_when():
                            # Park the rest; the post-event check below stops
                            # the run (stop predicates are pure, so the extra
                            # call is harmless).
                            event.cursor = cursor
                            event.time = next_time
                            heapq.heappush(queue, event)
                            break
                        # Chain the next recipient inline only when this event
                        # would be popped right back anyway: no queued event —
                        # including any just submitted by the delivery above —
                        # orders before (next_time, seq).  Otherwise re-enter
                        # the heap with the original sequence number so
                        # tie-breaking matches the per-recipient event scheme
                        # exactly.
                        if queue and (queue[0].time, queue[0].seq) < (next_time, seq):
                            event.cursor = cursor
                            event.time = next_time
                            heapq.heappush(queue, event)
                            break
                        # Replay the per-event bookkeeping the outer loop
                        # would have done for the chained recipient.  The
                        # sampled queue depth is identical to the heap
                        # round-trip scheme: the pop there happened before the
                        # sample, so this in-flight broadcast never counted.
                        if next_time > self._now:
                            self._now = next_time
                        if sampler is not None and self._now >= sampler.next_tick:
                            sampler.tick(self._now, self.events_processed)
                        processed += 1
                        self.events_processed += 1
                        self._pending -= 1
                        if (
                            telemetry is not None
                            and self.events_processed % QUEUE_DEPTH_SAMPLE_EVERY == 0
                        ):
                            telemetry.histogram("net.queue_depth").observe(len(queue))
                else:
                    assert event.message is not None
                    self._deliver(event.message)
                if stop_when is not None and stop_when():
                    break
            else:
                if self._queue and processed >= budget:
                    return SimulationResult(
                        time=self._now, events=processed, exhausted_budget=True
                    )
            return SimulationResult(
                time=self._now, events=processed, exhausted_budget=False
            )
        finally:
            if profiler is not None:
                profiler.exit()

    def _deliver(self, message: Message) -> None:
        tracing = self.tracing
        if message.recipient in self._disconnected:
            self.messages_dropped += 1
            if self.telemetry is not None:
                self.telemetry.counter("net.messages_dropped").inc()
            if tracing is not None:
                tracing.on_drop(message, self._now)
            return
        process = self._processes.get(message.recipient)
        if process is None:
            self.messages_dropped += 1
            if self.telemetry is not None:
                self.telemetry.counter("net.messages_dropped").inc()
            if tracing is not None:
                tracing.on_drop(message, self._now)
            return
        self.messages_delivered += 1
        if self.telemetry is not None:
            self.telemetry.counter("net.messages_delivered").inc()
        if tracing is None:
            process.on_message(message)
        else:
            # The runtime records the delivery and dispatches inside a child
            # span of the message's context (one span per recipient).
            tracing.deliver(process, message, self._now)

    def pending_events(self) -> int:
        """Number of queued (non-cancelled) deliveries and timers, O(1).

        Maintained as a live counter on push/cancel/pop; a queued broadcast
        counts one pending event per recipient not yet served.
        """
        return self._pending


class SimulationResult:
    """Summary returned by :meth:`NetworkSimulator.run`."""

    def __init__(self, time: float, events: int, exhausted_budget: bool):
        self.time = time
        self.events = events
        self.exhausted_budget = exhausted_budget

    def __repr__(self) -> str:
        return (
            f"SimulationResult(time={self.time:.3f}s, events={self.events}, "
            f"exhausted_budget={self.exhausted_budget})"
        )
