"""Discrete-event network simulation substrate.

The paper evaluates ZLB on 90–100 AWS machines across five regions; the
reproduction replaces the physical network with a deterministic discrete-event
simulator (see DESIGN.md §2).  The simulator delivers messages after delays
drawn from pluggable :mod:`delay models <repro.network.delays>`, including the
partition-aware delays used to mount the coalition attacks of §5.2–§5.3.
"""

from repro.network.message import Message
from repro.network.delays import (
    AwsRegionDelay,
    ConstantDelay,
    DelayModel,
    GammaDelay,
    PartitionedDelay,
    UniformDelay,
    delay_model_from_name,
)
from repro.network.partition import PartitionSpec
from repro.network.router import RoutedProcess, Router
from repro.network.simulator import NetworkSimulator, Process
from repro.network.topic import Topic, TopicLike, as_topic, topic

__all__ = [
    "Message",
    "Topic",
    "TopicLike",
    "as_topic",
    "topic",
    "Router",
    "RoutedProcess",
    "AwsRegionDelay",
    "ConstantDelay",
    "DelayModel",
    "GammaDelay",
    "PartitionedDelay",
    "UniformDelay",
    "delay_model_from_name",
    "PartitionSpec",
    "NetworkSimulator",
    "Process",
]
