"""Network substrate: the transport seam and its two backends.

Protocol code talks to an abstract :class:`~repro.network.transport.Transport`
(send, broadcast, timers, clock, membership).  Two backends implement it:

* :class:`~repro.network.simulator.NetworkSimulator` — the deterministic
  discrete-event simulator the paper's experiments run on (see DESIGN.md §2),
  with pluggable :mod:`delay models <repro.network.delays>` including the
  partition-aware delays used to mount the coalition attacks of §5.2–§5.3.
* :class:`~repro.network.asyncio_transport.AsyncioTransport` — real TCP or
  UNIX-domain sockets with wall-clock timers, used by the ``python -m
  repro.cluster`` launcher to run the unmodified protocol stack as separate
  OS processes (messages cross via :mod:`repro.network.codec` frames).
"""

from repro.network.message import Message
from repro.network.codec import (
    CodecError,
    decode_message,
    encode_message,
    frame_message,
)
from repro.network.delays import (
    AwsRegionDelay,
    ConstantDelay,
    DelayModel,
    GammaDelay,
    PartitionedDelay,
    UniformDelay,
    delay_model_from_name,
)
from repro.network.partition import PartitionSpec
from repro.network.router import RoutedProcess, Router
from repro.network.simulator import NetworkSimulator, Process
from repro.network.topic import Topic, TopicLike, as_topic, topic
from repro.network.transport import Clock, Transport
from repro.network.asyncio_transport import AsyncioTransport, Endpoint

__all__ = [
    "Message",
    "Topic",
    "TopicLike",
    "as_topic",
    "topic",
    "Router",
    "RoutedProcess",
    "AwsRegionDelay",
    "ConstantDelay",
    "DelayModel",
    "GammaDelay",
    "PartitionedDelay",
    "UniformDelay",
    "delay_model_from_name",
    "PartitionSpec",
    "NetworkSimulator",
    "Process",
    "Clock",
    "Transport",
    "CodecError",
    "encode_message",
    "decode_message",
    "frame_message",
    "AsyncioTransport",
    "Endpoint",
]
