"""Hierarchical topic router: longest-prefix dispatch over topic segments.

A :class:`Router` maps topic *prefixes* to handlers.  Dispatch walks the
segments of an incoming topic through a trie of dicts — O(depth) dict lookups
— and invokes the handler registered at the **deepest** matching prefix, so a
specific registration (``("sbc", 0, 3)`` — one consensus instance) shadows a
general fallback (``("sbc",)`` — "unknown instance, create it lazily").

This replaces the seed's routing scheme, where every delivered message was
matched against each hosted component with ``protocol.startswith(...)`` chains
and per-slot f-string rebuilding.

:class:`RoutedProcess` is the glue between the router and the simulator's
:class:`~repro.network.simulator.Process`: replicas and baseline protocols
subclass it, register their handlers per topic prefix, and never look at
protocol strings again.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.network.simulator import Process
from repro.network.topic import Segment, Topic, TopicLike, as_topic
from repro.telemetry.core import protocol_group

#: Handler signature: (topic, sender, kind, body).
Handler = Callable[[Topic, Any, str, Dict[str, Any]], None]


class _Node:
    """One trie node: children per segment plus an optional handler."""

    __slots__ = ("children", "handler")

    def __init__(self):
        self.children: Dict[Segment, _Node] = {}
        self.handler: Optional[Handler] = None


class Router:
    """Longest-prefix handler registry over topic segments."""

    __slots__ = ("_root",)

    def __init__(self):
        self._root = _Node()

    def register(self, prefix: TopicLike, handler: Handler) -> None:
        """Register ``handler`` for every topic under ``prefix``.

        Registering a deeper prefix shadows a shallower one; re-registering
        the same prefix replaces the previous handler (components re-register
        across epochs).
        """
        node = self._root
        for segment in as_topic(prefix).segments:
            child = node.children.get(segment)
            if child is None:
                child = _Node()
                node.children[segment] = child
            node = child
        node.handler = handler

    def unregister(self, prefix: TopicLike) -> bool:
        """Remove the handler at exactly ``prefix``; prunes empty trie nodes.

        Returns False when no handler was registered at that prefix.
        """
        path: List[Tuple[_Node, Segment]] = []
        node = self._root
        for segment in as_topic(prefix).segments:
            child = node.children.get(segment)
            if child is None:
                return False
            path.append((node, segment))
            node = child
        if node.handler is None:
            return False
        node.handler = None
        # Prune nodes that no longer carry handlers or children.
        for parent, segment in reversed(path):
            child = parent.children[segment]
            if child.handler is None and not child.children:
                del parent.children[segment]
            else:
                break
        return True

    def resolve(self, topic: TopicLike) -> Optional[Handler]:
        """The handler the router would dispatch ``topic`` to, or None."""
        node = self._root
        found = node.handler
        for segment in as_topic(topic).segments:
            node = node.children.get(segment)
            if node is None:
                break
            if node.handler is not None:
                found = node.handler
        return found

    def dispatch(self, topic: Topic, sender: Any, kind: str, body: Dict[str, Any]) -> bool:
        """Route one message; returns False when no prefix matched."""
        node = self._root
        found = node.handler
        children = node.children
        for segment in topic.segments:
            node = children.get(segment)
            if node is None:
                break
            if node.handler is not None:
                found = node.handler
            children = node.children
        if found is None:
            return False
        found(topic, sender, kind, body)
        return True


class RoutedProcess(Process):
    """A simulated process whose messages are dispatched through a Router."""

    def __init__(self, replica_id):
        super().__init__(replica_id)
        self.router = Router()
        #: Messages no registered prefix claimed (observability).
        self.unrouted_messages = 0

    def on_message(self, message) -> None:
        obs = self.obs
        if obs is None:
            if not self.router.dispatch(
                message.topic, message.sender, message.kind, message.body
            ):
                self._note_unrouted(message)
            return
        # Profiled path: attribute dispatch wall time to the message's
        # topic-prefix bucket (``dispatch:sbc:rbc`` etc.) as a child of the
        # kernel's ``sim.kernel`` section.
        profiler = obs.profiler
        profiler.enter("dispatch:" + protocol_group(message.topic))
        try:
            if not self.router.dispatch(
                message.topic, message.sender, message.kind, message.body
            ):
                self._note_unrouted(message)
        finally:
            profiler.exit()

    def _note_unrouted(self, message) -> None:
        self.unrouted_messages += 1
        # Cold path: unrouted traffic is a routing-table bug or late
        # cross-epoch chatter — worth a debug line either way.
        self.log.debug("unrouted message: %s", message.describe())
        self.on_unrouted(message)

    def on_unrouted(self, message) -> None:
        """Hook for subclasses that create handlers lazily."""
