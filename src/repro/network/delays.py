"""Message delay models.

The paper's experiments (§5.2–§5.3) inject delays drawn from three families:

* uniform delays with means of 200, 500, 1000 ms (and up to 5–10 s in the
  catastrophic scenarios of §5.3),
* a Gamma distribution with parameters taken from Internet measurement
  studies [49, 21],
* an "aws-like" distribution that samples the fixed latencies previously
  measured between AWS regions [20].

Each model implements :meth:`DelayModel.sample` returning a one-way delay in
seconds for a (sender, recipient) pair.  :class:`PartitionedDelay` composes a
base model with a cross-partition model to reproduce the attack setup where
partitions of honest replicas are slowed down while deceitful replicas
communicate normally with every partition.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.types import ReplicaId
from repro.network.partition import PartitionSpec

#: Round-trip-derived one-way latencies (seconds) between the five AWS regions
#: used by the paper's WAN deployment (California, Oregon, Ohio, Frankfurt,
#: Ireland).  Values follow the inter-region measurements the Red Belly paper
#: reports; the exact numbers only need to be realistic, the experiments use
#: their *relative* structure.
AWS_REGIONS: Tuple[str, ...] = (
    "us-west-1",   # California
    "us-west-2",   # Oregon
    "us-east-2",   # Ohio
    "eu-central-1",  # Frankfurt
    "eu-west-1",   # Ireland
)

AWS_LATENCY_SECONDS: Dict[Tuple[str, str], float] = {
    ("us-west-1", "us-west-1"): 0.001,
    ("us-west-1", "us-west-2"): 0.010,
    ("us-west-1", "us-east-2"): 0.025,
    ("us-west-1", "eu-central-1"): 0.073,
    ("us-west-1", "eu-west-1"): 0.069,
    ("us-west-2", "us-west-2"): 0.001,
    ("us-west-2", "us-east-2"): 0.034,
    ("us-west-2", "eu-central-1"): 0.079,
    ("us-west-2", "eu-west-1"): 0.062,
    ("us-east-2", "us-east-2"): 0.001,
    ("us-east-2", "eu-central-1"): 0.050,
    ("us-east-2", "eu-west-1"): 0.040,
    ("eu-central-1", "eu-central-1"): 0.001,
    ("eu-central-1", "eu-west-1"): 0.013,
    ("eu-west-1", "eu-west-1"): 0.001,
}


def _aws_latency(region_a: str, region_b: str) -> float:
    key = (region_a, region_b)
    if key in AWS_LATENCY_SECONDS:
        return AWS_LATENCY_SECONDS[key]
    return AWS_LATENCY_SECONDS[(region_b, region_a)]


class DelayModel:
    """Interface of every delay model: sample a one-way delay in seconds."""

    def sample(self, sender: ReplicaId, recipient: ReplicaId, rng: random.Random) -> float:
        """Return the delay, in seconds, of a message ``sender -> recipient``."""
        raise NotImplementedError

    def sample_many(
        self, sender: ReplicaId, targets: Sequence[ReplicaId], rng: random.Random
    ) -> List[float]:
        """Sample one delay per target, in target order.

        The contract is **bit-identity** with the scalar path: the returned
        list must equal ``[self.sample(sender, t, rng) for t in targets]``
        including RNG consumption order, so seeded runs are byte-identical
        whether the kernel batches or not.  Subclasses override this to hoist
        per-call lookups out of the fan-out loop; composite models (loss,
        partitions) keep the base implementation because their per-target
        branching *is* the RNG order.
        """
        sample = self.sample
        return [sample(sender, target, rng) for target in targets]

    def mean_delay(self) -> float:
        """Return the (approximate) mean one-way delay of the model in seconds.

        Used by the phase-level throughput model; subclasses should return a
        representative value even when the exact mean is pair-dependent.
        """
        raise NotImplementedError


class ConstantDelay(DelayModel):
    """Every message takes exactly ``delay`` seconds (useful in unit tests)."""

    def __init__(self, delay: float = 0.01):
        if delay < 0:
            raise ConfigurationError("delay must be non-negative")
        self.delay = delay

    def sample(self, sender: ReplicaId, recipient: ReplicaId, rng: random.Random) -> float:
        return self.delay

    def sample_many(
        self, sender: ReplicaId, targets: Sequence[ReplicaId], rng: random.Random
    ) -> List[float]:
        # No randomness consumed, so a repeated constant is trivially identical.
        return [self.delay] * len(targets)

    def mean_delay(self) -> float:
        return self.delay


class UniformDelay(DelayModel):
    """Delays drawn uniformly from ``[low, high]``.

    The paper specifies uniform delays by their mean (200, 500, 1000 ms, up to
    5–10 s); :meth:`from_mean` maps a mean ``m`` to ``U[0.5 m, 1.5 m]`` which
    keeps the mean while providing enough spread to desynchronise partitions.
    """

    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ConfigurationError(f"invalid uniform delay range [{low}, {high}]")
        self.low = low
        self.high = high

    @staticmethod
    def from_mean(mean_seconds: float) -> "UniformDelay":
        if mean_seconds <= 0:
            raise ConfigurationError("mean delay must be positive")
        return UniformDelay(low=0.5 * mean_seconds, high=1.5 * mean_seconds)

    def sample(self, sender: ReplicaId, recipient: ReplicaId, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def sample_many(
        self, sender: ReplicaId, targets: Sequence[ReplicaId], rng: random.Random
    ) -> List[float]:
        uniform = rng.uniform
        low = self.low
        high = self.high
        return [uniform(low, high) for _ in targets]

    def mean_delay(self) -> float:
        return (self.low + self.high) / 2


class GammaDelay(DelayModel):
    """Delays drawn from a Gamma distribution.

    Defaults follow the Internet delay measurements cited by the paper
    ([49, 21]): a shape around 2 with a mean of a few tens of milliseconds,
    i.e. most messages are fast with a heavier tail than the uniform model.
    """

    def __init__(self, shape: float = 2.0, mean_seconds: float = 0.04):
        if shape <= 0 or mean_seconds <= 0:
            raise ConfigurationError("gamma shape and mean must be positive")
        self.shape = shape
        self.scale = mean_seconds / shape
        self._mean = mean_seconds

    def sample(self, sender: ReplicaId, recipient: ReplicaId, rng: random.Random) -> float:
        return rng.gammavariate(self.shape, self.scale)

    def sample_many(
        self, sender: ReplicaId, targets: Sequence[ReplicaId], rng: random.Random
    ) -> List[float]:
        gammavariate = rng.gammavariate
        shape = self.shape
        scale = self.scale
        return [gammavariate(shape, scale) for _ in targets]

    def mean_delay(self) -> float:
        return self._mean


class AwsRegionDelay(DelayModel):
    """Delays that replay the measured AWS inter-region latencies.

    Replicas are assigned to the five regions round-robin (matching a
    geo-distributed deployment that spreads replicas evenly); each message
    samples the base inter-region latency plus a small jitter.
    """

    def __init__(self, jitter_fraction: float = 0.1, regions: Optional[Sequence[str]] = None):
        if jitter_fraction < 0:
            raise ConfigurationError("jitter_fraction must be non-negative")
        self.jitter_fraction = jitter_fraction
        self.regions: Tuple[str, ...] = tuple(regions) if regions else AWS_REGIONS
        for region in self.regions:
            if region not in AWS_REGIONS:
                raise ConfigurationError(f"unknown AWS region {region!r}")
        #: Base latency table indexed by region position: replica ``r`` lives
        #: in region ``r % len(regions)``, so every (sender, recipient) pair
        #: reduces to two modulos and two list indexes instead of string-keyed
        #: dict probes in the fan-out hot path.
        self._region_count = len(self.regions)
        self._pair_latency: List[List[float]] = [
            [_aws_latency(region_a, region_b) for region_b in self.regions]
            for region_a in self.regions
        ]

    def region_of(self, replica: ReplicaId) -> str:
        return self.regions[replica % len(self.regions)]

    def sample(self, sender: ReplicaId, recipient: ReplicaId, rng: random.Random) -> float:
        count = self._region_count
        base = self._pair_latency[sender % count][recipient % count]
        jitter = rng.uniform(-self.jitter_fraction, self.jitter_fraction) * base
        return max(0.0005, base + jitter)

    def sample_many(
        self, sender: ReplicaId, targets: Sequence[ReplicaId], rng: random.Random
    ) -> List[float]:
        count = self._region_count
        row = self._pair_latency[sender % count]
        uniform = rng.uniform
        jitter_fraction = self.jitter_fraction
        delays: List[float] = []
        append = delays.append
        for target in targets:
            base = row[target % count]
            delay = base + uniform(-jitter_fraction, jitter_fraction) * base
            append(delay if delay > 0.0005 else 0.0005)
        return delays

    def mean_delay(self) -> float:
        total = 0.0
        count = 0
        for region_a in self.regions:
            for region_b in self.regions:
                total += _aws_latency(region_a, region_b)
                count += 1
        return total / count


class HighJitterDelay(DelayModel):
    """Mostly-fast links that spike by hundreds of milliseconds.

    A two-mode mixture: with probability ``spike_probability`` the delay is
    drawn uniformly around ``spike_mean`` (a congested or rerouted path),
    otherwise from a Gamma base (a healthy Internet path).  Stresses timeout
    handling and desynchronises replicas far more than any stationary model
    with the same mean.
    """

    def __init__(
        self,
        base_mean: float = 0.02,
        spike_probability: float = 0.2,
        spike_mean: float = 0.5,
    ):
        if not 0 <= spike_probability <= 1:
            raise ConfigurationError("spike_probability must be within [0, 1]")
        if base_mean <= 0 or spike_mean <= 0:
            raise ConfigurationError("jitter delay means must be positive")
        self.base = GammaDelay(mean_seconds=base_mean)
        self.spike_probability = spike_probability
        self.spike = UniformDelay.from_mean(spike_mean)

    def sample(self, sender: ReplicaId, recipient: ReplicaId, rng: random.Random) -> float:
        if rng.random() < self.spike_probability:
            return self.spike.sample(sender, recipient, rng)
        return self.base.sample(sender, recipient, rng)

    def mean_delay(self) -> float:
        p = self.spike_probability
        return (1 - p) * self.base.mean_delay() + p * self.spike.mean_delay()


class LossyDelay(DelayModel):
    """A lossy network: a fraction of messages never arrives.

    The simulator has no drop hook in the delay path, so a loss is modelled as
    a delay beyond any simulation horizon (``drop_delay`` defaults to ~31
    years): the event stays queued but is never processed.  Protocols built on
    retransmission-free quorums (like the ones here) survive moderate loss
    because quorums only need ``2n/3 + 1`` of the ``n`` copies.
    """

    def __init__(
        self,
        base: Optional[DelayModel] = None,
        loss_rate: float = 0.05,
        drop_delay: float = 1e9,
    ):
        if not 0 <= loss_rate < 1:
            raise ConfigurationError("loss_rate must be within [0, 1)")
        if drop_delay <= 0:
            raise ConfigurationError("drop_delay must be positive")
        self.base = base or GammaDelay()
        self.loss_rate = loss_rate
        self.drop_delay = drop_delay

    def sample(self, sender: ReplicaId, recipient: ReplicaId, rng: random.Random) -> float:
        if rng.random() < self.loss_rate:
            return self.drop_delay
        return self.base.sample(sender, recipient, rng)

    def mean_delay(self) -> float:
        # The mean of *delivered* messages: drops never count as latency.
        return self.base.mean_delay()


class PartitionedDelay(DelayModel):
    """Attack-scenario delays: slow down honest cross-partition links only.

    Messages between honest replicas of *different* partitions use
    ``cross_partition``; every other pair (same partition, or any pair
    involving a deceitful replica) uses ``base``.  This matches the setup of
    §5.2: "Deceitful replicas communicate normally with each partition."
    """

    def __init__(
        self,
        base: DelayModel,
        cross_partition: DelayModel,
        partition: PartitionSpec,
    ):
        self.base = base
        self.cross_partition = cross_partition
        self.partition = partition

    def sample(self, sender: ReplicaId, recipient: ReplicaId, rng: random.Random) -> float:
        if self.partition.crosses_partitions(sender, recipient):
            return self.cross_partition.sample(sender, recipient, rng)
        return self.base.sample(sender, recipient, rng)

    def mean_delay(self) -> float:
        return self.base.mean_delay()


def delay_model_from_name(name: str) -> DelayModel:
    """Build the delay models the paper refers to by name.

    Accepted names: ``"aws"`` / ``"aws-like"``, ``"gamma"``, ``"200ms"``,
    ``"500ms"``, ``"1000ms"``, ``"5000ms"``, ``"10000ms"`` (uniform with that
    mean), ``"constant"``, ``"jitter"`` / ``"high-jitter"`` and ``"lossy"``.
    """
    key = name.strip().lower()
    if key in ("aws", "aws-like", "awslike"):
        return AwsRegionDelay()
    if key == "gamma":
        return GammaDelay()
    if key == "constant":
        return ConstantDelay()
    if key in ("jitter", "high-jitter", "highjitter"):
        return HighJitterDelay()
    if key == "lossy":
        return LossyDelay()
    if key.endswith("ms"):
        try:
            mean_ms = float(key[:-2])
        except ValueError:
            raise ConfigurationError(f"unknown delay model {name!r}") from None
        return UniformDelay.from_mean(mean_ms / 1000.0)
    raise ConfigurationError(f"unknown delay model {name!r}")
