"""The real-network transport: asyncio sockets behind the transport seam.

:class:`AsyncioTransport` implements the same :class:`~repro.network.transport.
Transport` surface as the discrete-event simulator, but over real I/O:

* **Sockets** — TCP or UNIX-domain stream sockets between OS processes (one
  listening endpoint per replica, one outgoing connection per peer).
* **Frames** — every envelope is encoded by :mod:`repro.network.codec` and
  written as a 4-byte big-endian length prefix plus payload; readers rebuild
  :class:`~repro.network.message.Message` objects on the far side.
* **Time** — ``now`` is the event loop's monotonic wall clock and timers are
  ``loop.call_later`` handles, so protocol timeouts are real seconds.

Protocol code is unchanged: a :class:`~repro.zlb.node.ZLBReplica` bound to
this transport runs the exact same ASMR/SBC/RBC stack it runs inside the
simulator.  Delivery stays single-threaded (everything happens on the event
loop), so the by-reference sharing assumptions *within* one process still
hold; across processes the codec produces equal, independently-verifiable
copies.

The observability seam mirrors the simulator's, across process boundaries:
a bound tracing runtime stamps the active :class:`~repro.tracing.core
.TraceContext` onto every outgoing envelope (``on_send``), the codec carries
it on the wire, deliveries open child spans under the decoded context, and
timer callbacks restore the context captured at ``schedule`` time — so one
payment's causal span tree crosses every worker process it touches.  A bound
obs runtime gets per-protocol-group message counts fed into its
:class:`~repro.obs.series.StreamingSampler` exactly like the simulator does.

The telemetry counters mirror the simulator's (``net.messages_sent``,
``net.bytes_sent``, ``net.messages_delivered``, ``net.messages_dropped``), so
snapshots from a real cluster and a simulated run line up column for column.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import struct
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.errors import SimulationError
from repro.common.logging import get_logger
from repro.common.types import ReplicaId
from repro.network.codec import (
    FRAME_HEADER_SIZE,
    MAX_FRAME_BYTES,
    CodecError,
    decode_message,
    frame_message,
)
from repro.network.message import Message
from repro.network.transport import Process, Transport
from repro.telemetry.core import protocol_group

log = get_logger("repro.net")

#: How often a blocked :meth:`AsyncioTransport.connect` retries a peer dial.
CONNECT_RETRY_S = 0.05


@dataclasses.dataclass(frozen=True)
class Endpoint:
    """Where a replica listens: a TCP address or a UNIX-domain socket path."""

    kind: str  # "tcp" | "uds"
    host: str = "127.0.0.1"
    port: int = 0
    path: str = ""

    @staticmethod
    def tcp(host: str, port: int) -> "Endpoint":
        return Endpoint(kind="tcp", host=host, port=port)

    @staticmethod
    def uds(path: str) -> "Endpoint":
        return Endpoint(kind="uds", path=path)

    def describe(self) -> str:
        if self.kind == "uds":
            return f"uds:{self.path}"
        return f"tcp:{self.host}:{self.port}"


class AsyncioTransport(Transport):
    """Wall-clock transport over asyncio TCP/UNIX-domain stream sockets.

    One instance is one node's network stack: it listens on its own
    :class:`Endpoint`, dials every peer in ``endpoints`` and serves whatever
    local :class:`Process` instances were added (normally exactly one
    replica).  Several transports can share one event loop — the in-process
    cluster tests run a whole committee that way — or live in separate OS
    processes (``python -m repro.cluster``).
    """

    def __init__(
        self,
        replica_id: ReplicaId,
        endpoints: Dict[ReplicaId, Endpoint],
        telemetry=None,
        tracing=None,
        obs=None,
    ):
        if replica_id not in endpoints:
            raise SimulationError(f"no endpoint declared for replica {replica_id}")
        self.replica_id = replica_id
        self.endpoints: Dict[ReplicaId, Endpoint] = dict(endpoints)
        self.telemetry = telemetry
        self.tracing = tracing
        self.obs = obs
        self._membership: Tuple[ReplicaId, ...] = tuple(sorted(endpoints))
        self._processes: Dict[ReplicaId, Process] = {}
        self._disconnected: Set[ReplicaId] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Dict[ReplicaId, asyncio.StreamWriter] = {}
        # Frames queued per peer until our outgoing dial to it completes.
        # Peers connect (and start sending) in arbitrary order, so a replica
        # can be asked to respond to a message before its own connect() loop
        # has reached the responder's peer; dropping those frames would stall
        # the broadcast protocols, buffering them preserves delivery.
        self._pending: Dict[ReplicaId, List[bytes]] = {
            peer: [] for peer in self._membership if peer != replica_id
        }
        self._dropped_peers: Set[ReplicaId] = set()
        self._readers: List[asyncio.Task] = []
        self._timer_ids = itertools.count()
        self._timers: Dict[int, asyncio.TimerHandle] = {}
        self._started = False
        self._closed = False
        # Observability counters (same meaning as the simulator's).
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    # -- membership ----------------------------------------------------------

    def add_process(self, process: Process) -> None:
        if process.replica_id in self._processes:
            raise SimulationError(f"replica {process.replica_id} already registered")
        process.bind(self)
        self._processes[process.replica_id] = process
        if self._started:
            process.on_start()

    def remove_process(self, replica_id: ReplicaId) -> None:
        self._processes.pop(replica_id, None)

    def membership_view(self) -> Tuple[ReplicaId, ...]:
        return self._membership

    def replica_ids(self) -> List[ReplicaId]:
        return list(self._membership)

    def disconnect(self, replica_id: ReplicaId) -> None:
        self._disconnected.add(replica_id)

    def reconnect(self, replica_id: ReplicaId) -> None:
        self._disconnected.discard(replica_id)

    def connected_peers(self) -> List[ReplicaId]:
        """Peers with a live outgoing connection (obs frames report these)."""
        return sorted(
            peer
            for peer, writer in self._writers.items()
            if not writer.is_closing()
        )

    # -- clock and timers ----------------------------------------------------

    @property
    def now(self) -> float:
        """Monotonic wall-clock seconds of the bound event loop."""
        loop = self._loop
        if loop is None:
            return 0.0
        return loop.time()

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        owner: Optional[ReplicaId] = None,
    ) -> int:
        if delay < 0:
            raise SimulationError("timer delay must be non-negative")
        loop = self._require_loop()
        timer_id = next(self._timer_ids)
        tracing = self.tracing
        # Capture the context active *now*, restore it around the firing —
        # same contract as the simulator's timer events, so delayed
        # continuations stay on their causal chain under real time too.
        ctx = tracing.tracer.current_ctx if tracing is not None else None

        def _fire() -> None:
            self._timers.pop(timer_id, None)
            try:
                if tracing is None:
                    callback()
                else:
                    tracing.fire_timer(callback, ctx, self.now, owner)
            except Exception:  # noqa: BLE001 - a timer must not kill the loop
                log.exception("timer callback failed at replica %s", owner)

        self._timers[timer_id] = loop.call_later(delay, _fire)
        return timer_id

    def cancel(self, timer_id: int) -> None:
        handle = self._timers.pop(timer_id, None)
        if handle is not None:
            handle.cancel()

    # -- lifecycle -----------------------------------------------------------

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise SimulationError("transport is not started (call start() first)")
        return self._loop

    async def start(self) -> None:
        """Bind the listening socket of this replica's endpoint."""
        self._loop = asyncio.get_running_loop()
        endpoint = self.endpoints[self.replica_id]
        if endpoint.kind == "uds":
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=endpoint.path
            )
        elif endpoint.kind == "tcp":
            self._server = await asyncio.start_server(
                self._handle_connection, host=endpoint.host, port=endpoint.port
            )
        else:
            raise SimulationError(f"unknown endpoint kind {endpoint.kind!r}")

    async def connect(self, timeout: float = 30.0) -> None:
        """Dial every peer, retrying until its listener is up or ``timeout``."""
        loop = self._require_loop()
        deadline = loop.time() + timeout
        for peer in self._membership:
            if peer == self.replica_id:
                continue
            endpoint = self.endpoints[peer]
            while True:
                try:
                    if endpoint.kind == "uds":
                        _, writer = await asyncio.open_unix_connection(endpoint.path)
                    else:
                        _, writer = await asyncio.open_connection(
                            endpoint.host, endpoint.port
                        )
                    self._writers[peer] = writer
                    for frame in self._pending.pop(peer, ()):
                        writer.write(frame)
                    break
                except (ConnectionError, FileNotFoundError, OSError):
                    if loop.time() >= deadline:
                        raise SimulationError(
                            f"replica {self.replica_id} could not reach peer "
                            f"{peer} at {endpoint.describe()} within {timeout}s"
                        )
                    await asyncio.sleep(CONNECT_RETRY_S)

    def start_processes(self) -> None:
        """Run every local process's ``on_start`` hook (once)."""
        if not self._started:
            self._started = True
            for replica_id in sorted(self._processes):
                self._processes[replica_id].on_start()

    async def close(self) -> None:
        """Tear down timers, connections and the listener (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._pending.clear()
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        for task in self._readers:
            task.cancel()
        for writer in self._writers.values():
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- sending -------------------------------------------------------------

    def _count_sent(self, message: Message, count: int) -> None:
        self.messages_sent += count
        self.bytes_sent += message.size_bytes() * count
        telemetry = self.telemetry
        if telemetry is not None:
            group = protocol_group(message.topic)
            telemetry.counter(
                "net.messages_sent", protocol=group, kind=message.kind
            ).inc(count)
            telemetry.counter(
                "net.bytes_sent", protocol=group, kind=message.kind
            ).inc(message.size_bytes() * count)
        tracing = self.tracing
        if tracing is not None:
            # Stamps the active trace context onto the envelope (the codec
            # then carries it across the socket) and records the send.
            tracing.on_send(message, self.now)
        obs = self.obs
        if obs is not None:
            obs.sampler.count_message(protocol_group(message.topic), count)

    def _count_dropped(self, count: int = 1) -> None:
        self.messages_dropped += count
        if self.telemetry is not None:
            self.telemetry.counter("net.messages_dropped").inc(count)

    def _write_frame(self, recipient: ReplicaId, frame: bytes) -> bool:
        writer = self._writers.get(recipient)
        if writer is None:
            pending = self._pending.get(recipient)
            if pending is not None:
                pending.append(frame)
                return True
        if writer is None or writer.is_closing():
            if recipient not in self._dropped_peers:
                self._dropped_peers.add(recipient)
                log.warning(
                    "replica %s dropping frames to peer %s (%s)",
                    self.replica_id,
                    recipient,
                    "never connected" if writer is None else "connection closed",
                )
            return False
        writer.write(frame)
        return True

    def _deliver_local(self, message: Message) -> None:
        if self._closed:
            return
        if message.recipient in self._disconnected:
            self._count_dropped()
            return
        process = self._processes.get(message.recipient)
        if process is None:
            self._count_dropped()
            return
        self._dispatch(process, message)

    def _dispatch(self, process: Process, message: Message) -> None:
        self.messages_delivered += 1
        if self.telemetry is not None:
            self.telemetry.counter("net.messages_delivered").inc()
        try:
            if self.tracing is None:
                process.on_message(message)
            else:
                self.tracing.deliver(process, message, self.now)
        except Exception:  # noqa: BLE001 - a bad message must not kill the loop
            log.exception(
                "replica %s failed handling %s", process.replica_id, message.describe()
            )

    def submit(self, message: Message) -> None:
        """Send a point-to-point message (local loopback or socket frame)."""
        self._count_sent(message, 1)
        if (
            message.sender in self._disconnected
            or message.recipient in self._disconnected
        ):
            self._count_dropped()
            return
        if message.recipient in self._processes:
            # Local delivery stays asynchronous (never re-entrant from send),
            # matching the simulator's queue semantics.
            self._require_loop().call_soon(self._deliver_local, message)
            return
        if not self._write_frame(message.recipient, frame_message(message)):
            self._count_dropped()

    def submit_broadcast(self, message: Message, targets: Sequence[ReplicaId]) -> None:
        """Fan a broadcast envelope out to every target.

        The frame is encoded once (with ``recipient`` unset — receivers stamp
        themselves) and written to each remote peer; local targets get a
        recipient-stamped copy of the envelope through the loopback path.
        """
        count = len(targets)
        if count == 0:
            return
        self._count_sent(message, count)
        if message.sender in self._disconnected:
            self._count_dropped(count)
            return
        frame: Optional[bytes] = None
        loop = self._require_loop()
        for target in targets:
            if target in self._disconnected:
                self._count_dropped()
                continue
            if target in self._processes:
                loop.call_soon(self._deliver_local, message.with_recipient(target))
                continue
            if frame is None:
                frame = frame_message(message)
            if not self._write_frame(target, frame):
                self._count_dropped()

    # -- receiving -----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._readers.append(task)
        try:
            while True:
                header = await reader.readexactly(FRAME_HEADER_SIZE)
                (length,) = struct.unpack(">I", header)
                if length > MAX_FRAME_BYTES:
                    log.warning(
                        "replica %s dropping oversized frame (%d bytes)",
                        self.replica_id,
                        length,
                    )
                    break
                payload = await reader.readexactly(length)
                try:
                    message = decode_message(payload)
                except CodecError:
                    log.exception(
                        "replica %s received an undecodable frame", self.replica_id
                    )
                    self._count_dropped()
                    continue
                if message.recipient is None:
                    message.recipient = self.replica_id
                self._deliver_local(message)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # peer went away — crash detection is the launcher's job
        except asyncio.CancelledError:
            pass  # transport closing — reader tasks end quietly
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
