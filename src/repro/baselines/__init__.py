"""Baseline protocols the paper compares against (§5.1).

* :mod:`repro.baselines.hotstuff` — the leader-based SMR at the heart of
  Facebook Libra: linear communication, one proposal per consensus instance.
* :mod:`repro.baselines.redbelly` — the Red Belly Blockchain: SBC without
  accountability, the fastest of the compared systems but unable to tolerate
  ``f >= n/3``.
* :mod:`repro.baselines.polygraph_chain` — a blockchain on Polygraph's
  accountable consensus: it detects deceitful replicas after a disagreement
  but, unlike ZLB, never excludes them nor merges the branches, so it cannot
  recover.
"""

from repro.baselines.hotstuff import HotStuffReplica, HotStuffCluster
from repro.baselines.redbelly import RedBellyReplica, RedBellyCluster
from repro.baselines.polygraph_chain import PolygraphReplica, PolygraphCluster

__all__ = [
    "HotStuffReplica",
    "HotStuffCluster",
    "RedBellyReplica",
    "RedBellyCluster",
    "PolygraphReplica",
    "PolygraphCluster",
]
