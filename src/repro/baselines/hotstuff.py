"""HotStuff: leader-based BFT SMR with linear communication (baseline).

This is the chained ("pipelined") HotStuff of Yin et al. [63], reduced to what
the comparison of §5.1 needs:

* a rotating leader proposes one block per view, extending the block carrying
  the highest known quorum certificate (QC);
* replicas send their (signed) vote for the proposal to the *next* leader;
* the next leader assembles a QC from ``n − f`` votes and embeds it in its own
  proposal — the linear communication pattern that gives HotStuff its name;
* a block commits once it heads a *three-chain*: three blocks with consecutive
  views, each certified by the next (the classic HotStuff commit rule).

One proposal is decided per view regardless of how many transactions clients
submitted — the structural reason HotStuff's throughput does not grow with the
committee size in Figure 3.

View synchronisation relies on the leader's proposal reaching every replica;
there is no view-change sub-protocol because the baseline is only exercised
with honest leaders (the paper benchmarks HotStuff at ``f = 0``).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import SimulationConfig
from repro.common.types import FaultKind, ReplicaId, quorum_size
from repro.crypto.hashing import hash_payload
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SignedPayload, Signer
from repro.network.delays import DelayModel, ConstantDelay
from repro.network.message import Message
from repro.network.router import RoutedProcess
from repro.network.simulator import NetworkSimulator
from repro.network.topic import Topic, topic


@dataclasses.dataclass
class HotStuffBlock:
    """A block proposed in one HotStuff view."""

    view: int
    parent_hash: str
    payload: Any
    justify_view: int

    @property
    def block_hash(self) -> str:
        return hash_payload(
            {
                "view": self.view,
                "parent": self.parent_hash,
                "payload_digest": hash_payload(self.payload),
                "justify": self.justify_view,
            }
        )


GENESIS_HASH = "0" * 64

#: Every HotStuff message travels under this topic.
HOTSTUFF_TOPIC = topic("hotstuff")


class HotStuffReplica(RoutedProcess):
    """One HotStuff replica (leader duties rotate by view number)."""

    PROPOSAL = "PROPOSAL"
    VOTE = "VOTE"

    def __init__(
        self,
        replica_id: ReplicaId,
        committee: Sequence[ReplicaId],
        signer: Signer,
        registry: KeyRegistry,
        batch_size: int = 100,
        fault: FaultKind = FaultKind.HONEST,
    ):
        super().__init__(replica_id)
        self.router.register(HOTSTUFF_TOPIC, self._route)
        self._kind_handlers = {
            self.PROPOSAL: self._handle_proposal,
            self.VOTE: self._handle_vote,
        }
        self.committee = sorted(committee)
        self.signer = signer
        self.registry = registry
        self.batch_size = batch_size
        self.fault = fault
        self.view = 0
        self.max_views = 0
        self.pending_payloads: List[Any] = []
        # view -> block proposed in that view (as seen locally).
        self.blocks: Dict[int, HotStuffBlock] = {}
        # view -> {voter: signed vote} collected by the next leader.
        self._votes: Dict[int, Dict[ReplicaId, SignedPayload]] = {}
        self.high_qc_view = -1
        self.high_qc_block = GENESIS_HASH
        self.committed: List[HotStuffBlock] = []
        self.committed_views: List[int] = []

    # -- helpers -------------------------------------------------------------------

    def leader_of(self, view: int) -> ReplicaId:
        """Round-robin leader election."""
        return self.committee[view % len(self.committee)]

    def quorum(self) -> int:
        return quorum_size(len(self.committee))

    def submit_payload(self, payload: Any) -> None:
        """Queue a client batch to be proposed when this replica leads."""
        self.pending_payloads.append(payload)

    def submit_views(self, count: int) -> None:
        """Allow the protocol to run ``count`` more views."""
        self.max_views += count
        if self._transport is not None:
            self._maybe_propose()

    def on_start(self) -> None:
        self._maybe_propose()

    # -- leader side -----------------------------------------------------------------

    def _maybe_propose(self) -> None:
        if self.fault is FaultKind.BENIGN:
            return
        if self.view >= self.max_views:
            return
        if self.leader_of(self.view) != self.replica_id:
            return
        if self.view in self.blocks:
            return
        payload = (
            self.pending_payloads.pop(0)
            if self.pending_payloads
            else {"view": self.view, "empty": True}
        )
        block = HotStuffBlock(
            view=self.view,
            parent_hash=self.high_qc_block,
            payload=payload,
            justify_view=self.high_qc_view,
        )
        self.blocks[self.view] = block
        body = {
            "view": block.view,
            "parent_hash": block.parent_hash,
            "payload": block.payload,
            "justify_view": block.justify_view,
        }
        self.broadcast(HOTSTUFF_TOPIC, self.PROPOSAL, body, recipients=self.committee)

    # -- replica side --------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if self.fault is FaultKind.BENIGN:
            return
        super().on_message(message)

    def _route(self, message_topic: Topic, sender: ReplicaId, kind: str, body: Dict[str, Any]) -> None:
        handler = self._kind_handlers.get(kind)
        if handler is not None:
            handler(sender, body)

    def _handle_proposal(self, sender: ReplicaId, body: Dict[str, Any]) -> None:
        view = int(body.get("view", -1))
        if view < 0 or self.leader_of(view) != sender:
            return
        block = HotStuffBlock(
            view=view,
            parent_hash=body.get("parent_hash", GENESIS_HASH),
            payload=body.get("payload"),
            justify_view=int(body.get("justify_view", -1)),
        )
        self.blocks[view] = block
        if view > self.view:
            self.view = view
        # Vote: send a signed vote to the leader of the next view.
        vote_payload = {"view": view, "block": block.block_hash}
        signed = self.signer.sign(vote_payload)
        next_leader = self.leader_of(view + 1)
        self.send_to(
            next_leader,
            HOTSTUFF_TOPIC,
            self.VOTE,
            {"view": view, "block": block.block_hash, "vote": signed.to_payload()},
        )
        self._check_commit(view)

    def _handle_vote(self, sender: ReplicaId, body: Dict[str, Any]) -> None:
        view = int(body.get("view", -1))
        payload = body.get("vote")
        if view < 0 or payload is None:
            return
        signed = SignedPayload(
            signer=payload["signer"],
            payload_hash=payload["payload_hash"],
            signature=payload["signature"],
            scheme=payload["scheme"],
        )
        block_hash = body.get("block")
        if not self.registry.verify({"view": view, "block": block_hash}, signed):
            return
        votes = self._votes.setdefault(view, {})
        votes[sender] = signed
        if len(votes) >= self.quorum() and view >= self.high_qc_view:
            # A quorum certificate for `view` forms; the next view can start.
            self.high_qc_view = view
            self.high_qc_block = block_hash or GENESIS_HASH
            self.view = max(self.view, view + 1)
            self._maybe_propose()

    # -- commit rule -------------------------------------------------------------------------

    def _check_commit(self, view: int) -> None:
        """Commit the tail of a three-chain with consecutive views."""
        block = self.blocks.get(view)
        if block is None:
            return
        parent_view = block.justify_view
        grandparent_block = self.blocks.get(parent_view)
        if grandparent_block is None or parent_view != view - 1:
            return
        great_view = grandparent_block.justify_view
        if great_view != parent_view - 1:
            return
        commit_block = self.blocks.get(great_view)
        if commit_block is None or great_view in self.committed_views:
            return
        self.committed_views.append(great_view)
        self.committed.append(commit_block)


class HotStuffCluster:
    """A HotStuff deployment on the simulator, mirroring ZLBSystem's shape."""

    def __init__(
        self,
        n: int,
        delay: Optional[DelayModel] = None,
        seed: int = 0,
        batch_size: int = 100,
    ):
        self.keys = KeyRegistry.provision(range(n))
        self.simulator = NetworkSimulator(
            delay_model=delay or ConstantDelay(0.02),
            config=SimulationConfig(seed=seed),
        )
        self.replicas: List[HotStuffReplica] = []
        committee = list(range(n))
        for replica_id in committee:
            replica = HotStuffReplica(
                replica_id=replica_id,
                committee=committee,
                signer=self.keys.signer_for(replica_id),
                registry=self.keys.registry,
                batch_size=batch_size,
            )
            self.simulator.add_process(replica)
            self.replicas.append(replica)

    def submit_payloads(self, payloads: Sequence[Any]) -> None:
        """Distribute client batches to the replicas that will lead views."""
        for index, payload in enumerate(payloads):
            leader = self.replicas[index % len(self.replicas)]
            leader.submit_payload(payload)

    def run_views(self, count: int, until: Optional[float] = None) -> None:
        for replica in self.replicas:
            replica.submit_views(count)
        self.simulator.run(until=until)

    def committed_views(self) -> List[List[int]]:
        """Committed view numbers per replica (prefix-consistent across honest)."""
        return [list(replica.committed_views) for replica in self.replicas]
