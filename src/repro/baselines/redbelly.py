"""Red Belly Blockchain baseline: SBC-based blockchain without accountability.

Red Belly [20] solves the same Set Byzantine Consensus as ZLB and therefore
also decides up to ``n`` proposals per instance, but it does not make replicas
accountable: no certificates are cross-checked, no proofs of fraud are
gathered, there is no confirmation phase and no membership change.  It is the
fastest of the compared systems (Fig. 3) and is safe only while ``f < n/3``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.common.config import ProtocolConfig, SimulationConfig
from repro.common.types import FaultKind, ReplicaId
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signer
from repro.ledger.workload import TransferWorkload
from repro.network.delays import ConstantDelay, DelayModel
from repro.network.simulator import NetworkSimulator
from repro.smr.asmr import ASMRReplica
from repro.zlb.blockchain_manager import BlockchainManager


class RedBellyReplica(ASMRReplica):
    """An SBC blockchain replica with the accountability machinery disabled."""

    def __init__(self, *args: Any, blockchain: BlockchainManager, **kwargs: Any):
        self.blockchain = blockchain
        kwargs.setdefault(
            "config",
            ProtocolConfig(
                batch_size=blockchain.batch_size, confirmation_enabled=False
            ),
        )
        kwargs.setdefault("proposal_factory", blockchain.next_proposal)
        kwargs.setdefault("proposal_validator", blockchain.validate_proposal)
        kwargs.setdefault("on_commit", blockchain.commit_decision)
        super().__init__(*args, **kwargs)

    # Red Belly never recovers from a disagreement: it assumes f < n/3 and has
    # no exclusion/inclusion machinery to invoke.
    def _maybe_start_membership_change(self) -> None:  # noqa: D401
        return


class RedBellyCluster:
    """A Red Belly deployment on the simulator."""

    def __init__(
        self,
        n: int,
        delay: Optional[DelayModel] = None,
        seed: int = 0,
        batch_size: int = 50,
        workload_accounts: int = 16,
        workload_transactions: int = 100,
    ):
        self.keys = KeyRegistry.provision(range(n))
        self.simulator = NetworkSimulator(
            delay_model=delay or ConstantDelay(0.02),
            config=SimulationConfig(seed=seed),
        )
        self.workload = TransferWorkload(num_accounts=workload_accounts, seed=seed)
        self.replicas: List[RedBellyReplica] = []
        committee = list(range(n))
        for replica_id in committee:
            blockchain = BlockchainManager(
                replica_id=replica_id,
                genesis_allocations=self.workload.genesis_allocations,
                batch_size=batch_size,
            )
            replica = RedBellyReplica(
                replica_id,
                committee,
                self.keys.signer_for(replica_id),
                self.keys.registry,
                blockchain=blockchain,
            )
            self.simulator.add_process(replica)
            self.replicas.append(replica)
        if workload_transactions:
            self.submit_workload(workload_transactions)

    def submit_workload(self, count: int) -> None:
        """Spread client transfers across the replicas' mempools."""
        for index, transaction in enumerate(self.workload.batch(count)):
            self.replicas[index % len(self.replicas)].blockchain.submit_transaction(
                transaction
            )

    def run_instances(self, count: int, until: Optional[float] = None) -> None:
        for replica in self.replicas:
            replica.submit_instances(count)
        self.simulator.run(until=until)

    def chain_heights(self) -> List[int]:
        return [replica.blockchain.chain_height() for replica in self.replicas]

    def committed_transactions(self) -> List[int]:
        return [replica.blockchain.transactions_committed for replica in self.replicas]
