"""Polygraph blockchain baseline: accountable consensus without recovery.

Polygraph [15] provides accountable consensus: after a disagreement honest
replicas eventually hold proofs of fraud incriminating at least ``n/3``
replicas.  Unlike ZLB it stops there — there is no membership change to
exclude the culprits, no block merge to reconcile the branches and therefore
no recovery: once safety is violated the fork persists (§6: "this blockchain
does not tolerate more than n/3 failures as it cannot recover after
detection").
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.common.config import ProtocolConfig, SimulationConfig
from repro.common.types import FaultKind, ReplicaId
from repro.crypto.keys import KeyRegistry
from repro.ledger.workload import TransferWorkload
from repro.network.delays import ConstantDelay, DelayModel, PartitionedDelay
from repro.network.simulator import NetworkSimulator
from repro.adversary.attacks import BinaryConsensusAttack
from repro.adversary.coalition import CoalitionPlan
from repro.common.config import FaultConfig
from repro.smr.asmr import ASMRReplica
from repro.zlb.blockchain_manager import BlockchainManager


class PolygraphReplica(ASMRReplica):
    """Accountable blockchain replica that detects but never excludes."""

    def __init__(self, *args: Any, blockchain: BlockchainManager, **kwargs: Any):
        self.blockchain = blockchain
        kwargs.setdefault(
            "config", ProtocolConfig(batch_size=blockchain.batch_size)
        )
        kwargs.setdefault("proposal_factory", blockchain.next_proposal)
        kwargs.setdefault("proposal_validator", blockchain.validate_proposal)
        kwargs.setdefault("on_commit", blockchain.commit_decision)
        super().__init__(*args, **kwargs)

    # Polygraph detects deceitful replicas (the PoF machinery stays active and
    # `detected_at` gets set) but has no membership change to run.
    def _maybe_start_membership_change(self) -> None:  # noqa: D401
        return


class PolygraphCluster:
    """A Polygraph-blockchain deployment, optionally under the binary attack."""

    def __init__(
        self,
        fault_config: FaultConfig,
        delay: Optional[DelayModel] = None,
        cross_partition_delay: Optional[DelayModel] = None,
        seed: int = 0,
        batch_size: int = 50,
        workload_transactions: int = 100,
    ):
        n = fault_config.n
        self.fault_config = fault_config
        self.plan = CoalitionPlan.from_fault_config(fault_config)
        base_delay = delay or ConstantDelay(0.02)
        if cross_partition_delay is not None and fault_config.deceitful:
            delay_model: DelayModel = PartitionedDelay(
                base=base_delay,
                cross_partition=cross_partition_delay,
                partition=self.plan.partition,
            )
        else:
            delay_model = base_delay
        self.keys = KeyRegistry.provision(range(n))
        self.simulator = NetworkSimulator(
            delay_model=delay_model, config=SimulationConfig(seed=seed)
        )
        self.workload = TransferWorkload(num_accounts=16, seed=seed)
        strategy = (
            BinaryConsensusAttack(self.plan) if fault_config.deceitful else None
        )
        self.replicas: List[PolygraphReplica] = []
        committee = list(range(n))
        for replica_id in committee:
            blockchain = BlockchainManager(
                replica_id=replica_id,
                genesis_allocations=self.workload.genesis_allocations,
                batch_size=batch_size,
            )
            replica = PolygraphReplica(
                replica_id,
                committee,
                self.keys.signer_for(replica_id),
                self.keys.registry,
                blockchain=blockchain,
                fault=self.plan.fault_of(replica_id),
            )
            if self.plan.fault_of(replica_id) is FaultKind.DECEITFUL and strategy:
                replica.attack_strategy = strategy
            self.simulator.add_process(replica)
            self.replicas.append(replica)
        if workload_transactions:
            for index, transaction in enumerate(self.workload.batch(workload_transactions)):
                self.replicas[index % n].blockchain.submit_transaction(transaction)

    def run_instances(self, count: int, until: Optional[float] = None) -> None:
        for replica in self.replicas:
            if replica.fault is not FaultKind.BENIGN:
                replica.submit_instances(count)
        self.simulator.run(until=until)

    def honest_replicas(self) -> List[PolygraphReplica]:
        return [r for r in self.replicas if r.fault is FaultKind.HONEST]

    def detection_times(self) -> List[float]:
        """Detection times of honest replicas that identified >= n/3 culprits."""
        return [
            r.detected_at for r in self.honest_replicas() if r.detected_at is not None
        ]

    def chain_digests(self) -> List[str]:
        """Digest of each honest replica's chain head (diverges after a fork)."""
        digests = []
        for replica in self.honest_replicas():
            digests.append(replica.blockchain.record.head_hash)
        return digests
