"""Local HTTP endpoint exposing live sweep state.

``python -m repro.scenarios sweep --watch --serve PORT`` starts a
:class:`WatchServer` next to the terminal watcher: ``GET /metrics`` returns
the sweep state as Prometheus text format, ``GET /state`` as JSON.  The
server binds loopback only, runs on a daemon thread, and reads the same
watcher object the terminal renders from — it adds no publishers, no extra
queues and no load on the workers.

The watcher is duck-typed: anything with thread-safe ``prometheus_text()``
and ``state()`` methods serves — :class:`~repro.obs.watch.SweepWatcher` for
simulator sweeps, :class:`~repro.cluster.watch.ClusterWatcher` for real
clusters (``python -m repro.cluster --serve PORT``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional


class _WatchHandler(BaseHTTPRequestHandler):
    watcher: Any  # set on the handler subclass by WatchServer

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/metrics":
            body = self.watcher.prometheus_text().encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif self.path in ("/state", "/"):
            body = (
                json.dumps(self.watcher.state(), indent=2, sort_keys=True) + "\n"
            ).encode("utf-8")
            content_type = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics or /state)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep the watcher's terminal table clean


class WatchServer:
    """Loopback HTTP server publishing a watcher's state."""

    def __init__(self, watcher: Any, port: int, host: str = "127.0.0.1"):
        handler = type("BoundWatchHandler", (_WatchHandler,), {"watcher": watcher})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        return self._server.server_address[1]

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="obs-serve",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
