"""Live observability: streaming series, host-CPU profiling, watch & SLO gates.

The third zero-overhead-when-disabled pillar next to :mod:`repro.telemetry`
(end-of-run aggregates) and :mod:`repro.tracing` (causal spans): while a run
*executes*, the obs runtime streams time-series samples into bounded ring
buffers, attributes host CPU time to topic-prefix/phase buckets, publishes
per-cell progress to a live sweep watcher and feeds the declarative SLO gates
that guard whole scenario families in CI.

Everything is observational: the runtime consumes no randomness and schedules
nothing, so fixed-seed runs are byte-identical with obs on or off.
"""

from repro.obs.core import ObsRuntime, activate, current, current_profiler
from repro.obs.gates import SLO, GateCheck, GateReport
from repro.obs.profiler import HostProfiler
from repro.obs.series import StreamingSampler

__all__ = [
    "ObsRuntime",
    "activate",
    "current",
    "current_profiler",
    "HostProfiler",
    "StreamingSampler",
    "SLO",
    "GateCheck",
    "GateReport",
]
