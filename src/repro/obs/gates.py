"""Declarative SLO gates over streamed observability series.

A scenario family declares its service-level objectives right next to its
``@scenario`` registration::

    @scenario("fig4-recovery", ..., slo=SLO(min_events_per_sec=2_000,
                                            max_p99_commit_s=120.0,
                                            max_host_seconds=120.0))

Gate evaluation reads the result store: host seconds come from the
``wall_clock_s`` every record carries; event rate and commit-latency p99 come
from the obs snapshot persisted next to obs-enabled records.  Cells recorded
without obs are reported as *skipped* for rate/latency objectives — never
silently passed — so a gate run states exactly what it did and did not check.

``python -m repro.scenarios report --gate`` renders the checks and exits
non-zero on any breach, which is what lets CI fail the build when a family
regresses below its floor.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: metric name -> (record extractor description, comparison direction)
#: ``min`` metrics breach when observed < limit, ``max`` when observed > limit.
_METRIC_DIRECTION = {
    "min_events_per_sec": "min",
    "max_p99_commit_s": "max",
    "max_host_seconds": "max",
}


@dataclasses.dataclass(frozen=True)
class SLO:
    """Per-family objectives; ``None`` fields are simply not checked."""

    min_events_per_sec: Optional[float] = None
    max_p99_commit_s: Optional[float] = None
    max_host_seconds: Optional[float] = None

    def checks(self) -> List[Tuple[str, float, str]]:
        """Declared objectives as ``(metric, limit, direction)`` triples."""
        out = []
        for metric, direction in _METRIC_DIRECTION.items():
            limit = getattr(self, metric)
            if limit is not None:
                out.append((metric, float(limit), direction))
        return out

    def merged(self, overrides: Mapping[str, float]) -> "SLO":
        """A copy with ``overrides`` (metric name -> limit) applied."""
        unknown = set(overrides) - set(_METRIC_DIRECTION)
        if unknown:
            raise ValueError(
                f"unknown SLO metric(s) {sorted(unknown)}; "
                f"known: {sorted(_METRIC_DIRECTION)}"
            )
        return dataclasses.replace(self, **dict(overrides))


@dataclasses.dataclass
class GateCheck:
    """One objective evaluated against one recorded cell."""

    family: str
    cell: str
    metric: str
    limit: float
    observed: Optional[float]
    status: str  # "pass" | "breach" | "skipped"
    reason: str = ""


@dataclasses.dataclass
class GateReport:
    """All checks of one gate run, plus the breach verdict."""

    checks: List[GateCheck]

    @property
    def breaches(self) -> List[GateCheck]:
        return [check for check in self.checks if check.status == "breach"]

    @property
    def skipped(self) -> List[GateCheck]:
        return [check for check in self.checks if check.status == "skipped"]

    @property
    def ok(self) -> bool:
        return not self.breaches


def _observed_value(record: Dict[str, Any], metric: str) -> Tuple[Optional[float], str]:
    """Extract the observed value for ``metric``, or (None, why-skipped)."""
    if metric == "max_host_seconds":
        return float(record.get("wall_clock_s", 0.0)), ""
    obs = record.get("obs")
    if not obs:
        return None, "no obs snapshot recorded (re-run with --obs)"
    if metric == "min_events_per_sec":
        totals = obs.get("totals", {})
        rate = totals.get("events_per_sec")
        if rate is None:
            return None, "obs snapshot has no event-rate totals"
        return float(rate), ""
    if metric == "max_p99_commit_s":
        quantiles = obs.get("quantiles", {})
        commit = quantiles.get("commit_latency_s")
        if not commit or not commit.get("count"):
            return None, "no commit-latency observations in obs snapshot"
        return float(commit["p99"]), ""
    raise ValueError(f"unknown SLO metric {metric!r}")


def evaluate_record(family: str, record: Dict[str, Any], slo: SLO) -> List[GateCheck]:
    """Evaluate every declared objective of ``slo`` against one store record."""
    cell = record.get("label") or record.get("hash", "?")
    checks: List[GateCheck] = []
    for metric, limit, direction in slo.checks():
        observed, skip_reason = _observed_value(record, metric)
        if observed is None:
            checks.append(
                GateCheck(family, cell, metric, limit, None, "skipped", skip_reason)
            )
            continue
        breached = observed < limit if direction == "min" else observed > limit
        checks.append(
            GateCheck(
                family,
                cell,
                metric,
                limit,
                observed,
                "breach" if breached else "pass",
            )
        )
    return checks


def evaluate_records(
    families: Mapping[str, SLO],
    records: Iterable[Dict[str, Any]],
) -> GateReport:
    """Evaluate each record against its family's SLO (records carry a
    ``family`` field; families without a declared SLO are not checked)."""
    checks: List[GateCheck] = []
    for record in records:
        family = record.get("family", "")
        slo = families.get(family)
        if slo is None:
            continue
        checks.extend(evaluate_record(family, record, slo))
    return GateReport(checks)


def parse_slo_overrides(items: Iterable[str]) -> Dict[str, Dict[str, float]]:
    """Parse repeated ``FAMILY:METRIC=VALUE`` CLI overrides.

    Returns family -> {metric: limit}.  Used to tighten (or inject) an
    objective from the command line, e.g. to prove in CI that a violated
    gate really breaks the build::

        report --gate --slo fig4-recovery:min_events_per_sec=1e12
    """
    overrides: Dict[str, Dict[str, float]] = {}
    for item in items:
        family, sep, rest = item.partition(":")
        metric, eq, value = rest.partition("=")
        if not sep or not eq or not family or not metric:
            raise ValueError(
                f"malformed SLO override {item!r}; expected FAMILY:METRIC=VALUE"
            )
        if metric not in _METRIC_DIRECTION:
            raise ValueError(
                f"unknown SLO metric {metric!r}; known: {sorted(_METRIC_DIRECTION)}"
            )
        overrides.setdefault(family, {})[metric] = float(value)
    return overrides


def render_gate_report(report: GateReport) -> str:
    """Human-readable gate table plus the one-line verdict."""
    if not report.checks:
        return "SLO gate: no checks ran (no recorded cells match a family with an SLO)"
    lines = []
    header = (
        f"{'status':<8} {'family':<18} {'cell':<36} "
        f"{'metric':<22} {'limit':>12} {'observed':>12}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for check in report.checks:
        observed = f"{check.observed:.4g}" if check.observed is not None else "-"
        lines.append(
            f"{check.status:<8} {check.family:<18} {check.cell[:36]:<36} "
            f"{check.metric:<22} {check.limit:>12.4g} {observed:>12}"
        )
        if check.reason:
            lines.append(f"{'':8} ^ {check.reason}")
    verdict = (
        f"SLO gate: {len(report.breaches)} breach(es), "
        f"{len(report.skipped)} skipped, "
        f"{len(report.checks) - len(report.breaches) - len(report.skipped)} passed"
    )
    lines.append(verdict)
    return "\n".join(lines)
