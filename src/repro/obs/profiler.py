"""Deterministic host-CPU profiler with per-bucket self/cumulative time.

The profiler is a tiny explicit-instrumentation stack, not a sampling
profiler: instrumented sites call :meth:`HostProfiler.enter` /
:meth:`HostProfiler.exit` (or the :meth:`HostProfiler.section` context
manager) around a *bucket* — a topic-prefix such as ``dispatch:sbc:rbc``, or
a named phase such as ``sim.kernel``, ``timer``, ``crypto.verify`` or
``ledger.merge``.  Each bucket accumulates

* **cumulative** nanoseconds — wall time with the bucket anywhere on the
  stack, children included;
* **self** nanoseconds — cumulative minus time attributed to nested
  sections, so the per-bucket self times of one run partition its measured
  wall time exactly;
* a **call count**.

Because the measured quantity is ``time.perf_counter_ns`` around explicit
brackets, the instrumentation consumes no randomness, installs no signal
handlers and never interferes with simulation order: fixed-seed runs are
byte-identical with profiling on or off.

The simulator wraps its whole event loop in a ``sim.kernel`` section, so the
kernel's *self* time is exactly the scheduling overhead (heap ops, delivery
bookkeeping) left over after dispatch/timer/ledger children claimed theirs —
which is what lets a report attribute ~all of a run's host CPU to named
buckets instead of an anonymous remainder.
"""

from __future__ import annotations

import contextlib
import json
from time import perf_counter_ns
from typing import Any, Dict, Iterator, List, Optional


class HostProfiler:
    """Accumulates self/cumulative ``perf_counter_ns`` per named bucket."""

    __slots__ = ("_self_ns", "_cum_ns", "_calls", "_stack", "_root_ns")

    def __init__(self) -> None:
        self._self_ns: Dict[str, int] = {}
        self._cum_ns: Dict[str, int] = {}
        self._calls: Dict[str, int] = {}
        # Stack frames are [bucket, start_ns, child_ns] lists; child_ns is
        # mutated in place by exiting children.
        self._stack: List[List[Any]] = []
        # Wall time spent inside root-level sections (empty stack on entry):
        # the profiler's measured share of the process, used as the
        # attribution numerator in reports.
        self._root_ns = 0

    # -- hot-path bracket ------------------------------------------------------

    def enter(self, bucket: str) -> None:
        self._stack.append([bucket, perf_counter_ns(), 0])

    def exit(self) -> None:
        bucket, start_ns, child_ns = self._stack.pop()
        elapsed = perf_counter_ns() - start_ns
        cum = self._cum_ns
        if bucket in cum:
            cum[bucket] += elapsed
            self._self_ns[bucket] += elapsed - child_ns
            self._calls[bucket] += 1
        else:
            cum[bucket] = elapsed
            self._self_ns[bucket] = elapsed - child_ns
            self._calls[bucket] = 1
        if self._stack:
            self._stack[-1][2] += elapsed
        else:
            self._root_ns += elapsed

    @contextlib.contextmanager
    def section(self, bucket: str) -> Iterator[None]:
        """Bracket the enclosed block as ``bucket`` (exception-safe)."""
        self.enter(bucket)
        try:
            yield
        finally:
            self.exit()

    # -- reporting -------------------------------------------------------------

    def measured_ns(self) -> int:
        """Total wall nanoseconds inside root-level sections."""
        return self._root_ns

    def report(
        self, top: Optional[int] = None, wall_ns: Optional[int] = None
    ) -> Dict[str, Any]:
        """Top-N attribution report, sorted by self time descending.

        ``wall_ns`` — when given (e.g. the enclosing cell's wall time) — sets
        the denominator of ``attributed_pct``: the share of that wall time
        the profiler saw inside root-level sections.  Without it, the
        measured time itself is the denominator and the share is 1.0 by
        construction.
        """
        buckets = []
        for bucket in sorted(
            self._self_ns, key=lambda name: self._self_ns[name], reverse=True
        ):
            buckets.append(
                {
                    "bucket": bucket,
                    "calls": self._calls[bucket],
                    "self_ms": self._self_ns[bucket] / 1e6,
                    "cum_ms": self._cum_ns[bucket] / 1e6,
                }
            )
        total_self_ns = sum(self._self_ns.values())
        if total_self_ns > 0:
            for row in buckets:
                row["self_pct"] = row["self_ms"] * 1e6 / total_self_ns
        denominator = wall_ns if wall_ns else self._root_ns
        attributed = self._root_ns / denominator if denominator else 0.0
        truncated = 0
        if top is not None and len(buckets) > top:
            truncated = len(buckets) - top
            buckets = buckets[:top]
        return {
            "buckets": buckets,
            "truncated_buckets": truncated,
            "total_self_ms": total_self_ns / 1e6,
            "measured_ms": self._root_ns / 1e6,
            "wall_ms": (wall_ns / 1e6) if wall_ns else self._root_ns / 1e6,
            "attributed_pct": attributed,
        }


def render_report(report: Dict[str, Any], title: str = "host-CPU profile") -> str:
    """Human-readable table of a :meth:`HostProfiler.report` dict."""
    lines = [
        f"{title}: {report['measured_ms']:.1f} ms measured / "
        f"{report['wall_ms']:.1f} ms wall "
        f"({report['attributed_pct'] * 100.0:.1f}% attributed)"
    ]
    header = f"{'bucket':<28} {'calls':>9} {'self ms':>10} {'cum ms':>10} {'self %':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in report["buckets"]:
        lines.append(
            f"{row['bucket']:<28} {row['calls']:>9} "
            f"{row['self_ms']:>10.2f} {row['cum_ms']:>10.2f} "
            f"{row.get('self_pct', 0.0) * 100.0:>6.1f}%"
        )
    if report.get("truncated_buckets"):
        lines.append(f"... {report['truncated_buckets']} more bucket(s) truncated")
    return "\n".join(lines)


def write_report(path: str, report: Dict[str, Any], **extra: Any) -> None:
    """Persist a report (plus context fields such as the cell label) as JSON."""
    payload = dict(extra)
    payload["profile"] = report
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
