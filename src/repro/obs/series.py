"""Streaming time-series sampler with bounded ring buffers.

The sampler snapshots registered series at a configurable *simulated-time*
cadence: the simulator's event loop checks ``now >= sampler.next_tick`` (one
attribute load and a float compare per event when obs is enabled, nothing
when disabled) and calls :meth:`StreamingSampler.tick`.  Each tick records
one point per series into a bounded ring buffer:

* ``events_per_sec`` — host-side event rate since the previous tick
  (wall-clock delta; observational, never fed back into the simulation);
* ``msgs_per_sec:<group>`` — per-protocol-group message rate in *simulated*
  seconds, from counters bumped by ``NetworkSimulator.submit[_broadcast]``;
* registered pull gauges (mempool depth / pending bytes, pending events);
* sliding p50/p99 of observed latency series (time-to-commit), windowed so
  the quantiles track the run's current behaviour, with an exact-count
  reservoir histogram keeping whole-run quantiles for the SLO gates.

Ring buffers cap memory for arbitrarily long runs; when a ring wraps, the
oldest points fall off and ``snapshot()`` reports how many were dropped so
exports never silently pretend to be complete.
"""

from __future__ import annotations

import csv
import json
from collections import deque
from time import perf_counter_ns
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.telemetry.core import Histogram

#: Default sampling cadence in simulated seconds.
DEFAULT_CADENCE_S = 0.25

#: Default ring-buffer capacity (points per series).
DEFAULT_RING_POINTS = 2048

#: Default sliding-quantile window (latency observations retained).
DEFAULT_QUANTILE_WINDOW = 512


class SeriesRing:
    """Bounded ``(sim_time, value)`` ring with a dropped-point count."""

    __slots__ = ("points", "dropped")

    def __init__(self, capacity: int) -> None:
        self.points: Deque[Tuple[float, float]] = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, sim_time: float, value: float) -> None:
        if len(self.points) == self.points.maxlen:
            self.dropped += 1
        self.points.append((sim_time, value))


class SlidingQuantile:
    """Sliding window over the most recent observations of one series."""

    __slots__ = ("window", "overall")

    def __init__(self, window: int) -> None:
        self.window: Deque[float] = deque(maxlen=window)
        self.overall = Histogram()

    def observe(self, value: float) -> None:
        self.window.append(value)
        self.overall.observe(value)

    def current(self) -> Dict[str, float]:
        from repro.analysis.metrics import percentiles

        values = list(self.window)
        return percentiles(values, (50.0, 99.0)) if values else {}


class StreamingSampler:
    """Samples registered series into ring buffers at a sim-time cadence."""

    def __init__(
        self,
        cadence_s: float = DEFAULT_CADENCE_S,
        ring_points: int = DEFAULT_RING_POINTS,
        quantile_window: int = DEFAULT_QUANTILE_WINDOW,
        publisher: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if cadence_s <= 0:
            raise ValueError(f"sampler cadence must be > 0, got {cadence_s}")
        self.cadence_s = cadence_s
        self.ring_points = ring_points
        self.quantile_window = quantile_window
        self.publisher = publisher
        #: Next simulated time a tick fires; the run loop compares against
        #: this on every event, so it lives as a plain attribute.
        self.next_tick = 0.0
        self.max_time: Optional[float] = None
        self._rings: Dict[str, SeriesRing] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}
        self._message_counts: Dict[str, int] = {}
        self._quantiles: Dict[str, SlidingQuantile] = {}
        self._last_wall_ns: Optional[int] = None
        self._last_sim: Optional[float] = None
        self._last_events: int = 0
        self._last_message_counts: Dict[str, int] = {}
        self._events_processed = 0
        self._events_per_sec = 0.0
        self._started_wall_ns = perf_counter_ns()
        self.ticks = 0

    # -- registration / feeds (instrumented code calls these) ------------------

    def attach(self, simulator: Any) -> None:
        """Adopt a simulator's horizon and pending-events gauge.

        Called by ``NetworkSimulator.__init__`` when obs is active.  Cells
        that build several simulators (churn rounds) re-attach; the horizon
        and gauge simply track the most recent one.
        """
        max_time = getattr(simulator.config, "max_time", None)
        if max_time:
            self.max_time = float(max_time)
        self._gauges["net.pending_events"] = simulator.pending_events

    def register_gauge(self, name: str, pull: Callable[[], float]) -> None:
        """Register a pull gauge sampled once per tick."""
        self._gauges[name] = pull

    def count_message(self, group: str, amount: int = 1) -> None:
        counts = self._message_counts
        if group in counts:
            counts[group] += amount
        else:
            counts[group] = amount

    def observe(self, name: str, value: float) -> None:
        """Feed one latency observation (e.g. time-to-commit) into a series."""
        quantile = self._quantiles.get(name)
        if quantile is None:
            quantile = self._quantiles[name] = SlidingQuantile(self.quantile_window)
        quantile.observe(value)

    # -- the tick --------------------------------------------------------------

    def tick(self, now: float, events_processed: int) -> None:
        """Record one point per series; called from the simulator run loop."""
        wall_ns = perf_counter_ns()
        self.next_tick = now + self.cadence_s
        self.ticks += 1
        self._events_processed = events_processed
        if self._last_wall_ns is None:
            # First tick establishes the rate baseline without emitting.
            self._last_wall_ns = wall_ns
            self._last_sim = now
            self._last_events = events_processed
            self._last_message_counts = dict(self._message_counts)
            return
        wall_delta_s = max((wall_ns - self._last_wall_ns) / 1e9, 1e-9)
        sim_delta_s = max(now - (self._last_sim or 0.0), 1e-9)
        rate = (events_processed - self._last_events) / wall_delta_s
        self._events_per_sec = rate
        self._record("events_per_sec", now, rate)
        for group, count in self._message_counts.items():
            delta = count - self._last_message_counts.get(group, 0)
            self._record(f"msgs_per_sec:{group}", now, delta / sim_delta_s)
        for name, pull in self._gauges.items():
            self._record(name, now, float(pull()))
        for name, quantile in self._quantiles.items():
            for label, value in quantile.current().items():
                self._record(f"{name}.{label}", now, value)
        self._last_wall_ns = wall_ns
        self._last_sim = now
        self._last_events = events_processed
        self._last_message_counts = dict(self._message_counts)
        publisher = self.publisher
        if publisher is not None:
            publisher(
                {
                    "kind": "tick",
                    "sim_time": now,
                    "max_time": self.max_time,
                    "events": events_processed,
                    "events_per_sec": rate,
                }
            )

    def _record(self, name: str, sim_time: float, value: float) -> None:
        ring = self._rings.get(name)
        if ring is None:
            ring = self._rings[name] = SeriesRing(self.ring_points)
        ring.append(sim_time, value)

    # -- live reads (obs frames / dashboards) ----------------------------------

    @property
    def events_per_sec(self) -> float:
        """Host event rate measured at the most recent tick (0 before it)."""
        return self._events_per_sec

    def quantile_current(self, name: str) -> Dict[str, float]:
        """Sliding-window p50/p99 of one observed series (empty if unseen)."""
        quantile = self._quantiles.get(name)
        return quantile.current() if quantile is not None else {}

    # -- snapshot / export -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict form: series points, whole-run totals and quantiles."""
        wall_s = (perf_counter_ns() - self._started_wall_ns) / 1e9
        totals: Dict[str, Any] = {
            "events_processed": self._events_processed,
            "wall_time_s": wall_s,
            "sim_time_s": self._last_sim if self._last_sim is not None else 0.0,
            "events_per_sec": (
                self._events_processed / wall_s if wall_s > 0 else 0.0
            ),
            "ticks": self.ticks,
        }
        return {
            "cadence_s": self.cadence_s,
            "series": {
                name: {
                    "points": [[t, v] for t, v in ring.points],
                    "dropped": ring.dropped,
                }
                for name, ring in sorted(self._rings.items())
            },
            "message_totals": dict(sorted(self._message_counts.items())),
            "quantiles": {
                name: quantile.overall.snapshot()
                for name, quantile in sorted(self._quantiles.items())
            },
            "totals": totals,
        }


# -- exports -------------------------------------------------------------------


def write_series_jsonl(path: str, snapshots: List[Dict[str, Any]]) -> int:
    """Append-one-line-per-point JSONL export of sampler snapshots.

    Each snapshot dict must carry a ``cell`` label next to its ``series``
    (the shape :meth:`repro.obs.core.ObsRuntime.snapshot` produces).
    Returns the number of points written.
    """
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for snap in snapshots:
            cell = snap.get("cell")
            for name, series in snap.get("series", {}).items():
                for sim_time, value in series["points"]:
                    handle.write(
                        json.dumps(
                            {
                                "cell": cell,
                                "series": name,
                                "t": sim_time,
                                "value": value,
                            },
                            sort_keys=True,
                        )
                    )
                    handle.write("\n")
                    written += 1
    return written


def write_series_csv(path: str, snapshots: List[Dict[str, Any]]) -> int:
    """Plot-ready long-form CSV (cell, series, t, value) of sampler snapshots."""
    written = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["cell", "series", "t", "value"])
        for snap in snapshots:
            cell = snap.get("cell")
            for name, series in snap.get("series", {}).items():
                for sim_time, value in series["points"]:
                    writer.writerow([cell, name, sim_time, value])
                    written += 1
    return written
