"""The obs runtime and its activation scope.

Mirrors the telemetry/tracing convention exactly: instrumented code holds
either a real :class:`ObsRuntime` or ``None`` and guards every hot-path site
with ``if obs is not None`` — disabled observability is a single pointer
comparison.  A module-level :class:`~repro.common.context.ActivationScope`
lets a scenario cell runner activate the runtime without threading it through
every constructor; ``NetworkSimulator`` defaults its ``obs`` argument to
:func:`current`.

This module must stay leaf-level (it is imported by the network simulator
and the ledger's transaction verify path): only :mod:`repro.common.context`
and the obs siblings, which themselves import nothing above
:mod:`repro.telemetry.core`.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Callable, Dict, Optional

from repro.common.context import ActivationScope
from repro.obs.profiler import HostProfiler
from repro.obs.series import (
    DEFAULT_CADENCE_S,
    DEFAULT_QUANTILE_WINDOW,
    DEFAULT_RING_POINTS,
    StreamingSampler,
)


class ObsRuntime:
    """One run's live-observability state: sampler + profiler + publisher."""

    __slots__ = ("sampler", "profiler", "publisher", "cell", "_created_ns")

    def __init__(
        self,
        sampler: StreamingSampler,
        profiler: HostProfiler,
        publisher: Optional[Callable[[Dict[str, Any]], None]] = None,
        cell: Optional[str] = None,
    ) -> None:
        self.sampler = sampler
        self.profiler = profiler
        self.publisher = publisher
        self.cell = cell
        self._created_ns = perf_counter_ns()

    @classmethod
    def enabled(
        cls,
        cadence_s: float = DEFAULT_CADENCE_S,
        ring_points: int = DEFAULT_RING_POINTS,
        quantile_window: int = DEFAULT_QUANTILE_WINDOW,
        publisher: Optional[Callable[[Dict[str, Any]], None]] = None,
        cell: Optional[str] = None,
    ) -> "ObsRuntime":
        """A fully wired runtime (the only constructor call sites need)."""
        sampler = StreamingSampler(
            cadence_s=cadence_s,
            ring_points=ring_points,
            quantile_window=quantile_window,
            publisher=publisher,
        )
        return cls(sampler, HostProfiler(), publisher=publisher, cell=cell)

    def publish(self, event: Dict[str, Any]) -> None:
        """Forward a progress event to the publisher, if any."""
        publisher = self.publisher
        if publisher is not None:
            publisher(event)

    def wall_ns(self) -> int:
        """Wall nanoseconds since the runtime was created."""
        return perf_counter_ns() - self._created_ns

    def snapshot(self, top: Optional[int] = None) -> Dict[str, Any]:
        """JSON-serialisable snapshot: series + totals + quantiles + profile.

        The profile's attribution denominator is the runtime's own lifetime,
        so ``attributed_pct`` answers "how much of this cell's host CPU did
        named buckets account for".
        """
        snap = self.sampler.snapshot()
        snap["cell"] = self.cell
        snap["profile"] = self.profiler.report(top=top, wall_ns=self.wall_ns())
        return snap


# -- the current runtime -------------------------------------------------------

_SCOPE = ActivationScope("obs")


def current() -> Optional[ObsRuntime]:
    """The active runtime installed by :func:`activate`, or ``None``."""
    return _SCOPE.current()


def activate(runtime: Optional[ObsRuntime]):
    """Install ``runtime`` for the enclosed block (``None`` shields)."""
    return _SCOPE.activate(runtime)


def current_profiler() -> Optional[HostProfiler]:
    """The active runtime's profiler, or ``None`` — one call for hot paths
    (the transaction verify path) that only bracket CPU sections."""
    runtime = _SCOPE.current()
    return runtime.profiler if runtime is not None else None
