"""Live sweep watcher: per-cell progress streamed over a queue.

Workers (or the serial runner) publish small progress dicts — ``cell-start``,
sampler ``tick`` and ``cell-end`` events — and the parent-side
:class:`SweepWatcher` folds them into a table of in-flight and finished
cells, rendered in place on a TTY (ANSI cursor-up redraw) or as periodic
plain lines otherwise.

Robustness rule: the drain loop *never blocks indefinitely*.  It reads the
queue with a short timeout and re-checks its stop flag between reads, so a
worker that dies mid-cell (killed, OOM, crashed) stalls its row at the last
published tick instead of deadlocking the sweep; the pool's own failure
handling still surfaces the error.  Publishing uses ``put_nowait`` and
swallows queue failures — observability must never take down the run it is
observing.
"""

from __future__ import annotations

import sys
import threading
from time import perf_counter
from typing import Any, Dict, List, Optional, TextIO


class CellProgress:
    """Latest known state of one sweep cell."""

    __slots__ = (
        "cell",
        "key",
        "status",
        "sim_time",
        "max_time",
        "events",
        "events_per_sec",
        "started_wall",
        "wall_s",
    )

    def __init__(self, cell: str, key: str) -> None:
        self.cell = cell
        self.key = key
        self.status = "running"
        self.sim_time = 0.0
        self.max_time: Optional[float] = None
        self.events = 0
        self.events_per_sec = 0.0
        self.started_wall = perf_counter()
        self.wall_s: Optional[float] = None

    @property
    def pct(self) -> Optional[float]:
        if self.status == "done":
            return 1.0
        if self.max_time:
            return min(self.sim_time / self.max_time, 1.0)
        return None

    def eta_s(self) -> Optional[float]:
        pct = self.pct
        if self.status == "done" or pct is None or pct <= 0.0:
            return None
        elapsed = perf_counter() - self.started_wall
        return elapsed * (1.0 - pct) / pct

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell": self.cell,
            "key": self.key,
            "status": self.status,
            "sim_time": self.sim_time,
            "max_time": self.max_time,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "pct": self.pct,
            "eta_s": self.eta_s(),
            "wall_s": self.wall_s,
        }


class SweepWatcher:
    """Parent-side aggregator and renderer of streamed cell progress."""

    def __init__(
        self,
        total_cells: int = 0,
        out: Optional[TextIO] = None,
        refresh_s: float = 0.5,
        poll_s: float = 0.2,
    ) -> None:
        self.total_cells = total_cells
        self.out = out if out is not None else sys.stderr
        self.refresh_s = refresh_s
        self.poll_s = poll_s
        self.cells: Dict[str, CellProgress] = {}
        self.completed = 0
        self.cached = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_render = 0.0
        self._rendered_lines = 0
        self._isatty = bool(getattr(self.out, "isatty", lambda: False)())

    # -- ingestion -------------------------------------------------------------

    def ingest(self, event: Dict[str, Any]) -> None:
        """Fold one progress event into the table (thread-safe)."""
        kind = event.get("kind")
        key = str(event.get("key", ""))
        with self._lock:
            cell = self.cells.get(key)
            if cell is None:
                cell = self.cells[key] = CellProgress(
                    str(event.get("cell", key)), key
                )
            if kind == "tick":
                cell.sim_time = float(event.get("sim_time") or 0.0)
                if event.get("max_time"):
                    cell.max_time = float(event["max_time"])
                cell.events = int(event.get("events") or 0)
                cell.events_per_sec = float(event.get("events_per_sec") or 0.0)
            elif kind == "cell-end":
                if cell.status != "done":
                    cell.status = "done"
                    self.completed += 1
                cell.wall_s = float(event.get("wall_s") or 0.0)
                if event.get("sim_time"):
                    cell.sim_time = float(event["sim_time"])
            elif kind == "cell-start" and event.get("max_time"):
                cell.max_time = float(event["max_time"])
        self._maybe_render()

    def note_cached(self, count: int) -> None:
        """Record cells satisfied from the store (they never stream events)."""
        with self._lock:
            self.cached += count

    # -- queue pump ------------------------------------------------------------

    def start(self, queue: Any) -> None:
        """Drain ``queue`` on a daemon thread until :meth:`finish`."""
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._pump, args=(queue,), name="obs-watch", daemon=True
        )
        self._thread.start()

    def _pump(self, queue: Any) -> None:
        import queue as queue_mod

        while True:
            try:
                event = queue.get(timeout=self.poll_s)
            except queue_mod.Empty:
                if self._stop.is_set():
                    return
                continue
            except (OSError, EOFError, ValueError):
                # Queue torn down underneath us (pool shutdown) — stop quietly.
                return
            self.ingest(event)

    def finish(self) -> None:
        """Stop the pump after one final drain pass and render the end state."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(self.poll_s * 10, 2.0))
            self._thread = None
        self.render(force=True)

    # -- rendering -------------------------------------------------------------

    def _maybe_render(self) -> None:
        now = perf_counter()
        if now - self._last_render >= self.refresh_s:
            self.render()

    def render(self, force: bool = False) -> None:
        now = perf_counter()
        if not force and now - self._last_render < self.refresh_s:
            return
        self._last_render = now
        with self._lock:
            lines = self._table_lines()
        if self._isatty:
            # In-place redraw: move the cursor up over the previous frame.
            if self._rendered_lines:
                self.out.write(f"\x1b[{self._rendered_lines}F\x1b[J")
            self.out.write("\n".join(lines) + "\n")
            self._rendered_lines = len(lines)
        else:
            self.out.write(lines[0] + "\n")
            for line in lines[1:]:
                self.out.write(line + "\n")
        self.out.flush()

    def _table_lines(self) -> List[str]:
        done = self.completed + self.cached
        total = self.total_cells or (len(self.cells) + self.cached)
        lines = [
            f"sweep: {done}/{total} cells done"
            + (f" ({self.cached} cached)" if self.cached else "")
        ]
        header = (
            f"  {'cell':<40} {'%':>6} {'events/s':>10} "
            f"{'sim-time':>10} {'eta':>8} {'status':<8}"
        )
        lines.append(header)
        for key in sorted(self.cells):
            cell = self.cells[key]
            pct = cell.pct
            pct_text = f"{pct * 100.0:5.1f}%" if pct is not None else "    --"
            eta = cell.eta_s()
            eta_text = f"{eta:7.1f}s" if eta is not None else "      --"
            lines.append(
                f"  {cell.cell[:40]:<40} {pct_text:>6} "
                f"{cell.events_per_sec:>10.0f} {cell.sim_time:>9.2f}s "
                f"{eta_text:>8} {cell.status:<8}"
            )
        return lines

    # -- snapshots (the HTTP server reads these) -------------------------------

    def state(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "total_cells": self.total_cells,
                "completed": self.completed,
                "cached": self.cached,
                "cells": [
                    self.cells[key].to_dict() for key in sorted(self.cells)
                ],
            }

    def prometheus_text(self) -> str:
        """Prometheus text-format gauges of the current sweep state."""
        state = self.state()
        lines = [
            "# TYPE repro_sweep_cells_total gauge",
            f"repro_sweep_cells_total {state['total_cells']}",
            "# TYPE repro_sweep_cells_completed gauge",
            f"repro_sweep_cells_completed {state['completed'] + state['cached']}",
            "# TYPE repro_cell_progress gauge",
            "# TYPE repro_cell_events_per_sec gauge",
            "# TYPE repro_cell_sim_time_seconds gauge",
        ]
        for cell in state["cells"]:
            label = cell["cell"].replace("\\", "\\\\").replace('"', '\\"')
            pct = cell["pct"] if cell["pct"] is not None else 0.0
            lines.append(f'repro_cell_progress{{cell="{label}"}} {pct:.6f}')
            lines.append(
                f'repro_cell_events_per_sec{{cell="{label}"}} '
                f"{cell['events_per_sec']:.3f}"
            )
            lines.append(
                f'repro_cell_sim_time_seconds{{cell="{label}"}} '
                f"{cell['sim_time']:.6f}"
            )
        return "\n".join(lines) + "\n"


def queue_publisher(queue: Any, cell: str, key: str):
    """A worker-side publisher closing over the cell identity.

    Uses ``put_nowait`` and swallows failures: a full or torn-down queue must
    degrade to lost progress frames, never to a blocked or crashed worker.
    """

    def publish(event: Dict[str, Any]) -> None:
        event.setdefault("cell", cell)
        event["key"] = key
        try:
            queue.put_nowait(event)
        except Exception:
            pass

    return publish
