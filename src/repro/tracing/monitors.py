"""Online invariant monitors evaluated incrementally during a run.

The paper's safety claims become live assertions instead of post-hoc checks:

* **agreement** — two honest replicas must never decide different sets for
  the same ``(epoch, instance)``; a coalition attack is *expected* to break
  this on the attacked branch, so the expectation is configurable and the
  monitor only trips on disagreement that the scenario did not stage;
* **validity** — a committed block must contain no invalid and no phantom
  (never-screened) transactions: the commit path's ``AppendReport`` says so;
* **supply conservation** — per replica, ``utxos.total_supply() + deposit``
  can never exceed its genesis baseline: transactions may burn value but not
  mint it, and punish/confiscate/refund only move value between the UTXO set
  and the deposit account (the zero-loss accounting identity of the ledger);
* **zero loss** (finalize) — at the end of an attacked run the realized
  attack gain must be covered by seized deposits and no honest deposit may
  be left short.

A violation is recorded (and logged at WARNING); when a flight recorder is
attached, the first violation triggers a causally-ordered JSONL dump so the
message history leading up to the trip is preserved.  ``strict=True``
escalates violations to :class:`InvariantViolationError` for tests that want
to fail hard at the exact tripping event.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.common.logging import get_logger

logger = get_logger("repro.tracing.monitors")


class InvariantViolationError(RuntimeError):
    """Raised by a strict monitor at the moment an invariant trips."""


class InvariantViolation:
    """One recorded invariant trip."""

    __slots__ = ("name", "replica", "at", "detail")

    def __init__(self, name: str, replica: Any, at: Optional[float], detail: Dict[str, Any]):
        self.name = name
        self.replica = replica
        self.at = at
        self.detail = detail

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "replica": self.replica,
            "at": self.at,
            "detail": self.detail,
        }

    def describe(self) -> str:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        at = f"t={self.at:.6f}s" if self.at is not None else "t=?"
        return f"[{self.name}] {at} replica={self.replica}: {rendered}"

    def __repr__(self) -> str:
        return f"InvariantViolation({self.describe()})"


class MonitorSet:
    """All online monitors of one traced run."""

    def __init__(
        self,
        expect_disagreement: bool = False,
        strict: bool = False,
        recorder: Optional[Any] = None,
        dump_path: Optional[Any] = None,
    ):
        #: True when the scenario deliberately stages a coalition attack, in
        #: which case honest-honest disagreement on the attacked instance is
        #: the *point* and must not be flagged.
        self.expect_disagreement = expect_disagreement
        self.strict = strict
        self.recorder = recorder
        self.dump_path = dump_path
        self.violations: List[InvariantViolation] = []
        #: Path of the flight-recorder dump written on the first violation.
        self.dump_written: Optional[str] = None
        self._keys: Set[Tuple[Any, ...]] = set()
        #: Honest replica ids; None means "treat every replica as honest".
        self._honest: Optional[Set[Any]] = None
        #: (epoch, instance) -> replica -> decided digest (honest only).
        self._decisions: Dict[Tuple[int, int], Dict[Any, str]] = {}
        #: replica -> genesis conserved total (supply + deposit).
        self._baselines: Dict[Any, float] = {}

    # -- configuration ------------------------------------------------------------

    def configure(
        self,
        honest: Optional[Any] = None,
        expect_disagreement: Optional[bool] = None,
    ) -> None:
        """Install the scenario's fault plan before the run starts."""
        if honest is not None:
            self._honest = set(honest)
        if expect_disagreement is not None:
            self.expect_disagreement = expect_disagreement

    def register_ledger(self, replica: Any, conserved_total: float) -> None:
        """Record ``replica``'s genesis conserved total (supply + deposit)."""
        self._baselines[replica] = conserved_total

    # -- bookkeeping ----------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def _is_honest(self, replica: Any) -> bool:
        return self._honest is None or replica in self._honest

    def _trip(
        self,
        name: str,
        replica: Any,
        at: Optional[float],
        key: Optional[Tuple[Any, ...]] = None,
        **detail: Any,
    ) -> None:
        """Record one violation (deduplicated by ``key``) and react."""
        dedupe = (name, replica) if key is None else (name,) + key
        if dedupe in self._keys:
            return
        self._keys.add(dedupe)
        violation = InvariantViolation(name, replica, at, detail)
        self.violations.append(violation)
        logger.warning("invariant violated: %s", violation.describe())
        if (
            self.recorder is not None
            and self.dump_path is not None
            and self.dump_written is None
        ):
            self.dump_written = self.recorder.dump_jsonl(self.dump_path)
            logger.warning("flight recorder dumped to %s", self.dump_written)
        if self.strict:
            raise InvariantViolationError(violation.describe())

    # -- agreement -------------------------------------------------------------------

    def on_decision(
        self, replica: Any, epoch: int, instance: int, digest: str, at: float
    ) -> None:
        """An ASMR replica decided ``digest`` for ``(epoch, instance)``."""
        if not self._is_honest(replica):
            return
        branch = self._decisions.setdefault((epoch, instance), {})
        branch[replica] = digest
        if self.expect_disagreement:
            return
        for other, other_digest in branch.items():
            if other != replica and other_digest != digest:
                self._trip(
                    "agreement",
                    replica,
                    at,
                    key=(epoch, instance, min(replica, other), max(replica, other)),
                    epoch=epoch,
                    instance=instance,
                    other=other,
                    digest=digest,
                    other_digest=other_digest,
                )

    def on_disagreement(self, replica: Any, instance: int, at: float) -> None:
        """A replica observed a conflicting confirmation (phase ②)."""
        if self.expect_disagreement or not self._is_honest(replica):
            return
        self._trip(
            "agreement",
            replica,
            at,
            key=("confirm", replica, instance),
            instance=instance,
            source="confirmation",
        )

    # -- validity and conservation ----------------------------------------------------

    def on_commit(
        self,
        replica: Any,
        instance: int,
        invalid: int,
        phantom: int,
        conserved_total: float,
        at: float,
    ) -> None:
        """A block was committed; screen its report and the ledger totals."""
        if not self._is_honest(replica):
            return
        if invalid > 0 or phantom > 0:
            self._trip(
                "validity",
                replica,
                at,
                key=(replica, instance),
                instance=instance,
                invalid=invalid,
                phantom=phantom,
            )
        self._check_supply(replica, conserved_total, at, where="commit")

    def on_merge(
        self, replica: Any, instance: int, conserved_total: float, at: float
    ) -> None:
        """A remote branch was merged; re-check the conserved total."""
        if self._is_honest(replica):
            self._check_supply(replica, conserved_total, at, where="merge")

    def on_punish(self, replica: Any, conserved_total: float, at: float) -> None:
        """Deposits were confiscated; seizure moves value, never creates it."""
        if self._is_honest(replica):
            self._check_supply(replica, conserved_total, at, where="punish")

    def _check_supply(
        self, replica: Any, conserved_total: float, at: float, where: str
    ) -> None:
        baseline = self._baselines.get(replica)
        if baseline is None:
            return
        # Burning value (outputs < inputs) is allowed; minting is not.  A
        # strict epsilon-free comparison is right here: amounts are integers
        # end to end in the ledger.
        if conserved_total > baseline:
            self._trip(
                "supply-conservation",
                replica,
                at,
                key=(replica, where),
                where=where,
                conserved_total=conserved_total,
                baseline=baseline,
                minted=conserved_total - baseline,
            )

    # -- zero loss (end of run) ---------------------------------------------------------

    def finalize(
        self,
        realized_gain: float,
        seized_deposit: float,
        deposit_shortfall: float = 0,
        at: Optional[float] = None,
    ) -> None:
        """End-of-run zero-loss accounting (the paper's headline claim).

        Unlike the other monitors this is not incremental: mid-run a merge can
        transiently refund before the matching punishment lands, so the check
        only makes sense once the run has settled.
        """
        if realized_gain > seized_deposit:
            self._trip(
                "zero-loss",
                None,
                at,
                key=("gain",),
                realized_gain=realized_gain,
                seized_deposit=seized_deposit,
                uncovered=realized_gain - seized_deposit,
            )
        if deposit_shortfall > 0:
            self._trip(
                "zero-loss",
                None,
                at,
                key=("shortfall",),
                deposit_shortfall=deposit_shortfall,
            )

    # -- summary ----------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """JSON-serialisable monitor outcome for runner persistence."""
        return {
            "ok": self.ok,
            "expect_disagreement": self.expect_disagreement,
            "tracked_instances": len(self._decisions),
            "tracked_ledgers": len(self._baselines),
            "violations": [violation.to_dict() for violation in self.violations],
            "dump": self.dump_written,
        }
