"""Causal tracing over the simulator's Topic/Router envelopes.

The layer mirrors the telemetry contract exactly: **instrumented code holds
either a real :class:`TraceRuntime` or ``None``**, and every hot-path site
guards with ``if tracing is not None`` — disabled tracing is a single pointer
comparison.  When enabled, causality flows through three mechanisms:

* every :class:`~repro.network.message.Message` carries an optional
  ``trace_ctx`` (trace id + parent span id), stamped from the *active* context
  at submission time by the simulator's ``submit``/``submit_broadcast``;
* every delivery of a context-carrying message opens a child span named after
  the topic's protocol group and message kind, activates it around the
  process's ``on_message`` dispatch (so anything *sent while handling* chains
  off the delivery), and closes it at the same simulated instant — a broadcast
  therefore yields one child span per recipient off the shared envelope;
* timers capture the context active at ``set_timer`` time and restore it
  around the callback, so delayed continuations (zero-phase grace votes,
  retransmissions) stay on their causal chain.

Tracing is strictly observational: it consumes no randomness and schedules no
events, so enabling it cannot perturb a seeded run's event order — the fixed
fig4 golden outcomes hold with tracing on or off.

Protocol components additionally emit structured point *events*
(``rbc.deliver``, ``bin.decide``, ``zlb.commit``, ...) carrying the consensus
instance; the critical-path analysis consumes those rather than reconstructing
phases from the span tree.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.context import ActivationScope
from repro.telemetry.core import protocol_group

# NOTE: like repro.telemetry.core, this module is imported by the network
# simulator and must not import repro.network (or anything that imports it)
# at module level; topic helpers are imported lazily where needed.


class TraceContext:
    """An immutable (trace id, span id) pair riding on messages and timers."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int):
        self.trace_id = trace_id
        self.span_id = span_id

    def fmt(self) -> str:
        """Compact ``tN:sM`` rendering used in logs and recorder dumps."""
        return f"t{self.trace_id}:s{self.span_id}"

    def __repr__(self) -> str:
        return f"TraceContext({self.fmt()})"


class Span:
    """One timed unit of work attributed to a replica, in simulated seconds."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "replica",
        "start",
        "end",
        "attrs",
        "ctx",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        replica: Any,
        start: float,
        attrs: Optional[Dict[str, Any]],
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.replica = replica
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        #: The context children inherit; built once so repeated message
        #: stamping off the same span shares one object.
        self.ctx = TraceContext(trace_id, span_id)

    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "replica": self.replica,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    def __repr__(self) -> str:
        return (
            f"Span({self.name} {self.ctx.fmt()} r={self.replica} "
            f"[{self.start:.6f}, {self.end}])"
        )


class Tracer:
    """Collects spans and structured events for one traced run.

    ``id_base`` namespaces the id counters: every process of a distributed
    run picks a disjoint base (the cluster worker uses
    :func:`replica_id_base`), so span and trace ids stay globally unique and
    per-worker span sets merge into one tree without renumbering.  The
    default base 0 keeps single-process ids small and stable.
    """

    def __init__(self, id_base: int = 0) -> None:
        self.spans: List[Span] = []
        #: Structured point events: dicts with name/replica/t/trace/span plus
        #: free-form attrs — the critical-path analysis input.
        self.events: List[Dict[str, Any]] = []
        self.id_base = id_base
        self._span_ids = itertools.count(id_base + 1)
        self._trace_ids = itertools.count(id_base + 1)
        self._active: Optional[TraceContext] = None

    # -- context ----------------------------------------------------------------

    @property
    def current_ctx(self) -> Optional[TraceContext]:
        """The context new messages/timers/spans inherit, or ``None``."""
        return self._active

    def activate(self, ctx: Optional[TraceContext]) -> Optional[TraceContext]:
        """Install ``ctx`` as the active context; returns the previous one.

        Callers must restore the returned value (see :meth:`restore`) in a
        ``finally`` block — dispatch nests, and an unbalanced activate would
        leak one handler's causality into its siblings.
        """
        previous = self._active
        self._active = ctx
        return previous

    def restore(self, previous: Optional[TraceContext]) -> None:
        self._active = previous

    # -- spans ------------------------------------------------------------------

    def start_trace(
        self, name: str, replica: Any, at: float, **attrs: Any
    ) -> Span:
        """Open a root span beginning a fresh trace (e.g. one ASMR instance)."""
        span = Span(
            trace_id=next(self._trace_ids),
            span_id=next(self._span_ids),
            parent_id=None,
            name=name,
            replica=replica,
            start=at,
            attrs=attrs or None,
        )
        self.spans.append(span)
        return span

    def start_span(
        self,
        name: str,
        replica: Any,
        at: float,
        parent: Optional[TraceContext] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span under ``parent`` (default: the active context).

        With no parent anywhere the span becomes the root of a new trace.
        """
        parent_ctx = parent if parent is not None else self._active
        if parent_ctx is None:
            return self.start_trace(name, replica, at, **attrs)
        span = Span(
            trace_id=parent_ctx.trace_id,
            span_id=next(self._span_ids),
            parent_id=parent_ctx.span_id,
            name=name,
            replica=replica,
            start=at,
            attrs=attrs or None,
        )
        self.spans.append(span)
        return span

    def finish(self, span: Span, at: float) -> None:
        span.end = at

    # -- structured events -------------------------------------------------------

    def event(self, name: str, replica: Any, at: float, **attrs: Any) -> None:
        """Record a point event attributed to the active context (if any)."""
        ctx = self._active
        self.events.append(
            {
                "name": name,
                "replica": replica,
                "t": at,
                "trace": ctx.trace_id if ctx is not None else None,
                "span": ctx.span_id if ctx is not None else None,
                "attrs": attrs,
            }
        )

    # -- summaries ----------------------------------------------------------------

    def trace_count(self) -> int:
        return len({span.trace_id for span in self.spans})


def topic_trace_attrs(topic: Any) -> Dict[str, Any]:
    """Low-cardinality attributes identifying a sub-protocol topic.

    Extracts the protocol head, the consensus ``instance`` and the proposer
    ``slot`` from topics shaped like ``("sbc", epoch, instance, "rbc", slot)``
    or ``("excl", epoch, "bin", slot)``; components cache the result once at
    construction so per-event cost is a dict copy at most.
    """
    segments = getattr(topic, "segments", None)
    if segments is None:
        from repro.network.topic import as_topic

        segments = as_topic(topic).segments
    attrs: Dict[str, Any] = {"head": str(segments[0]).partition(".")[0]}
    for layer in ("rbc", "bin"):
        if layer in segments[1:]:
            index = segments.index(layer)
            if index + 1 < len(segments):
                attrs["slot"] = segments[index + 1]
            if index >= 2:
                attrs["instance"] = segments[index - 1]
            return attrs
    if attrs["head"] == "sbc" and len(segments) >= 3:
        attrs["instance"] = segments[2]
    return attrs


class TraceRuntime:
    """Bundles the tracer with the flight recorder and invariant monitors.

    This is the object the :class:`~repro.network.simulator.NetworkSimulator`
    holds (or ``None``); its hook methods are only ever reached when tracing
    is enabled, so they can afford per-call work the bare path cannot.
    """

    __slots__ = ("tracer", "recorder", "monitors")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        recorder: Optional[Any] = None,
        monitors: Optional[Any] = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer()
        self.recorder = recorder
        self.monitors = monitors

    @classmethod
    def enabled(
        cls,
        recorder_capacity: int = 512,
        dump_path: Optional[Any] = None,
        strict: bool = False,
        id_base: int = 0,
    ) -> "TraceRuntime":
        """A fully wired runtime: tracer + flight recorder + monitors.

        ``id_base`` namespaces span/trace ids (see :class:`Tracer`); cluster
        workers pass :func:`replica_id_base` so per-process traces merge.
        """
        from repro.tracing.monitors import MonitorSet
        from repro.tracing.recorder import FlightRecorder

        recorder = FlightRecorder(capacity=recorder_capacity)
        monitors = MonitorSet(recorder=recorder, dump_path=dump_path, strict=strict)
        return cls(
            tracer=Tracer(id_base=id_base), recorder=recorder, monitors=monitors
        )

    # -- simulator hooks -----------------------------------------------------------

    def on_send(self, message: Any, now: float) -> None:
        """Stamp the active context onto an outgoing envelope and record it."""
        if message.trace_ctx is None:
            message.trace_ctx = self.tracer._active
        recorder = self.recorder
        if recorder is not None:
            recorder.record_message(now, message.sender, "send", message)

    def on_drop(self, message: Any, now: float, count: int = 1) -> None:
        recorder = self.recorder
        if recorder is not None:
            recorder.record_message(now, message.sender, "drop", message, count=count)

    def deliver(self, process: Any, message: Any, now: float) -> None:
        """Dispatch a delivery inside a child span of the message's context."""
        recorder = self.recorder
        if recorder is not None:
            recorder.record_message(now, message.recipient, "deliver", message)
        ctx = message.trace_ctx
        if ctx is None:
            process.on_message(message)
            return
        tracer = self.tracer
        span = tracer.start_span(
            f"{protocol_group(message.topic)}/{message.kind}",
            message.recipient,
            now,
            parent=ctx,
            sender=message.sender,
            topic=message.topic.canonical,
        )
        previous = tracer.activate(span.ctx)
        try:
            process.on_message(message)
        finally:
            tracer.restore(previous)
            tracer.finish(span, now)

    def fire_timer(
        self,
        callback: Callable[[], None],
        ctx: Optional[TraceContext],
        now: float,
        owner: Any,
    ) -> None:
        """Run a timer callback under the context captured at scheduling time."""
        recorder = self.recorder
        if recorder is not None:
            recorder.record(
                now,
                owner,
                "timer",
                f"timer fired (owner={owner})",
                trace=ctx.fmt() if ctx is not None else None,
            )
        tracer = self.tracer
        previous = tracer.activate(ctx)
        try:
            callback()
        finally:
            tracer.restore(previous)

    # -- summaries -------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """JSON-serialisable digest persisted by the scenario runner."""
        from repro.tracing.critical_path import critical_path

        tracer = self.tracer
        summary: Dict[str, Any] = {
            "traces": tracer.trace_count(),
            "spans": len(tracer.spans),
            "events": len(tracer.events),
            "critical_path": critical_path(tracer),
        }
        if self.monitors is not None:
            summary["monitors"] = self.monitors.status()
        if self.recorder is not None:
            summary["recorder_events"] = len(self.recorder)
        return summary


#: Id-namespace width per cluster worker: 2**40 spans/traces per process is
#: far beyond any run while keeping merged ids well inside float-exact range.
_ID_BASE_STRIDE = 1 << 40


def replica_id_base(replica_id: int) -> int:
    """The disjoint :class:`Tracer` id namespace of one cluster worker.

    Offset by one stride so worker 0 does not collide with the default
    ``id_base=0`` namespace of a launcher-side (or simulator) tracer.
    """
    return (replica_id + 1) * _ID_BASE_STRIDE


# -- the current runtime ---------------------------------------------------------

#: Activation state; same nesting/shielding semantics as telemetry's scope.
_SCOPE = ActivationScope("tracing")


def current() -> Optional[TraceRuntime]:
    """The active runtime installed by :func:`activate`, or ``None``.

    ``NetworkSimulator`` and ``ZLBSystem.create`` default their ``tracing``
    argument to this, so activating a runtime around a scenario cell traces
    the whole stack it builds.
    """
    return _SCOPE.current()


def activate(runtime: Optional[TraceRuntime]):
    """Install ``runtime`` as the current tracing runtime for the block.

    ``activate(None)`` explicitly disables tracing for the block.
    """
    return _SCOPE.activate(runtime)
