"""Trace exports: Chrome-tracing/Perfetto JSON and nested span trees.

The Chrome trace event format (the ``traceEvents`` array understood by
``chrome://tracing`` and https://ui.perfetto.dev) maps naturally onto the
simulator's data: one *process* row per replica, one *thread* row per trace
(so a consensus instance's causal tree reads left to right on its own lane),
complete ``"X"`` events for spans and instant ``"i"`` events for the
structured point events.  Timestamps are simulated seconds scaled to
microseconds, the format's native unit.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.tracing.core import Tracer

#: Simulated seconds -> Chrome trace microseconds.
_US = 1_000_000.0


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The tracer's spans and events as a Chrome trace object."""
    trace_events: List[Dict[str, Any]] = []
    for span in tracer.spans:
        args: Dict[str, Any] = {"trace": span.trace_id, "span": span.span_id}
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        if span.attrs:
            args.update(span.attrs)
        trace_events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": _pid(span.replica),
                "tid": span.trace_id,
                "ts": span.start * _US,
                "dur": span.duration() * _US,
                "args": args,
            }
        )
    for event in tracer.events:
        record = {
            "name": event["name"],
            "ph": "i",
            "s": "t",
            "pid": _pid(event["replica"]),
            "tid": event["trace"] if event["trace"] is not None else 0,
            "ts": event["t"] * _US,
            "args": dict(event["attrs"]),
        }
        trace_events.append(record)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "traces": tracer.trace_count(),
            "clock": "simulated seconds, scaled to us",
        },
    }


def chrome_trace_from_records(
    spans: List[Dict[str, Any]],
    events: Optional[List[Dict[str, Any]]] = None,
    clock: str = "simulated seconds, scaled to us",
) -> Dict[str, Any]:
    """A Chrome trace built from plain span/event dicts instead of a Tracer.

    The cluster launcher merges per-worker span records (the
    :meth:`~repro.tracing.core.Span.to_dict` shape, with ``start``/``end``
    already mapped onto the shared cluster clock) that crossed process
    boundaries as JSON — there is no shared ``Tracer`` object to export from.
    Output is identical in shape to :func:`chrome_trace`, so both open in
    ``chrome://tracing``/Perfetto and both feed the ``scenarios trace``
    tooling.
    """
    trace_events: List[Dict[str, Any]] = []
    for span in spans:
        args: Dict[str, Any] = {"trace": span["trace"], "span": span["span"]}
        if span.get("parent") is not None:
            args["parent"] = span["parent"]
        if span.get("attrs"):
            args.update(span["attrs"])
        start = span["start"]
        end = span["end"] if span.get("end") is not None else start
        trace_events.append(
            {
                "name": span["name"],
                "ph": "X",
                "pid": _pid(span.get("replica")),
                "tid": span["trace"],
                "ts": start * _US,
                "dur": (end - start) * _US,
                "args": args,
            }
        )
    for event in events or []:
        trace_events.append(
            {
                "name": event["name"],
                "ph": "i",
                "s": "t",
                "pid": _pid(event.get("replica")),
                "tid": event["trace"] if event.get("trace") is not None else 0,
                "ts": event["t"] * _US,
                "args": dict(event.get("attrs") or {}),
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "traces": len({span["trace"] for span in spans}),
            "clock": clock,
        },
    }


def _pid(replica: Any) -> int:
    """Replica id as a Chrome process id (non-int replicas hash stably)."""
    if isinstance(replica, int):
        return replica
    return abs(hash(str(replica))) % 1_000_000 if replica is not None else 0


def span_tree(tracer: Tracer) -> List[Dict[str, Any]]:
    """Spans nested under their parents: a list of per-trace root dicts."""
    nodes: Dict[int, Dict[str, Any]] = {}
    roots: List[Dict[str, Any]] = []
    for span in tracer.spans:
        node = span.to_dict()
        node["children"] = []
        nodes[span.span_id] = node
    for span in tracer.spans:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id is not None else None
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


def write_chrome_trace(tracer: Tracer, path: Any) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    path = str(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer), handle)
    return path


def write_span_tree(tracer: Tracer, path: Any, indent: Optional[int] = 2) -> str:
    """Write the nested span tree JSON to ``path``; returns the path."""
    path = str(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(span_tree(tracer), handle, indent=indent)
    return path
