"""Critical-path analysis: where does time-to-commit actually go?

Consumes the tracer's structured point events rather than the span tree — the
protocol sites emit exactly the phase boundaries the analysis needs:

* ``mempool.admit {tx}`` / ``mempool.batch {instance, txs}`` — admission and
  the moment a transaction leaves the mempool inside a proposal;
* ``sbc.propose {instance}`` — the replica starts the instance (phase start);
* ``rbc.deliver {instance, slot}`` — a slot's reliable broadcast delivered;
* ``bin.decide {instance, slot}`` — a slot's binary consensus decided;
* ``zlb.commit {instance, ...}`` — the block was appended locally.

Per committed ``(replica, instance)`` the commit latency decomposes into
``rbc`` (propose → last RBC delivery), ``binary`` (→ last binary decision)
and ``commit`` (→ local append); the ``mempool`` phase is the per-transaction
wait from admission to the proposal batch that carried it.  Phases aggregate
across samples into p50/p95/max/mean, and the phase with the largest mean is
reported as dominant — the number the ROADMAP's n=100–300 scaling work needs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.tracing.core import Tracer

#: Phase order in reports; ``total`` is propose -> commit.
PHASES = ("mempool", "rbc", "binary", "commit")


def critical_path(tracer: Tracer) -> Dict[str, Any]:
    """Aggregate phase attribution across all committed instances."""
    # repro.analysis imports lazily, mirroring telemetry's Histogram: this
    # module is re-exported by the package the simulator imports.
    from repro.analysis.metrics import percentiles

    samples: Dict[str, List[float]] = {phase: [] for phase in PHASES}
    samples["total"] = []
    instances = 0
    for (replica, _instance), marks in _instance_marks(tracer).items():
        propose = marks.get("propose")
        commit = marks.get("commit")
        if propose is None or commit is None:
            continue
        instances += 1
        rbc_end = marks.get("rbc_end", propose)
        bin_end = max(marks.get("bin_end", rbc_end), rbc_end)
        commit = max(commit, bin_end)
        samples["rbc"].append(rbc_end - propose)
        samples["binary"].append(bin_end - rbc_end)
        samples["commit"].append(commit - bin_end)
        samples["total"].append(commit - propose)
    samples["mempool"].extend(_mempool_waits(tracer))
    phases: Dict[str, Any] = {}
    for phase, values in samples.items():
        summary = percentiles(values, points=(50.0, 95.0))
        summary["max"] = max(values) if values else 0.0
        summary["mean"] = sum(values) / len(values) if values else 0.0
        summary["count"] = len(values)
        phases[phase] = summary
    dominant = max(
        PHASES,
        key=lambda phase: phases[phase]["mean"] if phases[phase]["count"] else -1.0,
    )
    return {
        "instances": instances,
        "phases": phases,
        "dominant_phase": dominant if instances or phases["mempool"]["count"] else None,
    }


def _instance_marks(tracer: Tracer) -> Dict[Tuple[Any, Any], Dict[str, float]]:
    """Phase boundary times per (replica, instance)."""
    marks: Dict[Tuple[Any, Any], Dict[str, float]] = {}
    for event in tracer.events:
        name = event["name"]
        if name not in ("sbc.propose", "rbc.deliver", "bin.decide", "zlb.commit"):
            continue
        instance = event["attrs"].get("instance")
        if instance is None:
            continue
        entry = marks.setdefault((event["replica"], instance), {})
        t = event["t"]
        if name == "sbc.propose":
            entry.setdefault("propose", t)
        elif name == "rbc.deliver":
            entry["rbc_end"] = max(entry.get("rbc_end", t), t)
        elif name == "bin.decide":
            entry["bin_end"] = max(entry.get("bin_end", t), t)
        elif name == "zlb.commit":
            entry.setdefault("commit", t)
    return marks


def _mempool_waits(tracer: Tracer) -> List[float]:
    """Per-transaction admission -> proposal-batch waits, per replica."""
    admits: Dict[Tuple[Any, Any], float] = {}
    waits: List[float] = []
    for event in tracer.events:
        name = event["name"]
        if name == "mempool.admit":
            tx = event["attrs"].get("tx")
            if tx is not None:
                admits.setdefault((event["replica"], tx), event["t"])
        elif name == "mempool.batch":
            replica = event["replica"]
            t = event["t"]
            for tx in event["attrs"].get("txs", ()):
                admitted = admits.pop((replica, tx), None)
                if admitted is not None:
                    waits.append(t - admitted)
    return waits


def render_critical_path(summary: Dict[str, Any]) -> str:
    """Fixed-width text table of the phase attribution (CLI output)."""
    lines = [
        f"critical path across {summary['instances']} committed "
        f"(replica, instance) sample(s):",
        f"  {'phase':<8} {'count':>6} {'p50':>10} {'p95':>10} "
        f"{'max':>10} {'mean':>10}",
    ]
    for phase in PHASES + ("total",):
        row = summary["phases"][phase]
        lines.append(
            f"  {phase:<8} {row['count']:>6} {row['p50']:>10.4f} "
            f"{row['p95']:>10.4f} {row['max']:>10.4f} {row['mean']:>10.4f}"
        )
    dominant = summary.get("dominant_phase")
    if dominant is not None:
        lines.append(f"  dominant phase: {dominant}")
    return "\n".join(lines)
