"""Causal tracing, flight recorder and online invariant monitors.

Enable by activating a :class:`TraceRuntime` around the code that builds the
stack (mirroring :mod:`repro.telemetry`)::

    from repro import tracing

    runtime = tracing.TraceRuntime.enabled()
    with tracing.activate(runtime):
        system = ZLBSystem.create(...)
        system.run_instances(2)
    print(tracing.render_critical_path(
        tracing.critical_path(runtime.tracer)))

or pass ``--tracing`` / the ``trace`` subcommand to ``python -m
repro.scenarios``.  Disabled (the default) the whole layer costs one ``None``
check per instrumented site.
"""

from repro.tracing.core import (
    Span,
    TraceContext,
    Tracer,
    TraceRuntime,
    activate,
    current,
    topic_trace_attrs,
)
from repro.tracing.critical_path import critical_path, render_critical_path
from repro.tracing.export import (
    chrome_trace,
    span_tree,
    write_chrome_trace,
    write_span_tree,
)
from repro.tracing.monitors import (
    InvariantViolation,
    InvariantViolationError,
    MonitorSet,
)
from repro.tracing.recorder import FlightRecorder

__all__ = [
    "FlightRecorder",
    "InvariantViolation",
    "InvariantViolationError",
    "MonitorSet",
    "Span",
    "TraceContext",
    "TraceRuntime",
    "Tracer",
    "activate",
    "chrome_trace",
    "critical_path",
    "current",
    "render_critical_path",
    "span_tree",
    "topic_trace_attrs",
    "write_chrome_trace",
    "write_span_tree",
]
