"""The flight recorder: bounded per-replica ring buffers of network events.

Every send, delivery, drop and timer firing is appended to the owning
replica's ``collections.deque(maxlen=capacity)``; old entries fall off the
back, so a long run retains only the *recent past* — which is exactly what a
post-mortem needs.  Entries carry a global monotonically increasing sequence
number stamped at record time; because the simulator is single-threaded and
processes events in timestamp order, sorting the union of all buffers by
``(t, seq)`` reconstructs the causal order of everything retained.

The recorder is only ever touched from :class:`~repro.tracing.core
.TraceRuntime` hooks (enabled mode) — the disabled path never sees it.  Dumps
are JSONL (one event per line) so they stream into ``jq``/pandas unchanged;
:meth:`render` produces the compact text block pytest attaches to failing
test reports.
"""

from __future__ import annotations

import collections
import itertools
import json
from typing import Any, Deque, Dict, List, Optional

#: Default per-replica ring capacity; enough to hold several consensus
#: instances' worth of traffic at small n without unbounded growth.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Last-N delivery/timer events per replica, merged in causal order."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._buffers: Dict[Any, Deque[Dict[str, Any]]] = {}
        self._seq = itertools.count()
        self._recorded = 0

    # -- recording ---------------------------------------------------------------

    def record(
        self,
        at: float,
        replica: Any,
        kind: str,
        detail: str,
        trace: Optional[str] = None,
    ) -> None:
        """Append one event to ``replica``'s ring buffer."""
        buffer = self._buffers.get(replica)
        if buffer is None:
            buffer = self._buffers[replica] = collections.deque(
                maxlen=self.capacity
            )
        buffer.append(
            {
                "seq": next(self._seq),
                "t": at,
                "replica": replica,
                "type": kind,
                "detail": detail,
                "trace": trace,
            }
        )
        self._recorded += 1

    def record_message(
        self, at: float, replica: Any, kind: str, message: Any, count: int = 1
    ) -> None:
        """Record a message event; the self-describing envelope is the detail."""
        detail = message.describe()
        if count > 1:
            detail = f"{detail} (x{count})"
        ctx = message.trace_ctx
        self.record(at, replica, kind, detail, trace=ctx.fmt() if ctx else None)

    # -- reading -----------------------------------------------------------------

    def events_since(self, seq: int) -> List[Dict[str, Any]]:
        """Retained events with sequence number strictly greater than ``seq``.

        The cluster worker ships its ring incrementally: each obs frame
        carries only the events recorded since the previous frame, so a
        long-lived worker never re-sends its whole ring.
        """
        fresh = [
            event
            for buffer in self._buffers.values()
            for event in buffer
            if event["seq"] > seq
        ]
        fresh.sort(key=lambda event: (event["t"], event["seq"]))
        return fresh

    def __len__(self) -> int:
        """Events currently retained (not the total ever recorded)."""
        return sum(len(buffer) for buffer in self._buffers.values())

    @property
    def recorded(self) -> int:
        """Total events ever recorded, including those already evicted."""
        return self._recorded

    def events(self) -> List[Dict[str, Any]]:
        """All retained events merged across replicas, in causal order.

        The simulation is single-threaded and timestamp-ordered, so sorting
        by ``(t, seq)`` — sequence number breaking simultaneous-event ties in
        record order — *is* the causal order of the retained suffix.
        """
        merged = [
            event for buffer in self._buffers.values() for event in buffer
        ]
        merged.sort(key=lambda event: (event["t"], event["seq"]))
        return merged

    # -- dumping -----------------------------------------------------------------

    def dump_jsonl(self, path: Any) -> str:
        """Write the causally-ordered event log as JSONL; returns the path."""
        path = str(path)
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events():
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
        return path

    def render(self, limit: int = 40) -> str:
        """Human-readable tail of the event log (pytest failure reports)."""
        events = self.events()
        shown = events[-limit:]
        lines = [
            f"flight recorder: {len(events)} retained event(s)"
            f" ({self._recorded} recorded, capacity {self.capacity}/replica)"
        ]
        if len(events) > len(shown):
            lines.append(f"... {len(events) - len(shown)} earlier event(s) elided")
        for event in shown:
            trace = event["trace"]
            # Message details are self-describing (they embed the context);
            # only annotate events whose detail does not carry it already.
            trace = f" [{trace}]" if trace and trace not in event["detail"] else ""
            lines.append(
                f"  t={event['t']:.6f}s r={event['replica']} "
                f"{event['type']:<7} {event['detail']}{trace}"
            )
        return "\n".join(lines)


# -- cross-process merging -----------------------------------------------------


def merge_worker_events(
    events_by_worker: Dict[Any, List[Dict[str, Any]]],
    offsets: Optional[Dict[Any, float]] = None,
) -> List[Dict[str, Any]]:
    """Causally merge per-worker flight-recorder events into one timeline.

    Each worker of a real cluster records event times on its *own* monotonic
    clock, so raw ``t`` values are not comparable across processes.  Workers
    report an epoch offset estimate (``time.time() - loop.time()``, sampled
    once at startup); adding it maps every event onto the shared wall clock.
    The merged timeline is normalised to start at zero (``t_cluster``) and
    sorted by ``(t_cluster, worker, seq)`` — within one worker that preserves
    the true causal record order, across workers it is as causal as NTP-grade
    clock agreement allows, which is exactly what a post-mortem needs.

    Every merged event keeps its original fields and gains ``worker`` (the
    reporting replica) and ``t_cluster``.
    """
    offsets = offsets or {}
    merged: List[Dict[str, Any]] = []
    for worker, events in events_by_worker.items():
        offset = offsets.get(worker, 0.0)
        for event in events:
            entry = dict(event)
            entry["worker"] = worker
            entry["t_cluster"] = event["t"] + offset
            merged.append(entry)
    if not merged:
        return merged
    base = min(event["t_cluster"] for event in merged)
    for event in merged:
        event["t_cluster"] -= base
    merged.sort(key=lambda e: (e["t_cluster"], str(e["worker"]), e["seq"]))
    return merged


def dump_merged_jsonl(path: Any, events: List[Dict[str, Any]]) -> str:
    """Write a merged cluster timeline as JSONL; returns the path.

    Same one-event-per-line shape as :meth:`FlightRecorder.dump_jsonl`, so
    the ``scenarios trace`` tooling and ``jq``/pandas consume both alike.
    """
    path = str(path)
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
    return path
