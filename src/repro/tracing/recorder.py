"""The flight recorder: bounded per-replica ring buffers of network events.

Every send, delivery, drop and timer firing is appended to the owning
replica's ``collections.deque(maxlen=capacity)``; old entries fall off the
back, so a long run retains only the *recent past* — which is exactly what a
post-mortem needs.  Entries carry a global monotonically increasing sequence
number stamped at record time; because the simulator is single-threaded and
processes events in timestamp order, sorting the union of all buffers by
``(t, seq)`` reconstructs the causal order of everything retained.

The recorder is only ever touched from :class:`~repro.tracing.core
.TraceRuntime` hooks (enabled mode) — the disabled path never sees it.  Dumps
are JSONL (one event per line) so they stream into ``jq``/pandas unchanged;
:meth:`render` produces the compact text block pytest attaches to failing
test reports.
"""

from __future__ import annotations

import collections
import itertools
import json
from typing import Any, Deque, Dict, List, Optional

#: Default per-replica ring capacity; enough to hold several consensus
#: instances' worth of traffic at small n without unbounded growth.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Last-N delivery/timer events per replica, merged in causal order."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._buffers: Dict[Any, Deque[Dict[str, Any]]] = {}
        self._seq = itertools.count()
        self._recorded = 0

    # -- recording ---------------------------------------------------------------

    def record(
        self,
        at: float,
        replica: Any,
        kind: str,
        detail: str,
        trace: Optional[str] = None,
    ) -> None:
        """Append one event to ``replica``'s ring buffer."""
        buffer = self._buffers.get(replica)
        if buffer is None:
            buffer = self._buffers[replica] = collections.deque(
                maxlen=self.capacity
            )
        buffer.append(
            {
                "seq": next(self._seq),
                "t": at,
                "replica": replica,
                "type": kind,
                "detail": detail,
                "trace": trace,
            }
        )
        self._recorded += 1

    def record_message(
        self, at: float, replica: Any, kind: str, message: Any, count: int = 1
    ) -> None:
        """Record a message event; the self-describing envelope is the detail."""
        detail = message.describe()
        if count > 1:
            detail = f"{detail} (x{count})"
        ctx = message.trace_ctx
        self.record(at, replica, kind, detail, trace=ctx.fmt() if ctx else None)

    # -- reading -----------------------------------------------------------------

    def __len__(self) -> int:
        """Events currently retained (not the total ever recorded)."""
        return sum(len(buffer) for buffer in self._buffers.values())

    @property
    def recorded(self) -> int:
        """Total events ever recorded, including those already evicted."""
        return self._recorded

    def events(self) -> List[Dict[str, Any]]:
        """All retained events merged across replicas, in causal order.

        The simulation is single-threaded and timestamp-ordered, so sorting
        by ``(t, seq)`` — sequence number breaking simultaneous-event ties in
        record order — *is* the causal order of the retained suffix.
        """
        merged = [
            event for buffer in self._buffers.values() for event in buffer
        ]
        merged.sort(key=lambda event: (event["t"], event["seq"]))
        return merged

    # -- dumping -----------------------------------------------------------------

    def dump_jsonl(self, path: Any) -> str:
        """Write the causally-ordered event log as JSONL; returns the path."""
        path = str(path)
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events():
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
        return path

    def render(self, limit: int = 40) -> str:
        """Human-readable tail of the event log (pytest failure reports)."""
        events = self.events()
        shown = events[-limit:]
        lines = [
            f"flight recorder: {len(events)} retained event(s)"
            f" ({self._recorded} recorded, capacity {self.capacity}/replica)"
        ]
        if len(events) > len(shown):
            lines.append(f"... {len(events) - len(shown)} earlier event(s) elided")
        for event in shown:
            trace = event["trace"]
            # Message details are self-describing (they embed the context);
            # only annotate events whose detail does not carry it already.
            trace = f" [{trace}]" if trace and trace not in event["detail"] else ""
            lines.append(
                f"  t={event['t']:.6f}s r={event['replica']} "
                f"{event['type']:<7} {event['detail']}{trace}"
            )
        return "\n".join(lines)
