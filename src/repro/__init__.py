"""repro — a reference reproduction of ZLB (Zero-Loss Blockchain), DSN 2024.

The package implements the paper's contribution (accountable SMR with
membership change, block merge, zero-loss payments) and every substrate it
depends on (discrete-event network simulation, ECDSA, reliable broadcast,
binary and set Byzantine consensus, Polygraph accountability, HotStuff /
Red Belly / Polygraph baselines) in pure Python.

Quickstart::

    from repro.zlb import ZLBSystem
    from repro.common import FaultConfig

    system = ZLBSystem.create(FaultConfig(n=7), seed=1)
    result = system.run_rounds(3)
    print(result.chain_summary())

See README.md and the examples/ directory for full walkthroughs.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
