"""Proofs of fraud (PoFs).

A proof of fraud is a pair of signed votes from the same replica, for the same
protocol step (context, round, kind), carrying different values — undeniable
evidence of equivocation.  Honest replicas never produce such pairs (the only
step where voting for two values is legitimate, BVAL of the BV-broadcast, is
excluded from the vote kinds tracked here), so PoFs only ever implicate
deceitful replicas.

During the confirmation phase and the membership change, replicas cross-check
the certificates they received from different partitions; the votes inside
conflicting certificates are fed to :func:`extract_pofs_from_votes`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Container, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.types import ReplicaId
from repro.consensus.certificates import (
    Certificate,
    SignedVote,
    verify_vote,
    vote_from_payload,
)


@dataclasses.dataclass(frozen=True)
class ProofOfFraud:
    """Two conflicting signed votes from the same replica."""

    culprit: ReplicaId
    first: SignedVote
    second: SignedVote

    def is_well_formed(self) -> bool:
        """Structural check: the two votes genuinely conflict and blame ``culprit``."""
        return (
            self.first.conflicts_with(self.second)
            and self.first.signer == self.culprit
        )

    def verify(self, verifier: Any) -> bool:
        """Full check: structure plus both signatures."""
        return (
            self.is_well_formed()
            and verify_vote(self.first, verifier)
            and verify_vote(self.second, verifier)
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "culprit": self.culprit,
            "first": self.first.to_payload(),
            "second": self.second.to_payload(),
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "ProofOfFraud":
        return ProofOfFraud(
            culprit=payload["culprit"],
            first=vote_from_payload(payload["first"]),
            second=vote_from_payload(payload["second"]),
        )


#: Grouping key of a vote: one entry per (signer, context, round, kind).
VoteGroupKey = Tuple[ReplicaId, str, int, str]

#: Votes grouped for equivocation checks: key -> first vote seen per digest.
GroupedVotes = Dict[VoteGroupKey, Dict[str, SignedVote]]


def group_votes(votes: Iterable[SignedVote]) -> GroupedVotes:
    """Group ``votes`` by (signer, context, round, kind), first per digest.

    The insertion order of both levels matches the vote order, which
    :func:`extract_pofs_from_grouped` relies on to pick the same PoF votes
    as the flat :func:`extract_pofs_from_votes` scan.
    """
    grouped: GroupedVotes = {}
    for vote in votes:
        key = (vote.signer, vote.context, vote.round, vote.kind.value)
        grouped.setdefault(key, {}).setdefault(vote.value_digest, vote)
    return grouped


def _pof_from_group(signer: ReplicaId, by_value: Dict[str, SignedVote]) -> ProofOfFraud:
    values = sorted(by_value)
    return ProofOfFraud(
        culprit=signer, first=by_value[values[0]], second=by_value[values[1]]
    )


def extract_pofs_from_votes(votes: Iterable[SignedVote]) -> List[ProofOfFraud]:
    """Cross-check votes and return one PoF per equivocating replica.

    Votes are grouped by (signer, context, round, kind); any group containing
    two distinct value digests yields a PoF.  At most one PoF per culprit is
    returned (the paper only needs to identify the replica once).
    """
    pofs: Dict[ReplicaId, ProofOfFraud] = {}
    for (signer, _, _, _), by_value in group_votes(votes).items():
        if signer in pofs:
            continue
        if len(by_value) >= 2:
            pofs[signer] = _pof_from_group(signer, by_value)
    return [pofs[culprit] for culprit in sorted(pofs)]


def extract_pofs_from_grouped(
    first: GroupedVotes,
    second: GroupedVotes,
    skip: Container[ReplicaId] = frozenset(),
) -> List[ProofOfFraud]:
    """:func:`extract_pofs_from_votes` over two pre-grouped vote sets.

    Equivalent to the flat scan over the concatenation *first votes then
    second votes* — group order (first's keys in order, then second-only
    keys) and per-digest vote selection (first's vote wins a digest seen in
    both) reproduce the setdefault semantics exactly.  The hot CONFIRM path
    uses this to group each side once (the local justification per decision,
    the remote certificates per broadcast body) instead of re-grouping their
    concatenation for every recipient.

    ``skip`` drops culprits that already have a PoF (per-signer selection is
    independent, so this cannot change which *new* culprits are found).
    """
    pofs: Dict[ReplicaId, ProofOfFraud] = {}
    for key, by_value in first.items():
        signer = key[0]
        if signer in skip or signer in pofs:
            continue
        extra = second.get(key)
        if extra:
            merged = dict(by_value)
            for digest, vote in extra.items():
                merged.setdefault(digest, vote)
        else:
            merged = by_value
        if len(merged) >= 2:
            pofs[signer] = _pof_from_group(signer, merged)
    for key, by_value in second.items():
        signer = key[0]
        if signer in skip or signer in pofs or key in first:
            continue
        if len(by_value) >= 2:
            pofs[signer] = _pof_from_group(signer, by_value)
    return [pofs[culprit] for culprit in sorted(pofs)]


def extract_pofs_from_certificates(
    certificates: Iterable[Certificate],
) -> List[ProofOfFraud]:
    """Extract PoFs from the union of the votes of several certificates."""
    votes: List[SignedVote] = []
    for certificate in certificates:
        votes.extend(certificate.votes)
    return extract_pofs_from_votes(votes)


def merge_pofs(
    existing: Dict[ReplicaId, ProofOfFraud],
    new_pofs: Iterable[ProofOfFraud],
    verifier: Optional[Any] = None,
) -> List[ProofOfFraud]:
    """Merge freshly received PoFs into ``existing`` (keyed by culprit).

    Returns the list of PoFs that were actually new (``new_pofs`` in Alg. 1,
    line 15).  When a ``verifier`` is provided, invalid PoFs are ignored
    (Alg. 1 line 14: ``verify(pofs)``).
    """
    added: List[ProofOfFraud] = []
    for pof in new_pofs:
        if verifier is not None and not pof.verify(verifier):
            continue
        if verifier is None and not pof.is_well_formed():
            continue
        if pof.culprit not in existing:
            existing[pof.culprit] = pof
            added.append(pof)
    return added


def culprits(pofs: Iterable[ProofOfFraud]) -> Set[ReplicaId]:
    """The set of replicas incriminated by ``pofs``."""
    return {pof.culprit for pof in pofs}
