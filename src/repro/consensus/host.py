"""The protocol host interface.

A replica process hosts many protocol component instances at once (reliable
broadcasts, binary consensus instances, the exclusion and inclusion consensus
of a membership change, ...).  Components never talk to the network directly:
they go through their :class:`ProtocolHost`, which provides identity, the
current committee, signing, verification and message emission.  This is the
seam where deceitful behaviour is injected — a deceitful replica's host
rewrites selected outgoing messages per partition (see
:mod:`repro.adversary.attacks`) while components stay oblivious.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.common.types import ReplicaId
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SignedPayload, Signer


class ProtocolHost:
    """Interface a replica exposes to its protocol components."""

    #: Telemetry registry of the run, or None when telemetry is disabled.
    #: Components cache this once (``tel = host.telemetry``) and guard every
    #: instrumented path with ``if tel is not None`` — the zero-overhead
    #: contract of :mod:`repro.telemetry`.
    telemetry: Optional[Any] = None

    #: Tracing runtime of the run, or None when tracing is disabled; the same
    #: cache-once / ``is not None`` contract (see :mod:`repro.tracing`).
    tracing: Optional[Any] = None

    # -- identity and committee ------------------------------------------------

    @property
    def replica_id(self) -> ReplicaId:
        """This replica's identifier."""
        raise NotImplementedError

    def committee(self) -> Sequence[ReplicaId]:
        """Current committee (sorted replica ids) as known by this replica."""
        raise NotImplementedError

    def committee_size(self) -> int:
        """Size of the current committee."""
        return len(self.committee())

    # -- time -------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current time of the bound transport backend.

        Simulated seconds under the discrete-event simulator, wall-clock
        (event loop) seconds under the asyncio transport — components only
        ever compare and subtract it, so they run unchanged on either.
        """
        raise NotImplementedError

    def schedule(self, delay: float, callback) -> int:
        """Schedule a callback after ``delay`` seconds; returns a timer id."""
        raise NotImplementedError

    # -- cryptography -------------------------------------------------------------

    def sign(self, payload: Any) -> SignedPayload:
        """Sign a payload with this replica's key."""
        raise NotImplementedError

    def verify(self, payload: Any, signed: SignedPayload) -> bool:
        """Verify a signed payload against the PKI."""
        raise NotImplementedError

    #: Hosts backed by a :class:`KeyRegistry` additionally expose
    #: ``verify_digest(digest, signed)`` (digest-first verification through
    #: the registry's verified-signature cache) and ``verification_token``
    #: (the registry's cache identity).  Both are optional — callers discover
    #: them with ``getattr`` so minimal test hosts keep working.

    # -- communication -------------------------------------------------------------

    def emit(
        self,
        protocol: Any,
        kind: str,
        body: Dict[str, Any],
        recipients: Optional[Iterable[ReplicaId]] = None,
    ) -> None:
        """Broadcast a protocol message (to the committee unless restricted).

        ``protocol`` is a :class:`~repro.network.topic.Topic` (or anything
        :func:`~repro.network.topic.as_topic` accepts).
        """
        raise NotImplementedError

    def emit_to(self, recipient: ReplicaId, protocol: Any, kind: str, body: Dict[str, Any]) -> None:
        """Send a protocol message to a single replica."""
        raise NotImplementedError

    # -- notifications from components ------------------------------------------------

    def component_decided(self, protocol: Any, decision: Any) -> None:
        """Called by a component when it reaches a decision."""
        raise NotImplementedError


class SimpleHost(ProtocolHost):
    """A concrete host used by unit tests and by the replica implementations.

    It binds a :class:`~repro.network.transport.Process`-like transport (any
    object with ``broadcast``/``send_to``/``set_timer``/``now`` — a process
    bound to either transport backend qualifies), a signer and a key
    registry.  Decisions are collected into :attr:`decisions`.
    """

    def __init__(
        self,
        replica_id: ReplicaId,
        committee: Sequence[ReplicaId],
        signer: Signer,
        registry: KeyRegistry,
        transport: Any,
    ):
        self._replica_id = replica_id
        self._committee: List[ReplicaId] = sorted(committee)
        self._signer = signer
        self._registry = registry
        self._transport = transport
        self.telemetry = getattr(transport, "telemetry", None)
        self.tracing = getattr(transport, "tracing", None)
        self.decisions: Dict[str, Any] = {}

    @property
    def replica_id(self) -> ReplicaId:
        return self._replica_id

    def committee(self) -> Sequence[ReplicaId]:
        return list(self._committee)

    def update_committee(self, committee: Iterable[ReplicaId]) -> None:
        """Replace the committee view (used by membership changes)."""
        self._committee = sorted(committee)

    @property
    def now(self) -> float:
        return self._transport.now

    def schedule(self, delay: float, callback) -> int:
        return self._transport.set_timer(delay, callback)

    def sign(self, payload: Any) -> SignedPayload:
        return self._signer.sign(payload)

    def verify(self, payload: Any, signed: SignedPayload) -> bool:
        return self._registry.verify(payload, signed)

    def verify_digest(self, digest: str, signed: SignedPayload) -> bool:
        return self._registry.verify_digest(digest, signed)

    @property
    def verification_token(self) -> int:
        return self._registry.verification_token

    def emit(
        self,
        protocol: str,
        kind: str,
        body: Dict[str, Any],
        recipients: Optional[Iterable[ReplicaId]] = None,
    ) -> None:
        targets = list(recipients) if recipients is not None else list(self._committee)
        self._transport.broadcast(protocol, kind, body, recipients=targets)

    def emit_to(self, recipient: ReplicaId, protocol: str, kind: str, body: Dict[str, Any]) -> None:
        self._transport.send_to(recipient, protocol, kind, body)

    def component_decided(self, protocol: str, decision: Any) -> None:
        self.decisions[protocol] = decision
