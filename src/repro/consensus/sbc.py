"""Set Byzantine Consensus (SBC) via the reduction to binary consensus.

Following §2.3 of the paper (and Red Belly / Polygraph), one SBC instance runs:

* ``n`` reliable broadcasts, one per committee member's proposal;
* ``n`` binary consensus instances, one per proposal slot, deciding whether
  the corresponding proposal makes it into the decided set;
* slots whose reliable broadcast delivered start their binary consensus with
  input 1; once ``n − f`` proposals have been delivered locally, the remaining
  slots start with input 0;
* the decision is the union of the proposals at slots whose binary consensus
  decided 1.

With accountability enabled (always, in this implementation) every ECHO,
READY, AUX and DECIDE is a signed vote; the :class:`SBCDecision` carries the
per-slot decision certificates plus all collected votes (the *justification*)
so that conflicting decisions can be cross-checked into proofs of fraud during
the confirmation phase.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.types import ReplicaId, byzantine_tolerance
from repro.consensus.binary import BinaryConsensus
from repro.consensus.certificates import Certificate, SignedVote
from repro.consensus.host import ProtocolHost
from repro.crypto.hashing import hash_payload
from repro.network.topic import Topic, TopicLike, as_topic
from repro.rbc.bracha import ReliableBroadcast

#: Validates a delivered proposal; invalid proposals are treated as absent.
ProposalValidator = Callable[[ReplicaId, Any], bool]

#: Callback signature: (decision)
SBCDecideCallback = Callable[["SBCDecision"], None]


@dataclasses.dataclass
class SBCDecision:
    """The outcome of one SBC instance at one replica.

    Attributes:
        instance: the ASMR consensus index.
        bitmask: slot -> 0/1 binary decision.
        proposals: slot -> proposal payload, for slots decided 1.
        binary_certificates: slot -> quorum certificate justifying the bit.
        rbc_certificates: slot -> quorum of READY votes justifying the delivered
            proposal content (only for slots decided 1).
        justification_votes: every signed vote collected while deciding; used
            by the confirmation phase to extract proofs of fraud when two
            replicas end up with conflicting decisions.
        decided_at: simulated time of the local decision.
    """

    instance: int
    bitmask: Dict[ReplicaId, int]
    proposals: Dict[ReplicaId, Any]
    binary_certificates: Dict[ReplicaId, Certificate]
    justification_votes: List[SignedVote]
    rbc_certificates: Dict[ReplicaId, Certificate] = dataclasses.field(
        default_factory=dict
    )
    decided_at: float = 0.0
    #: Slots whose payload the *local* validator rejected but the committee
    #: decided 1 for anyway (stateful validators can disagree across branches).
    #: Consumers that rely on the "decided payloads passed my validator"
    #: invariant — e.g. a commit path skipping signature re-verification —
    #: must re-screen these payloads in full.
    unvalidated_slots: Tuple[ReplicaId, ...] = ()
    #: Memoised digest — a decision is immutable once built, and the digest is
    #: re-read on every confirmation exchange (a hot path at large n).
    _digest: Optional[str] = dataclasses.field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def digest(self) -> str:
        """Canonical digest of the decided set (order-independent per slot)."""
        digest = self._digest
        if digest is None:
            included = sorted(
                (slot, hash_payload(self.proposals[slot]))
                for slot, bit in self.bitmask.items()
                if bit == 1
            )
            digest = hash_payload(["sbc-decision", self.instance, included])
            self._digest = digest
        return digest

    def included_slots(self) -> List[ReplicaId]:
        """Slots whose proposals are part of the decision, in slot order."""
        return sorted(slot for slot, bit in self.bitmask.items() if bit == 1)

    def decided_payloads(self) -> List[Any]:
        """The decided proposals in slot order."""
        return [self.proposals[slot] for slot in self.included_slots()]

    def conflicts_with(self, other: "SBCDecision") -> bool:
        """True when the two decisions are for the same instance but differ."""
        return self.instance == other.instance and self.digest != other.digest

    def summary_payload(self) -> Dict[str, Any]:
        """Compact content summary exchanged during confirmation."""
        return {
            "instance": self.instance,
            "digest": self.digest,
            "bitmask": dict(self.bitmask),
            "proposal_digests": {
                slot: hash_payload(value) for slot, value in self.proposals.items()
            },
        }


class SetByzantineConsensus:
    """One SBC instance; hosts its reliable broadcasts and binary consensuses."""

    def __init__(
        self,
        host: ProtocolHost,
        instance: int,
        on_decide: SBCDecideCallback,
        proposal_validator: Optional[ProposalValidator] = None,
        protocol_prefix: TopicLike = "sbc",
        zero_phase_grace: float = 0.05,
    ):
        self.host = host
        self.instance = instance
        self.on_decide = on_decide
        self.proposal_validator = proposal_validator
        #: Grace period between reaching n - f local deliveries and voting 0 on
        #: the still-missing slots; gives slightly slower proposers a chance so
        #: the common all-honest case includes every proposal (SBC throughput).
        self.zero_phase_grace = zero_phase_grace
        #: Base topic of the instance, e.g. ``("sbc", epoch, instance)`` or
        #: ``("excl", epoch)``; sub-component topics extend it with
        #: ``("rbc"|"bin", slot)``.
        self.topic: Topic = as_topic(protocol_prefix).child(instance)
        # Telemetry (None when disabled); the SBC latency runs from instance
        # creation (the replica starts the instance when it proposes or first
        # hears of it) to local decision, in simulated time.
        self._telemetry = host.telemetry
        self._created_at = host.now
        # Tracing (None when disabled): the instance span opens under the
        # active context — the proposer's root span, or the delivery span of
        # whatever message caused a lazy start — and closes at the decision.
        self._tracing = getattr(host, "tracing", None)
        self._span = None
        if self._tracing is not None:
            self._span = self._tracing.tracer.start_span(
                "sbc", host.replica_id, self._created_at, instance=instance
            )
        self.slots: Tuple[ReplicaId, ...] = tuple(sorted(host.committee()))
        self.decided = False
        self.decision: Optional[SBCDecision] = None
        self._proposals: Dict[ReplicaId, Any] = {}
        #: Deliveries the local validator rejected, kept as (value, rbc_cert):
        #: adopted into the decision only if the committee decides 1 anyway.
        self._rejected_proposals: Dict[ReplicaId, Tuple[Any, Certificate]] = {}
        #: Slots adopted from ``_rejected_proposals`` — instance state, not a
        #: completion-pass local: an adoption can happen on a pass that still
        #: returns early (another slot's RBC pending), and the flag must
        #: survive into whichever later pass finally builds the decision.
        self._adopted_slots: Set[ReplicaId] = set()
        self._bits: Dict[ReplicaId, int] = {}
        self._binary_certs: Dict[ReplicaId, Certificate] = {}
        self._rbc_certs: Dict[ReplicaId, Certificate] = {}
        self._rbc: Dict[ReplicaId, ReliableBroadcast] = {}
        self._binary: Dict[ReplicaId, BinaryConsensus] = {}
        self._zero_phase_started = False
        base = self.topic
        for slot in self.slots:
            self._rbc[slot] = ReliableBroadcast(
                host=host,
                context=base.child("rbc", slot),
                proposer=slot,
                on_deliver=self._on_rbc_deliver,
            )
            self._binary[slot] = BinaryConsensus(
                host=host,
                context=base.child("bin", slot),
                # Bind the slot at construction time: no context scan needed
                # when the instance decides.
                on_decide=(
                    lambda _context, value, certificate, slot=slot: (
                        self._on_binary_decide(slot, value, certificate)
                    )
                ),
            )

    # -- routing -------------------------------------------------------------------

    def owns_topic(self, topic: Topic) -> bool:
        """True when ``topic`` belongs to this SBC instance."""
        return self.topic.is_prefix_of(topic)

    # -- API -------------------------------------------------------------------------

    def propose(self, payload: Any) -> None:
        """Reliably broadcast this replica's proposal for the instance."""
        slot = self.host.replica_id
        if slot in self._rbc:
            self._rbc[slot].broadcast(payload)

    def handle(self, topic: Topic, sender: ReplicaId, kind: str, body: Dict[str, Any]) -> None:
        """Route a message to the owning sub-component: O(1) dict lookups on
        the ``(layer, slot)`` segments below the instance's base topic."""
        segments = topic.segments
        base_len = len(self.topic.segments)
        if len(segments) != base_len + 2:
            return
        layer = segments[base_len]
        slot = segments[base_len + 1]
        if layer == "rbc":
            component = self._rbc.get(slot)
        elif layer == "bin":
            component = self._binary.get(slot)
        else:
            component = None
        if component is not None:
            component.handle(sender, kind, body)

    # -- sub-component callbacks --------------------------------------------------------

    def _on_rbc_deliver(self, proposer: ReplicaId, value: Any, certificate: Certificate) -> None:
        if self.proposal_validator is not None and not self.proposal_validator(
            proposer, value
        ):
            # Do not endorse the proposal (this replica never votes 1 for it),
            # but retain the delivered content: validators can be stateful
            # (branch-relative execution checks), so a quorum whose state
            # differs may still decide 1 for the slot — the decision must then
            # complete here too, and the commit path's execution screening
            # deterministically drops whatever does not apply.  Without this,
            # a decided-1 slot whose only RBC delivery was rejected would
            # stall the instance forever.
            if proposer not in self._proposals and proposer not in self._rejected_proposals:
                self._rejected_proposals[proposer] = (value, certificate)
                self._maybe_complete()
            return
        if proposer in self._proposals:
            return
        self._proposals[proposer] = value
        self._rbc_certs[proposer] = certificate
        binary = self._binary[proposer]
        if not binary.started:
            binary.propose(1)
        self._maybe_start_zero_phase()
        self._maybe_complete()

    def _maybe_start_zero_phase(self) -> None:
        """Once n − f proposals are in, vote 0 on every slot still unseen."""
        if self._zero_phase_started:
            return
        n = len(self.slots)
        threshold = n - byzantine_tolerance(n)
        if len(self._proposals) < threshold:
            return
        self._zero_phase_started = True
        if self.zero_phase_grace > 0:
            self.host.schedule(self.zero_phase_grace, self._vote_zero_on_missing)
        else:
            self._vote_zero_on_missing()

    def _vote_zero_on_missing(self) -> None:
        for slot in self.slots:
            binary = self._binary[slot]
            if not binary.started:
                binary.propose(0)

    def _on_binary_decide(self, slot: ReplicaId, value: int, certificate: Certificate) -> None:
        if slot in self._bits:
            return
        self._bits[slot] = value
        self._binary_certs[slot] = certificate
        self._maybe_complete()

    # -- completion ------------------------------------------------------------------------

    def _maybe_complete(self) -> None:
        if self.decided:
            return
        if len(self._bits) < len(self.slots):
            return
        if all(bit == 0 for bit in self._bits.values()):
            # SBC never decides the empty set: at least one slot must carry a
            # proposal.  This can only transiently happen while late RBC
            # deliveries are still pending, so keep waiting.
            return
        for slot, bit in self._bits.items():
            if bit == 1 and slot not in self._proposals:
                if slot in self._rejected_proposals:
                    # The committee decided 1 despite our validator rejecting
                    # the delivery (stateful validators may disagree across
                    # branches): adopt the content so the decision completes.
                    # The slot is flagged as unvalidated on the decision —
                    # consumers must re-screen it (shape, signatures,
                    # execution) rather than trust the usual invariant.
                    value, certificate = self._rejected_proposals.pop(slot)
                    self._proposals[slot] = value
                    self._rbc_certs[slot] = certificate
                    self._adopted_slots.add(slot)
                    continue
                # The proposal content has not reached us yet; wait for the
                # reliable broadcast to deliver it.
                return
        justification: List[SignedVote] = []
        for slot in self.slots:
            justification.extend(self._binary[slot].collected_votes)
            if self._bits[slot] == 1:
                justification.extend(self._rbc[slot].collected_votes)
        self.decided = True
        telemetry = self._telemetry
        if telemetry is not None:
            included = sum(1 for bit in self._bits.values() if bit == 1)
            telemetry.counter("consensus.sbc.decided").inc()
            telemetry.histogram("consensus.sbc.decide_s").observe(
                self.host.now - self._created_at
            )
            telemetry.histogram("consensus.sbc.included_slots").observe(included)
            telemetry.histogram("consensus.sbc.justification_votes").observe(
                len(justification)
            )
        tracing = self._tracing
        if tracing is not None:
            tracer = tracing.tracer
            tracer.event(
                "sbc.decide",
                self.host.replica_id,
                self.host.now,
                instance=self.instance,
                included=sum(1 for bit in self._bits.values() if bit == 1),
            )
            if self._span is not None:
                tracer.finish(self._span, self.host.now)
        self.decision = SBCDecision(
            instance=self.instance,
            bitmask=dict(self._bits),
            proposals={
                slot: self._proposals[slot]
                for slot, bit in self._bits.items()
                if bit == 1
            },
            binary_certificates=dict(self._binary_certs),
            justification_votes=justification,
            rbc_certificates={
                slot: cert
                for slot, cert in self._rbc_certs.items()
                if self._bits.get(slot) == 1
            },
            decided_at=self.host.now,
            unvalidated_slots=tuple(sorted(self._adopted_slots)),
        )
        self.on_decide(self.decision)
