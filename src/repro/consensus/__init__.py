"""Consensus substrate: accountable reliable broadcast, binary consensus and SBC.

The layering follows §2.3 of the paper:

* :mod:`repro.consensus.certificates` — signed votes and quorum certificates.
* :mod:`repro.consensus.proofs` — proof-of-fraud extraction by cross-checking
  conflicting signed votes (the Polygraph accountability mechanism).
* :mod:`repro.rbc.bracha` — Bracha reliable broadcast with signed echoes.
* :mod:`repro.consensus.binary` — accountable binary Byzantine consensus
  (BV-broadcast + AUX rounds, DBFT style) producing decision certificates.
* :mod:`repro.consensus.sbc` — the reduction of Set Byzantine Consensus to
  ``n`` reliable broadcasts plus ``n`` binary consensus instances; with
  accountability enabled this is the Polygraph consensus ZLB builds on.
"""

from repro.consensus.certificates import Certificate, SignedVote, VoteKind
from repro.consensus.proofs import ProofOfFraud, extract_pofs_from_votes, merge_pofs
from repro.consensus.host import ProtocolHost
from repro.consensus.binary import BinaryConsensus
from repro.consensus.sbc import SetByzantineConsensus, SBCDecision

__all__ = [
    "Certificate",
    "SignedVote",
    "VoteKind",
    "ProofOfFraud",
    "extract_pofs_from_votes",
    "merge_pofs",
    "ProtocolHost",
    "BinaryConsensus",
    "SetByzantineConsensus",
    "SBCDecision",
]
