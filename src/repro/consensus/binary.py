"""Accountable binary Byzantine consensus.

The component follows the leaderless BV-broadcast + AUX structure of DBFT (the
binary consensus underlying Red Belly and Polygraph):

* each round ``r`` starts by BV-broadcasting the current estimate (``BVAL``
  messages, echoed once ``ceil(n/3)`` support is seen, accepted into
  ``bin_values`` at a quorum);
* once ``bin_values`` is non-empty, the replica broadcasts a *signed*
  ``AUX(r, w)`` vote for a single value ``w``;
* once a quorum of AUX votes whose values all lie in ``bin_values`` is
  collected, the round resolves: a single value equal to the round's
  deterministic fallback value decides, otherwise the estimate is updated and
  the next round starts.

Accountability: AUX and DECIDE votes are signed; an honest replica sends at
most one AUX per round and at most one DECIDE per instance, so two different
signed AUX (or DECIDE) values from the same replica in the same round are a
proof of fraud.  ``BVAL`` is deliberately unsigned and excluded from the
equivocation checks because BV-broadcast legitimately echoes both values.

The deterministic fallback value (``round mod 2``) replaces DBFT's weak
coordinator; it preserves safety unconditionally and terminates in every
scenario the simulator exercises (see DESIGN.md §6 for the discussion).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from repro.common.types import ReplicaId, quorum_size, recovery_threshold
from repro.consensus.certificates import (
    Certificate,
    SignedVote,
    VoteKind,
    certificate_from_payload,
    make_vote,
    verify_vote,
    vote_from_payload,
)
from repro.consensus.host import ProtocolHost
from repro.crypto.hashing import hash_payload
from repro.network.topic import TopicLike, as_topic

#: Callback signature: (context, decided_value, certificate)
DecideCallback = Callable[[str, int, Certificate], None]


#: The binary domain has two canonical digests; computing them once turns the
#: per-message digest churn of BVAL/AUX handling into dict probes.
_VALUE_DIGESTS: Dict[int, str] = {}


def value_digest(value: int) -> str:
    """Canonical digest of a binary value used in votes and certificates."""
    value = int(value)
    digest = _VALUE_DIGESTS.get(value)
    if digest is None:
        digest = hash_payload(["binary-value", value])
        _VALUE_DIGESTS[value] = digest
    return digest


class BinaryConsensus:
    """One accountable binary consensus instance."""

    BVAL = "BVAL"
    AUX = "AUX"
    DECIDE = "DECIDE"

    def __init__(self, host: ProtocolHost, context: TopicLike, on_decide: DecideCallback):
        self.host = host
        #: The instance's topic (emission path) and its canonical string form
        #: (the signed vote context — votes stay wire-stable strings).
        self.topic = as_topic(context)
        self.context = self.topic.canonical
        self.on_decide = on_decide
        # Telemetry (None when disabled); latency runs from first activity.
        self._telemetry = host.telemetry
        self._started_at: Optional[float] = None
        # Tracing (None when disabled): one span from first activity to the
        # decision; round/decide events feed the critical-path analysis.
        self._tracing = getattr(host, "tracing", None)
        self._span = None
        if self._tracing is not None:
            from repro.tracing.core import topic_trace_attrs

            self._trace_attrs = topic_trace_attrs(self.topic)
        self.round = 0
        self.estimate: Optional[int] = None
        self.decided = False
        self.decision: Optional[int] = None
        self.decision_certificate: Optional[Certificate] = None
        self.started = False
        # Per-round state.
        self._bval_sent: Dict[int, Set[int]] = {}
        self._bval_received: Dict[int, Dict[int, Set[ReplicaId]]] = {}
        self._bin_values: Dict[int, Set[int]] = {}
        self._aux_sent: Dict[int, bool] = {}
        self._aux_votes: Dict[int, Dict[ReplicaId, SignedVote]] = {}
        # All verified AUX/DECIDE votes observed, for accountability.
        self.collected_votes: List[SignedVote] = []

    # -- thresholds ---------------------------------------------------------------

    def _quorum(self) -> int:
        return quorum_size(self.host.committee_size())

    def _support(self) -> int:
        return recovery_threshold(self.host.committee_size())

    # -- API ----------------------------------------------------------------------

    def propose(self, value: int) -> None:
        """Start the instance with the replica's input value (0 or 1)."""
        if self.started:
            return
        self.started = True
        self._trace_started()
        self.estimate = 1 if value else 0
        self._start_round(0)

    def _trace_started(self) -> None:
        if self._started_at is None:
            self._started_at = self.host.now
            tracing = self._tracing
            if tracing is not None:
                self._span = tracing.tracer.start_span(
                    "bin", self.host.replica_id, self._started_at, **self._trace_attrs
                )

    def _start_round(self, round_number: int) -> None:
        self.round = round_number
        tracing = self._tracing
        if tracing is not None:
            tracing.tracer.event(
                "bin.round",
                self.host.replica_id,
                self.host.now,
                round=round_number,
                **self._trace_attrs,
            )
        assert self.estimate is not None
        self._broadcast_bval(round_number, self.estimate)
        # Messages for this round may have arrived while we were still in an
        # earlier round; re-evaluate so progress does not stall at the tail.
        if self._bin_values.get(round_number):
            self._broadcast_aux(round_number)
            self._try_resolve_round(round_number)

    def _broadcast_bval(self, round_number: int, value: int) -> None:
        sent = self._bval_sent.setdefault(round_number, set())
        if value in sent:
            return
        sent.add(value)
        self.host.emit(
            self.topic, self.BVAL, {"round": round_number, "value": value}
        )

    def _broadcast_aux(self, round_number: int) -> None:
        if self._aux_sent.get(round_number):
            return
        bin_values = self._bin_values.get(round_number, set())
        if not bin_values:
            return
        self._aux_sent[round_number] = True
        if self.estimate in bin_values:
            chosen = self.estimate
        else:
            chosen = sorted(bin_values)[0]
        vote = make_vote(
            self.host, self.context, round_number, VoteKind.AUX, value_digest(chosen)
        )
        self.collected_votes.append(vote)
        self.host.emit(
            self.topic,
            self.AUX,
            {"round": round_number, "value": chosen, "vote": vote.to_payload()},
        )

    # -- message handling -----------------------------------------------------------

    def handle(self, sender: ReplicaId, kind: str, body: Dict[str, Any]) -> None:
        """Process a message of this instance."""
        if self._started_at is None:
            self._trace_started()
        if kind == self.BVAL:
            self._handle_bval(sender, body)
        elif kind == self.AUX:
            self._handle_aux(sender, body)
        elif kind == self.DECIDE:
            self._handle_decide(sender, body)

    def _handle_bval(self, sender: ReplicaId, body: Dict[str, Any]) -> None:
        if self.decided or not self.started:
            # BVAL before propose() still counts: buffer by processing it, the
            # estimate is unknown but thresholds are per-value anyway.
            if self.decided:
                return
        round_number = int(body.get("round", 0))
        value = 1 if body.get("value") else 0
        per_round = self._bval_received.setdefault(round_number, {0: set(), 1: set()})
        per_round[value].add(sender)
        support = len(per_round[value])
        if support >= self._support():
            # Echo the value once enough replicas back it (BV-broadcast rule).
            self._broadcast_bval(round_number, value)
        if support >= self._quorum():
            self._bin_values.setdefault(round_number, set()).add(value)
            if round_number == self.round and self.started:
                self._broadcast_aux(round_number)
                self._try_resolve_round(round_number)

    def _handle_aux(self, sender: ReplicaId, body: Dict[str, Any]) -> None:
        round_number = int(body.get("round", 0))
        value = 1 if body.get("value") else 0
        payload = body.get("vote")
        if payload is None:
            return
        try:
            vote = vote_from_payload(payload)
        except (KeyError, ValueError, TypeError):
            return
        if (
            vote.signer != sender
            or vote.context != self.context
            or vote.round != round_number
            or vote.kind != VoteKind.AUX
            or vote.value_digest != value_digest(value)
        ):
            return
        if not verify_vote(vote, self.host):
            return
        # Votes are collected even after deciding: the confirmation phase
        # cross-checks them against other replicas' certificates to extract
        # proofs of fraud from later rounds of an attacked instance.
        self.collected_votes.append(vote)
        if self.decided:
            return
        votes = self._aux_votes.setdefault(round_number, {})
        # Only the first AUX per sender counts for the protocol; additional
        # conflicting ones remain in collected_votes for PoF extraction.
        votes.setdefault(sender, vote)
        if self.started:
            self._try_resolve_round(self.round)

    def _handle_decide(self, sender: ReplicaId, body: Dict[str, Any]) -> None:
        if self.decided:
            return
        value = 1 if body.get("value") else 0
        payload = body.get("certificate")
        if payload is None:
            return
        try:
            certificate = certificate_from_payload(payload)
        except (KeyError, ValueError, TypeError):
            return
        if certificate.value_digest != value_digest(value):
            return
        if certificate.kind != VoteKind.AUX or certificate.context != self.context:
            return
        if not certificate.is_valid(self.host, self.host.committee()):
            return
        self.collected_votes.extend(certificate.votes)
        self._decide(value, certificate, rebroadcast=True)

    # -- round resolution --------------------------------------------------------------

    def _try_resolve_round(self, round_number: int) -> None:
        if self.decided or round_number != self.round:
            return
        bin_values = self._bin_values.get(round_number, set())
        if not bin_values:
            return
        if not self._aux_sent.get(round_number):
            self._broadcast_aux(round_number)
        votes = self._aux_votes.get(round_number, {})
        supporting = {
            sender: vote
            for sender, vote in votes.items()
            if _digest_to_value(vote.value_digest) in bin_values
        }
        if len(supporting) < self._quorum():
            return
        values = {_digest_to_value(vote.value_digest) for vote in supporting.values()}
        fallback = round_number % 2
        if len(values) == 1:
            value = values.pop()
            if value == fallback:
                certificate = Certificate.from_votes(
                    vote
                    for vote in supporting.values()
                    if _digest_to_value(vote.value_digest) == value
                )
                self._decide(value, certificate, rebroadcast=True)
                return
            self.estimate = value
        else:
            self.estimate = fallback
        self._start_round(round_number + 1)

    def _decide(self, value: int, certificate: Certificate, rebroadcast: bool) -> None:
        if self.decided:
            return
        self.decided = True
        self.decision = value
        self.decision_certificate = certificate
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.counter("consensus.binary.decided", value=value).inc()
            telemetry.histogram("consensus.binary.rounds").observe(self.round + 1)
            telemetry.histogram("consensus.binary.certificate_votes").observe(
                len(certificate.votes)
            )
            if self._started_at is not None:
                telemetry.histogram("consensus.binary.decide_s").observe(
                    self.host.now - self._started_at
                )
        tracing = self._tracing
        if tracing is not None:
            tracer = tracing.tracer
            tracer.event(
                "bin.decide",
                self.host.replica_id,
                self.host.now,
                round=self.round,
                value=value,
                **self._trace_attrs,
            )
            if self._span is not None:
                tracer.finish(self._span, self.host.now)
        decide_vote = make_vote(
            self.host, self.context, 0, VoteKind.DECIDE, value_digest(value)
        )
        self.collected_votes.append(decide_vote)
        if rebroadcast:
            self.host.emit(
                self.topic,
                self.DECIDE,
                {
                    "value": value,
                    "certificate": certificate.to_payload(),
                    "vote": decide_vote.to_payload(),
                },
            )
        self.on_decide(self.context, value, certificate)


def _digest_to_value(digest: str) -> int:
    """Map a binary-value digest back to 0/1 (digests are from a 2-element set)."""
    return 1 if digest == value_digest(1) else 0
