"""Signed votes and quorum certificates.

Polygraph-style accountability works because every step that can influence a
decision is a *signed vote*: a replica signs the tuple (context, round, kind,
value).  A :class:`Certificate` bundles a quorum (``ceil(2|C|/3)``) of such
votes for the same value; conflicting certificates are the raw material from
which proofs of fraud are extracted (:mod:`repro.consensus.proofs`).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import InvalidCertificateError
from repro.common.types import ReplicaId, quorum_size
from repro.crypto.signatures import SignedPayload, payload_digest

#: Canonical-payload digests of votes, keyed by the vote identity tuple
#: ``(context, round, kind, value_digest)``.  Recipients rebuild their own
#: :class:`SignedVote` objects from a shared broadcast body, so a per-object
#: memo alone would re-encode the same payload once per recipient; the
#: module-level map makes each distinct vote payload canonicalised exactly
#: once per process.  Content-addressed, so sharing across runs is safe.
_VOTE_DIGESTS: Dict[Tuple[str, int, str, str], str] = {}

#: Per-signer signature validity of certificates, keyed by certificate
#: content (see :meth:`Certificate.cache_key`).  A certificate is re-verified
#: by every recipient and again by the exclusion consensus against shrinking
#: committees; with the validity map cached, each re-check is set arithmetic.
_CERT_VALIDITY: Dict[Tuple[Any, ...], Dict[ReplicaId, bool]] = {}

#: Bound for both memo tables — far above one run's distinct votes, so the
#: reset only triggers in long-lived sweep workers (where re-computing is
#: merely a warm-up cost, never a correctness issue).
_MEMO_MAX = 1 << 20


def _clear_memos() -> None:
    """Drop the module-level memo tables (exposed for tests)."""
    _VOTE_DIGESTS.clear()
    _CERT_VALIDITY.clear()


class VoteKind(enum.Enum):
    """The signed message kinds that participate in accountability.

    ``BVAL`` votes are deliberately excluded from equivocation checks: the
    BV-broadcast of the binary consensus legitimately lets an honest replica
    echo both binary values in the same round.
    """

    RBC_INIT = "rbc-init"
    RBC_ECHO = "rbc-echo"
    RBC_READY = "rbc-ready"
    AUX = "aux"
    DECIDE = "decide"
    PROPOSAL = "proposal"

    @staticmethod
    def equivocation_checked() -> Tuple["VoteKind", ...]:
        """Kinds for which two different signed values in the same context
        constitute a proof of fraud."""
        return (
            VoteKind.RBC_INIT,
            VoteKind.RBC_ECHO,
            VoteKind.RBC_READY,
            VoteKind.AUX,
            VoteKind.DECIDE,
            VoteKind.PROPOSAL,
        )


@dataclasses.dataclass(frozen=True)
class SignedVote:
    """A vote: (context, round, kind, value) signed by ``signer``.

    ``context`` identifies the protocol instance, e.g. ``"bin:5:2"`` for the
    binary consensus of slot 2 in ASMR instance 5.  ``value_digest`` is the
    canonical hash of the voted value so that votes stay small regardless of
    the payload (a proposal of 10,000 transactions is voted on by hash).
    """

    context: str
    round: int
    kind: VoteKind
    value_digest: str
    signer: ReplicaId
    signature: SignedPayload

    def vote_payload(self) -> Dict[str, Any]:
        """The payload that was signed."""
        return vote_payload(self.context, self.round, self.kind, self.value_digest)

    def payload_digest(self) -> str:
        """Canonical digest of :meth:`vote_payload`, memoised process-wide.

        Every recipient of a broadcast vote re-derives the same digest to
        verify the signature; the memo collapses that to one encoding per
        distinct vote (see ``_VOTE_DIGESTS``).
        """
        return _vote_digest(self.context, self.round, self.kind, self.value_digest)

    def conflicts_with(self, other: "SignedVote") -> bool:
        """True when the two votes prove equivocation by the same signer."""
        return (
            self.signer == other.signer
            and self.context == other.context
            and self.round == other.round
            and self.kind == other.kind
            and self.value_digest != other.value_digest
        )

    def to_payload(self) -> Dict[str, Any]:
        """Wire payload of the vote, built once per object.

        ``_send_echo``/``_send_ready`` previously re-built (and canonical
        encoding re-encoded) this dict for every broadcast fan-out; the memo
        makes it one construction per vote.  Callers must treat the returned
        dict as immutable — message bodies already are.
        """
        cached = self.__dict__.get("_payload")
        if cached is None:
            cached = {
                "context": self.context,
                "round": self.round,
                "kind": self.kind.value,
                "value_digest": self.value_digest,
                "signer": self.signer,
                "signature": self.signature.to_payload(),
            }
            object.__setattr__(self, "_payload", cached)
        return cached


def vote_payload(context: Any, round_number: int, kind: VoteKind, value_digest: str) -> Dict[str, Any]:
    """The canonical payload a replica signs when voting.

    ``context`` may be a string or a :class:`~repro.network.topic.Topic`; the
    signed form is always the canonical string so votes stay wire-stable.
    """
    return {
        "context": str(context),
        "round": round_number,
        "kind": kind.value,
        "value_digest": value_digest,
    }


def _vote_digest(
    context: str, round_number: int, kind: VoteKind, value_digest: str
) -> str:
    """Memoised canonical digest of a vote payload."""
    key = (context, round_number, kind.value, value_digest)
    digest = _VOTE_DIGESTS.get(key)
    if digest is None:
        if len(_VOTE_DIGESTS) >= _MEMO_MAX:
            _VOTE_DIGESTS.clear()
        digest = payload_digest(
            vote_payload(context, round_number, kind, value_digest)
        )
        _VOTE_DIGESTS[key] = digest
    return digest


def make_vote(
    host: Any, context: Any, round_number: int, kind: VoteKind, value_digest: str
) -> SignedVote:
    """Create a vote signed by ``host`` (any object exposing ``sign`` and ``replica_id``).

    ``context`` accepts a string or a Topic; votes carry the canonical string.
    """
    payload = vote_payload(context, round_number, kind, value_digest)
    signature = host.sign(payload)
    return SignedVote(
        context=str(context),
        round=round_number,
        kind=kind,
        value_digest=value_digest,
        signer=host.replica_id,
        signature=signature,
    )


def verify_vote(vote: SignedVote, verifier: Any) -> bool:
    """Verify a vote's signature (``verifier`` exposes ``verify(payload, signed)``).

    Also rejects votes whose embedded signer does not match the signature's
    signer — a Byzantine replica cannot attribute its vote to someone else.

    Verifiers exposing the digest-first entry point (``verify_digest``) skip
    re-encoding the vote payload: the memoised canonical digest plus the key
    registry's verified-signature cache turn the fan-out re-verification of a
    vote into two dict probes.
    """
    if vote.signature.signer != vote.signer:
        return False
    verify_digest = getattr(verifier, "verify_digest", None)
    if verify_digest is not None:
        return verify_digest(vote.payload_digest(), vote.signature)
    return verifier.verify(vote.vote_payload(), vote.signature)


@dataclasses.dataclass
class Certificate:
    """A quorum of signed votes for the same (context, round, kind, value)."""

    context: str
    round: int
    kind: VoteKind
    value_digest: str
    votes: Tuple[SignedVote, ...]

    def signers(self) -> Set[ReplicaId]:
        """The distinct replicas whose votes are included."""
        return {vote.signer for vote in self.votes}

    def to_payload(self) -> Dict[str, Any]:
        return {
            "context": self.context,
            "round": self.round,
            "kind": self.kind.value,
            "value_digest": self.value_digest,
            "votes": [vote.to_payload() for vote in self.votes],
        }

    def _content_key(self) -> Tuple[Any, ...]:
        """Content identity of the certificate, memoised on the instance.

        Covers every input of signature verification (the certificate step,
        each vote's claimed signer and raw signature), so two certificates
        rebuilt from the same wire payload by different recipients share one
        cache entry.
        """
        key = self.__dict__.get("_cache_key")
        if key is None:
            key = (
                self.context,
                self.round,
                self.kind.value,
                self.value_digest,
                tuple(
                    (
                        vote.signer,
                        vote.signature.signer,
                        vote.signature.payload_hash,
                        vote.signature.signature,
                        vote.signature.scheme,
                    )
                    for vote in self.votes
                ),
            )
            self._cache_key = key
        return key

    def _validity_map(self, verifier: Any) -> Dict[ReplicaId, bool]:
        """Per-signer signature validity, verified once per deployment.

        The map is independent of the committee a later check restricts to —
        validity is a property of the deployment's PKI, shared by every host
        of a run — so a certificate that already passed against a superset
        committee is re-checked against a shrunken one with set arithmetic
        alone.  Entries are shared across recipients through ``_CERT_VALIDITY``
        keyed by the verifier's registry token plus the certificate content;
        verifiers without a token (minimal test doubles) still get the
        per-instance memo.
        """
        token = getattr(verifier, "verification_token", None)
        cached = self.__dict__.get("_validity")
        if cached is not None and self.__dict__.get("_validity_token") == token:
            return cached
        global_key: Optional[Tuple[Any, ...]] = None
        validity: Optional[Dict[ReplicaId, bool]] = None
        if token is not None:
            global_key = (token,) + self._content_key()
            validity = _CERT_VALIDITY.get(global_key)
        if validity is None:
            validity = {}
            for vote in self.votes:
                ok = verify_vote(vote, verifier)
                previous = validity.get(vote.signer)
                # A signer appearing twice must have *all* its votes valid —
                # matching the vote-order scan this map replaces.
                validity[vote.signer] = ok if previous is None else (previous and ok)
            if global_key is not None:
                if len(_CERT_VALIDITY) >= _MEMO_MAX:
                    _CERT_VALIDITY.clear()
                _CERT_VALIDITY[global_key] = validity
        self._validity = validity
        self._validity_token = token
        return validity

    def verify(self, verifier: Any, committee: Sequence[ReplicaId]) -> None:
        """Check quorum size and every signature against ``committee``.

        Raises :class:`InvalidCertificateError` on any failure.  The committee
        argument matters: the exclusion consensus re-checks certificates
        against a shrinking committee (Alg. 1 lines 31–36).  Signature
        validity is memoised (:meth:`_validity_map`), so those re-checks cost
        set membership tests, not signature verifications.
        """
        committee_set = set(committee)
        needed = quorum_size(len(committee_set))
        for vote in self.votes:
            if (
                vote.context != self.context
                or vote.round != self.round
                or vote.kind != self.kind
                or vote.value_digest != self.value_digest
            ):
                raise InvalidCertificateError(
                    f"certificate for {self.context} mixes unrelated votes"
                )
        validity = self._validity_map(verifier)
        valid_signers = 0
        for signer, ok in validity.items():
            if signer not in committee_set:
                continue
            if not ok:
                raise InvalidCertificateError(
                    f"certificate for {self.context} contains an invalid "
                    f"signature from {signer}"
                )
            valid_signers += 1
        if valid_signers < needed:
            raise InvalidCertificateError(
                f"certificate for {self.context} has {valid_signers} valid "
                f"signers, needs {needed}"
            )

    def is_valid(self, verifier: Any, committee: Sequence[ReplicaId]) -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify(verifier, committee)
        except InvalidCertificateError:
            return False
        return True

    def conflicts_with(self, other: "Certificate") -> bool:
        """True when the two certificates support different values for the same step."""
        return (
            self.context == other.context
            and self.round == other.round
            and self.kind == other.kind
            and self.value_digest != other.value_digest
        )

    @staticmethod
    def from_votes(votes: Iterable[SignedVote]) -> "Certificate":
        """Bundle votes (all for the same step and value) into a certificate."""
        votes = tuple(votes)
        if not votes:
            raise InvalidCertificateError("cannot build a certificate from no votes")
        first = votes[0]
        # One vote per signer: keep the first occurrence deterministically.
        unique: Dict[ReplicaId, SignedVote] = {}
        for vote in votes:
            unique.setdefault(vote.signer, vote)
        return Certificate(
            context=first.context,
            round=first.round,
            kind=first.kind,
            value_digest=first.value_digest,
            votes=tuple(unique[signer] for signer in sorted(unique)),
        )


def certificate_from_payload(payload: Dict[str, Any]) -> Certificate:
    """Rebuild a certificate from its wire payload (inverse of ``to_payload``)."""
    votes = tuple(vote_from_payload(entry) for entry in payload["votes"])
    return Certificate(
        context=payload["context"],
        round=payload["round"],
        kind=VoteKind(payload["kind"]),
        value_digest=payload["value_digest"],
        votes=votes,
    )


def vote_from_payload(payload: Dict[str, Any]) -> SignedVote:
    """Rebuild a signed vote from its wire payload."""
    signature = payload["signature"]
    signed = SignedPayload(
        signer=signature["signer"],
        payload_hash=signature["payload_hash"],
        signature=signature["signature"],
        scheme=signature["scheme"],
    )
    return SignedVote(
        context=payload["context"],
        round=payload["round"],
        kind=VoteKind(payload["kind"]),
        value_digest=payload["value_digest"],
        signer=payload["signer"],
        signature=signed,
    )
