"""Signed votes and quorum certificates.

Polygraph-style accountability works because every step that can influence a
decision is a *signed vote*: a replica signs the tuple (context, round, kind,
value).  A :class:`Certificate` bundles a quorum (``ceil(2|C|/3)``) of such
votes for the same value; conflicting certificates are the raw material from
which proofs of fraud are extracted (:mod:`repro.consensus.proofs`).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import InvalidCertificateError
from repro.common.types import ReplicaId, quorum_size
from repro.crypto.signatures import SignedPayload


class VoteKind(enum.Enum):
    """The signed message kinds that participate in accountability.

    ``BVAL`` votes are deliberately excluded from equivocation checks: the
    BV-broadcast of the binary consensus legitimately lets an honest replica
    echo both binary values in the same round.
    """

    RBC_INIT = "rbc-init"
    RBC_ECHO = "rbc-echo"
    RBC_READY = "rbc-ready"
    AUX = "aux"
    DECIDE = "decide"
    PROPOSAL = "proposal"

    @staticmethod
    def equivocation_checked() -> Tuple["VoteKind", ...]:
        """Kinds for which two different signed values in the same context
        constitute a proof of fraud."""
        return (
            VoteKind.RBC_INIT,
            VoteKind.RBC_ECHO,
            VoteKind.RBC_READY,
            VoteKind.AUX,
            VoteKind.DECIDE,
            VoteKind.PROPOSAL,
        )


@dataclasses.dataclass(frozen=True)
class SignedVote:
    """A vote: (context, round, kind, value) signed by ``signer``.

    ``context`` identifies the protocol instance, e.g. ``"bin:5:2"`` for the
    binary consensus of slot 2 in ASMR instance 5.  ``value_digest`` is the
    canonical hash of the voted value so that votes stay small regardless of
    the payload (a proposal of 10,000 transactions is voted on by hash).
    """

    context: str
    round: int
    kind: VoteKind
    value_digest: str
    signer: ReplicaId
    signature: SignedPayload

    def vote_payload(self) -> Dict[str, Any]:
        """The payload that was signed."""
        return vote_payload(self.context, self.round, self.kind, self.value_digest)

    def conflicts_with(self, other: "SignedVote") -> bool:
        """True when the two votes prove equivocation by the same signer."""
        return (
            self.signer == other.signer
            and self.context == other.context
            and self.round == other.round
            and self.kind == other.kind
            and self.value_digest != other.value_digest
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "context": self.context,
            "round": self.round,
            "kind": self.kind.value,
            "value_digest": self.value_digest,
            "signer": self.signer,
            "signature": self.signature.to_payload(),
        }


def vote_payload(context: Any, round_number: int, kind: VoteKind, value_digest: str) -> Dict[str, Any]:
    """The canonical payload a replica signs when voting.

    ``context`` may be a string or a :class:`~repro.network.topic.Topic`; the
    signed form is always the canonical string so votes stay wire-stable.
    """
    return {
        "context": str(context),
        "round": round_number,
        "kind": kind.value,
        "value_digest": value_digest,
    }


def make_vote(
    host: Any, context: Any, round_number: int, kind: VoteKind, value_digest: str
) -> SignedVote:
    """Create a vote signed by ``host`` (any object exposing ``sign`` and ``replica_id``).

    ``context`` accepts a string or a Topic; votes carry the canonical string.
    """
    payload = vote_payload(context, round_number, kind, value_digest)
    signature = host.sign(payload)
    return SignedVote(
        context=str(context),
        round=round_number,
        kind=kind,
        value_digest=value_digest,
        signer=host.replica_id,
        signature=signature,
    )


def verify_vote(vote: SignedVote, verifier: Any) -> bool:
    """Verify a vote's signature (``verifier`` exposes ``verify(payload, signed)``).

    Also rejects votes whose embedded signer does not match the signature's
    signer — a Byzantine replica cannot attribute its vote to someone else.
    """
    if vote.signature.signer != vote.signer:
        return False
    return verifier.verify(vote.vote_payload(), vote.signature)


@dataclasses.dataclass
class Certificate:
    """A quorum of signed votes for the same (context, round, kind, value)."""

    context: str
    round: int
    kind: VoteKind
    value_digest: str
    votes: Tuple[SignedVote, ...]

    def signers(self) -> Set[ReplicaId]:
        """The distinct replicas whose votes are included."""
        return {vote.signer for vote in self.votes}

    def to_payload(self) -> Dict[str, Any]:
        return {
            "context": self.context,
            "round": self.round,
            "kind": self.kind.value,
            "value_digest": self.value_digest,
            "votes": [vote.to_payload() for vote in self.votes],
        }

    def verify(self, verifier: Any, committee: Sequence[ReplicaId]) -> None:
        """Check quorum size and every signature against ``committee``.

        Raises :class:`InvalidCertificateError` on any failure.  The committee
        argument matters: the exclusion consensus re-checks certificates
        against a shrinking committee (Alg. 1 lines 31–36).
        """
        committee_set = set(committee)
        needed = quorum_size(len(committee_set))
        valid_signers: Set[ReplicaId] = set()
        for vote in self.votes:
            if (
                vote.context != self.context
                or vote.round != self.round
                or vote.kind != self.kind
                or vote.value_digest != self.value_digest
            ):
                raise InvalidCertificateError(
                    f"certificate for {self.context} mixes unrelated votes"
                )
            if vote.signer not in committee_set:
                continue
            if not verify_vote(vote, verifier):
                raise InvalidCertificateError(
                    f"certificate for {self.context} contains an invalid "
                    f"signature from {vote.signer}"
                )
            valid_signers.add(vote.signer)
        if len(valid_signers) < needed:
            raise InvalidCertificateError(
                f"certificate for {self.context} has {len(valid_signers)} valid "
                f"signers, needs {needed}"
            )

    def is_valid(self, verifier: Any, committee: Sequence[ReplicaId]) -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify(verifier, committee)
        except InvalidCertificateError:
            return False
        return True

    def conflicts_with(self, other: "Certificate") -> bool:
        """True when the two certificates support different values for the same step."""
        return (
            self.context == other.context
            and self.round == other.round
            and self.kind == other.kind
            and self.value_digest != other.value_digest
        )

    @staticmethod
    def from_votes(votes: Iterable[SignedVote]) -> "Certificate":
        """Bundle votes (all for the same step and value) into a certificate."""
        votes = tuple(votes)
        if not votes:
            raise InvalidCertificateError("cannot build a certificate from no votes")
        first = votes[0]
        # One vote per signer: keep the first occurrence deterministically.
        unique: Dict[ReplicaId, SignedVote] = {}
        for vote in votes:
            unique.setdefault(vote.signer, vote)
        return Certificate(
            context=first.context,
            round=first.round,
            kind=first.kind,
            value_digest=first.value_digest,
            votes=tuple(unique[signer] for signer in sorted(unique)),
        )


def certificate_from_payload(payload: Dict[str, Any]) -> Certificate:
    """Rebuild a certificate from its wire payload (inverse of ``to_payload``)."""
    votes = tuple(vote_from_payload(entry) for entry in payload["votes"])
    return Certificate(
        context=payload["context"],
        round=payload["round"],
        kind=VoteKind(payload["kind"]),
        value_digest=payload["value_digest"],
        votes=votes,
    )


def vote_from_payload(payload: Dict[str, Any]) -> SignedVote:
    """Rebuild a signed vote from its wire payload."""
    signature = payload["signature"]
    signed = SignedPayload(
        signer=signature["signer"],
        payload_hash=signature["payload_hash"],
        signature=signature["signature"],
        scheme=signature["scheme"],
    )
    return SignedVote(
        context=payload["context"],
        round=payload["round"],
        kind=VoteKind(payload["kind"]),
        value_digest=payload["value_digest"],
        signer=payload["signer"],
        signature=signed,
    )
