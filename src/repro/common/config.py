"""Configuration dataclasses shared by the simulator, protocols and experiments.

The paper evaluates ZLB under a *deceitful* adversary parameterised by the
number of deceitful replicas ``d`` and benign replicas ``q`` (§3.2).  The
admissible region is either the classic ``f < n/3`` or ``d < 5n/9`` together
with ``3q + d < n``.  :class:`FaultConfig` validates those constraints so an
experiment cannot silently run outside the model the paper analyses.
"""

from __future__ import annotations

import dataclasses
import math
import os
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.types import FaultKind, deceitful_ratio


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Describes the fault mix of a committee of ``n`` replicas.

    Attributes:
        n: committee size.
        deceitful: number of deceitful replicas ``d``.
        benign: number of benign replicas ``q``.
        enforce_model: when True (default), reject configurations outside the
            paper's admissible region.  Experiments that deliberately explore
            larger coalitions (e.g. §5.3) may disable enforcement.
    """

    n: int
    deceitful: int = 0
    benign: int = 0
    enforce_model: bool = True

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError(f"committee size must be positive, got {self.n}")
        if self.deceitful < 0 or self.benign < 0:
            raise ConfigurationError("fault counts cannot be negative")
        if self.deceitful + self.benign > self.n:
            raise ConfigurationError(
                f"d + q = {self.deceitful + self.benign} exceeds n = {self.n}"
            )
        if self.enforce_model and not self.is_admissible():
            raise ConfigurationError(
                "fault configuration outside the paper's model: need either "
                f"f < n/3 or (d < 5n/9 and 3q + d < n); got n={self.n}, "
                f"d={self.deceitful}, q={self.benign}"
            )

    @property
    def faulty(self) -> int:
        """Total number of faulty replicas ``f = d + q``."""
        return self.deceitful + self.benign

    @property
    def honest(self) -> int:
        """Number of honest replicas."""
        return self.n - self.faulty

    @property
    def delta(self) -> float:
        """The deceitful ratio ``d / n``."""
        return deceitful_ratio(self.deceitful, self.n)

    def is_admissible(self) -> bool:
        """Return True when the configuration satisfies the paper's assumptions."""
        classic = self.faulty < self.n / 3
        extended = (self.deceitful < 5 * self.n / 9) and (
            3 * self.benign + self.deceitful < self.n
        )
        return classic or extended

    def consensus_safe(self) -> bool:
        """Return True when plain consensus is safe, i.e. ``f < n/3``."""
        return self.faulty < self.n / 3

    def fault_of(self, replica: int) -> FaultKind:
        """Return the fault kind of ``replica`` under the canonical assignment.

        Replicas ``0 .. d-1`` are deceitful, ``d .. d+q-1`` benign and the rest
        honest.  Experiments that need a different placement build their own
        mapping; this canonical assignment keeps unit tests deterministic.
        """
        if replica < 0 or replica >= self.n:
            raise ConfigurationError(f"replica {replica} outside committee of {self.n}")
        if replica < self.deceitful:
            return FaultKind.DECEITFUL
        if replica < self.deceitful + self.benign:
            return FaultKind.BENIGN
        return FaultKind.HONEST

    @staticmethod
    def paper_attack(n: int, benign: int = 0) -> "FaultConfig":
        """The attack configuration used throughout §5: ``d = ceil(5n/9) - 1``."""
        deceitful = math.ceil(5 * n / 9) - 1
        return FaultConfig(n=n, deceitful=deceitful, benign=benign)


@dataclasses.dataclass(frozen=True)
class ProtocolConfig:
    """Protocol-level knobs shared by ZLB and the baselines.

    Attributes:
        batch_size: transactions per proposal (the paper uses 10,000).
        confirmation_enabled: run the optional confirmation phase (§4.1.1 ②).
        accountability_enabled: attach certificates to decisions (Polygraph).
        pof_threshold: number of PoFs required to start a membership change;
            ``None`` means the paper default ``ceil(n/3)``.
        max_pending_instances: how many consensus instances may run
            concurrently with confirmation/reconciliation of earlier ones.
    """

    batch_size: int = 10_000
    confirmation_enabled: bool = True
    accountability_enabled: bool = True
    pof_threshold: Optional[int] = None
    max_pending_instances: int = 4

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.pof_threshold is not None and self.pof_threshold <= 0:
            raise ConfigurationError("pof_threshold must be positive when set")
        if self.max_pending_instances <= 0:
            raise ConfigurationError("max_pending_instances must be positive")


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """Global simulation parameters.

    Attributes:
        seed: seed for every random number stream in the run.
        max_time: simulated-time horizon in seconds; events after it are dropped.
        max_events: hard cap on processed events, a guard against livelock.
    """

    seed: int = 0
    max_time: float = 3_600.0
    max_events: int = 5_000_000

    def __post_init__(self) -> None:
        if self.max_time <= 0:
            raise ConfigurationError("max_time must be positive")
        if self.max_events <= 0:
            raise ConfigurationError("max_events must be positive")


def experiment_scale(default: str = "small") -> str:
    """Return the experiment scale ("small" or "full") from ``REPRO_SCALE``.

    The paper's sweeps run with up to 100 replicas; the reduced sweeps keep the
    default test/benchmark run fast (see DESIGN.md §5).
    """
    value = os.environ.get("REPRO_SCALE", default).strip().lower()
    if value not in ("small", "full"):
        raise ConfigurationError(
            f"REPRO_SCALE must be 'small' or 'full', got {value!r}"
        )
    return value
