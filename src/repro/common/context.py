"""A reusable module-level activation scope.

Both the telemetry registry and the tracing runtime follow the same pattern: a
module-level *current value* that deep call stacks read at construction time
(``NetworkSimulator`` defaults its ``telemetry``/``tracing`` arguments to it)
and that a context manager installs/restores around a scenario cell.  This
module factors the pattern out so the two subsystems — and any future one —
share one implementation with identical nesting and shielding semantics:

* ``scope.current()`` returns the installed value or ``None`` (disabled);
* ``scope.activate(value)`` installs ``value`` for the enclosed block and
  restores the previous value on exit, exceptions included;
* ``scope.activate(None)`` explicitly *shields* the block, disabling the
  subsystem even when an outer activation is in effect.

The simulation is single-threaded by design, so a plain module-level slot is
sufficient (no thread-local indirection on the hot ``current()`` path).
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Optional


class ActivationScope:
    """One module-level current-value slot with context-managed installs."""

    __slots__ = ("name", "_current")

    def __init__(self, name: str):
        self.name = name
        self._current: Optional[Any] = None

    def current(self) -> Optional[Any]:
        """The active value installed by :meth:`activate`, or ``None``."""
        return self._current

    @contextlib.contextmanager
    def activate(self, value: Optional[Any]) -> Iterator[Optional[Any]]:
        """Install ``value`` for the enclosed block; restore the previous one.

        ``activate(None)`` explicitly disables the subsystem for the block
        (useful to shield a sub-run from an outer activation).
        """
        previous = self._current
        self._current = value
        try:
            yield value
        finally:
            self._current = previous
