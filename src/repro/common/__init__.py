"""Shared types, errors and configuration used across the ZLB reproduction.

The modules in this package are deliberately free of any protocol logic: they
define the vocabulary (replica identifiers, round numbers, fault kinds), the
exception hierarchy and the configuration dataclasses that the rest of the
library builds on.
"""

from repro.common.types import (
    FaultKind,
    Phase,
    ReplicaId,
    ReplicaSet,
    deceitful_ratio,
    max_branches,
    quorum_size,
    recovery_threshold,
)
from repro.common.errors import (
    ConfigurationError,
    InvalidCertificateError,
    InvalidSignatureError,
    InvalidTransactionError,
    LedgerError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.common.config import FaultConfig, ProtocolConfig, SimulationConfig

__all__ = [
    "FaultKind",
    "Phase",
    "ReplicaId",
    "ReplicaSet",
    "deceitful_ratio",
    "max_branches",
    "quorum_size",
    "recovery_threshold",
    "ConfigurationError",
    "InvalidCertificateError",
    "InvalidSignatureError",
    "InvalidTransactionError",
    "LedgerError",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "FaultConfig",
    "ProtocolConfig",
    "SimulationConfig",
]
