"""Stdlib logging wired through the simulated stack.

Every :class:`~repro.network.simulator.Process` owns a ``log`` attribute — a
:class:`ReplicaLogAdapter` that prefixes each record with the replica id, the
current *simulated* time and the active trace context (when the tracing layer
is enabled), so interleaved log lines from many replicas stay attributable::

    WARNING repro.replica [t=3.141593s r=4 trace=t2:s17] unrouted message ...

Protocol code logs only at cold sites (unrouted messages, disagreements,
membership changes, invariant violations); the default level of the ``repro``
logger hierarchy is WARNING, so an un-configured run pays one ``isEnabledFor``
check per suppressed call and nothing else.

:func:`configure_logging` backs the scenario CLI's ``--log-level`` flag; it is
idempotent and only ever touches the ``repro`` logger, never the root logger,
so embedding applications keep control of their own logging.
"""

from __future__ import annotations

import logging
from typing import Any, Optional, Tuple

#: Root of the project's logger hierarchy.
ROOT_LOGGER_NAME = "repro"


def get_logger(name: str = ROOT_LOGGER_NAME) -> logging.Logger:
    """A logger under the project hierarchy (plain :func:`logging.getLogger`)."""
    return logging.getLogger(name)


class ReplicaLogAdapter(logging.LoggerAdapter):
    """Injects replica id, simulated time and active trace id into records.

    The adapter reads its context *at emit time* (not at construction): the
    simulated clock advances, and the active trace context changes with every
    dispatched message, so both must be sampled when the record is made.
    """

    def __init__(self, logger: logging.Logger, process: Any):
        super().__init__(logger, {})
        self._process = process

    def process(self, msg: str, kwargs: Any) -> Tuple[str, Any]:
        proc = self._process
        transport = getattr(proc, "_transport", None)
        now = transport.now if transport is not None else 0.0
        trace = ""
        tracing = getattr(proc, "tracing", None)
        if tracing is not None:
            ctx = tracing.tracer.current_ctx
            if ctx is not None:
                trace = f" trace=t{ctx.trace_id}:s{ctx.span_id}"
        return (
            f"[t={now:.6f}s r={proc.replica_id}{trace}] {msg}",
            kwargs,
        )


def replica_logger(
    process: Any, name: str = f"{ROOT_LOGGER_NAME}.replica"
) -> ReplicaLogAdapter:
    """The per-process adapter installed as ``Process.log``."""
    return ReplicaLogAdapter(logging.getLogger(name), process)


def configure_logging(
    level: Optional[Any] = None, stream: Optional[Any] = None
) -> None:
    """Configure the ``repro`` logger for CLI runs (``--log-level``).

    ``level`` accepts a name (``"debug"``, ``"INFO"``) or a numeric level;
    ``None`` leaves logging untouched.  A stream handler is attached once —
    repeated calls only adjust the level.
    """
    if level is None:
        return
    if isinstance(level, int):
        numeric = level
    else:
        numeric = logging.getLevelName(str(level).upper())
        if not isinstance(numeric, int):
            raise ValueError(f"unknown log level {level!r}")
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(numeric)
    if not logger.handlers:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s %(message)s")
        )
        logger.addHandler(handler)
