"""Exception hierarchy for the ZLB reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without swallowing unrelated exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when a simulation or protocol configuration is inconsistent."""


class ProtocolError(ReproError):
    """Raised when a protocol invariant is violated at runtime."""


class InvalidSignatureError(ProtocolError):
    """Raised when a signature fails verification."""


class InvalidCertificateError(ProtocolError):
    """Raised when a certificate does not carry a valid quorum of signatures."""


class LedgerError(ReproError):
    """Base class for ledger-level failures (UTXO, blocks, merges)."""


class InvalidTransactionError(LedgerError):
    """Raised when a transaction is malformed, unsigned or double-spending."""


class InsufficientDepositError(LedgerError):
    """Raised when a deposit cannot cover a required refund."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator is used incorrectly."""
