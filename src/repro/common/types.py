"""Core value types used throughout the ZLB reproduction.

The paper (§2, §3) reasons about a committee of ``n`` replicas identified by
integers, quorum thresholds of ``2n/3`` and recovery thresholds of ``n/3``.
This module centralises those computations so every protocol uses exactly the
same arithmetic (ceilings matter: a quorum is ``ceil(2n/3)`` and the recovery
threshold is ``ceil(n/3)``).
"""

from __future__ import annotations

import enum
import math
from typing import FrozenSet, Iterable

# A replica is identified by a small non-negative integer.  Using a plain int
# keeps messages compact and hashable; the PKI (repro.crypto.keys) maps the id
# to a public key.
ReplicaId = int

# An immutable set of replica identifiers, e.g. a committee or a coalition.
ReplicaSet = FrozenSet[ReplicaId]


class FaultKind(enum.Enum):
    """Failure classes of the deceitful failure model (paper §3.2).

    * ``HONEST`` — follows the protocol.
    * ``DECEITFUL`` — sends protocol-violating messages (equivocation) to try
      to create a disagreement; keeps participating otherwise.
    * ``BENIGN`` — commits non-deceitful Byzantine faults (e.g. stays mute or
      sends stale messages); never equivocates.
    """

    HONEST = "honest"
    DECEITFUL = "deceitful"
    BENIGN = "benign"


class Phase(enum.Enum):
    """The five ASMR phases of Figure 2 in the paper."""

    CONSENSUS = "consensus"
    CONFIRMATION = "confirmation"
    EXCLUSION = "exclusion"
    INCLUSION = "inclusion"
    RECONCILIATION = "reconciliation"


def quorum_size(n: int) -> int:
    """Return the certificate/quorum threshold ``ceil(2n/3)`` for ``n`` replicas."""
    if n <= 0:
        raise ValueError(f"committee size must be positive, got {n}")
    return math.ceil(2 * n / 3)


def recovery_threshold(n: int) -> int:
    """Return ``ceil(n/3)``, the number of PoFs needed to start a membership change.

    The paper (Alg. 1, line 12) sets ``f_d = ceil(n/3)`` as the default
    threshold of proofs of fraud required before honest replicas trigger the
    exclusion consensus.
    """
    if n <= 0:
        raise ValueError(f"committee size must be positive, got {n}")
    return math.ceil(n / 3)


def byzantine_tolerance(n: int) -> int:
    """Return the classic bound: the largest ``f`` with ``f < n/3``."""
    if n <= 0:
        raise ValueError(f"committee size must be positive, got {n}")
    return math.ceil(n / 3) - 1


def deceitful_ratio(deceitful: int, n: int) -> float:
    """Return the deceitful ratio ``delta = d / n`` (paper §3.2)."""
    if n <= 0:
        raise ValueError(f"committee size must be positive, got {n}")
    if deceitful < 0 or deceitful > n:
        raise ValueError(f"deceitful count {deceitful} outside [0, {n}]")
    return deceitful / n


def max_branches(n: int, deceitful: int, benign: int = 0) -> int:
    """Maximum number of branches a coalition can create (paper §B, citing [57]).

    The bound is ``a <= (n - (f - q)) / (ceil(2n/3) - (f - q))`` where
    ``f - q = d`` is the number of deceitful replicas.  When the denominator is
    not positive the coalition can partition honest replicas arbitrarily; we
    return the number of honest replicas as a conservative cap in that case.
    """
    if n <= 0:
        raise ValueError(f"committee size must be positive, got {n}")
    d = deceitful
    if d < 0 or benign < 0 or d + benign > n:
        raise ValueError(
            f"invalid fault counts d={deceitful} q={benign} for n={n}"
        )
    denominator = quorum_size(n) - d
    honest = n - d - benign
    if denominator <= 0:
        return max(honest, 1)
    return max(1, math.floor((n - d) / denominator))


def committee(n: int) -> ReplicaSet:
    """Return the initial committee ``{0, ..., n-1}`` as a frozen set."""
    if n <= 0:
        raise ValueError(f"committee size must be positive, got {n}")
    return frozenset(range(n))


def as_replica_set(ids: Iterable[ReplicaId]) -> ReplicaSet:
    """Normalise an iterable of replica ids into a :data:`ReplicaSet`."""
    return frozenset(int(i) for i in ids)
