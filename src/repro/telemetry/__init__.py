"""Zero-overhead-when-disabled telemetry and instrumentation.

The measurement instrument of the reproduction: counters, gauges, latency
histograms (p50/p95/p99 + mean/ci95) and cross-phase timelines, collected into
a per-run :class:`TelemetryRegistry` and snapshotted as plain JSON.

Design contract: instrumented code holds either a registry or ``None`` and
guards every hot path with ``if telemetry is not None`` — disabling telemetry
reduces instrumentation to a pointer comparison.  See
:mod:`repro.telemetry.core` for the primitives, :mod:`repro.telemetry.export`
for JSON/CSV exporters and :mod:`repro.telemetry.report` for the comparative
sweep reports behind ``python -m repro.scenarios report``.

Typical use::

    from repro import telemetry

    registry = telemetry.TelemetryRegistry()
    with telemetry.activate(registry):
        system = ZLBSystem.create(...)   # picks up the active registry
        system.run_instances(2)
    print(registry.snapshot()["histograms"])
"""

from repro.telemetry.core import (
    Counter,
    Gauge,
    Histogram,
    TelemetryRegistry,
    Timeline,
    activate,
    current,
    metric_key,
    protocol_group,
    split_metric_key,
)
from repro.telemetry.export import snapshot_rows, write_csv, write_json
from repro.telemetry.report import build_tables, render_report

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timeline",
    "TelemetryRegistry",
    "activate",
    "current",
    "metric_key",
    "protocol_group",
    "split_metric_key",
    "snapshot_rows",
    "write_csv",
    "write_json",
    "build_tables",
    "render_report",
]
