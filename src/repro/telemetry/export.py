"""Pluggable exporters for telemetry snapshots.

A *snapshot* is the plain dict produced by
:meth:`~repro.telemetry.core.TelemetryRegistry.snapshot`.  Exporters never
touch live metric objects, so they work identically on a registry that just
finished a run and on a snapshot replayed from a scenario result store.

Two formats:

* **JSON** — the snapshot verbatim (one object, or one object per cell when
  exporting a sweep), for programmatic consumption;
* **CSV** — the snapshot flattened into one row per metric via
  :func:`snapshot_rows`, for spreadsheets and plotting scripts.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.telemetry.core import TelemetryRegistry, split_metric_key

Snapshot = Dict[str, Any]

#: Stable CSV column order; metric-specific fields fill what applies.
CSV_COLUMNS = [
    "cell",
    "type",
    "metric",
    "labels",
    "value",
    "count",
    "mean",
    "std",
    "ci95",
    "p50",
    "p95",
    "p99",
    "min",
    "max",
]


def _as_snapshot(source: Union[TelemetryRegistry, Snapshot]) -> Snapshot:
    if isinstance(source, TelemetryRegistry):
        return source.snapshot()
    return source


def snapshot_rows(
    source: Union[TelemetryRegistry, Snapshot], cell: str = ""
) -> List[Dict[str, Any]]:
    """Flatten a snapshot into one dict row per metric.

    ``cell`` tags every row (the spec label when exporting a sweep), so rows
    from many cells concatenate into one comparable table.
    """
    snapshot = _as_snapshot(source)
    rows: List[Dict[str, Any]] = []
    for key, value in snapshot.get("counters", {}).items():
        name, labels = split_metric_key(key)
        rows.append(
            {"cell": cell, "type": "counter", "metric": name,
             "labels": _render_labels(labels), "value": value}
        )
    for key, summary in snapshot.get("gauges", {}).items():
        name, labels = split_metric_key(key)
        rows.append(
            {
                "cell": cell,
                "type": "gauge",
                "metric": name,
                "labels": _render_labels(labels),
                "value": summary.get("value"),
                "min": summary.get("min"),
                "max": summary.get("max"),
                "count": summary.get("writes"),
            }
        )
    for key, summary in snapshot.get("histograms", {}).items():
        name, labels = split_metric_key(key)
        rows.append(
            {
                "cell": cell,
                "type": "histogram",
                "metric": name,
                "labels": _render_labels(labels),
                **{
                    field: summary.get(field)
                    for field in ("count", "mean", "std", "ci95", "p50", "p95", "p99", "min", "max")
                },
            }
        )
    for key, summary in snapshot.get("timelines", {}).items():
        name, labels = split_metric_key(key)
        for mark, at in summary.get("first", {}).items():
            rows.append(
                {
                    "cell": cell,
                    "type": "timeline",
                    "metric": f"{name}.{mark}",
                    "labels": _render_labels(labels),
                    "value": at,
                }
            )
    return rows


def _render_labels(labels: Dict[str, str]) -> str:
    return ",".join(f"{key}={value}" for key, value in sorted(labels.items()))


def write_json(
    source: Union[TelemetryRegistry, Snapshot, List[Snapshot]],
    path: Union[str, os.PathLike],
    indent: Optional[int] = 2,
) -> str:
    """Write a snapshot (or a list of per-cell snapshots) as JSON."""
    if isinstance(source, list):
        payload: Any = [_as_snapshot(item) for item in source]
    else:
        payload = _as_snapshot(source)
    path = os.fspath(path)
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=True)
        handle.write("\n")
    return path


def write_csv(
    rows: Iterable[Dict[str, Any]], path: Union[str, os.PathLike]
) -> str:
    """Write flattened metric rows (see :func:`snapshot_rows`) as CSV."""
    path = os.fspath(path)
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def _ensure_parent(path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
