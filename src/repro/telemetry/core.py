"""Telemetry primitives and the per-run registry.

The subsystem follows one rule everywhere: **instrumented code holds either a
real :class:`TelemetryRegistry` or ``None``**, and every hot-path site guards
with ``if telemetry is not None``.  Disabled telemetry is therefore a single
pointer comparison — no null-object method calls, no metric allocation, no
string formatting — which is what lets the simulator, the broadcast layer and
the consensus components stay permanently instrumented.

Primitives:

* :class:`Counter` — monotonically increasing count (messages, bytes, commits);
* :class:`Gauge` — last-written value plus its observed min/max (queue depth,
  mempool occupancy);
* :class:`Histogram` — sample series summarised as count/mean/std/ci95 and
  p50/p95/p99 (per-phase latencies, round counts, certificate sizes), using
  the shared :func:`repro.analysis.metrics.percentiles` helper;
* :class:`Timeline` — ordered ``(label, time)`` marks for cross-phase stories
  such as the detection → exclusion → merge recovery of ZLB.

Metrics are identified by name plus optional low-cardinality labels, created
lazily on first touch and snapshotted into a plain JSON-serialisable dict that
the scenario :class:`~repro.scenarios.store.ResultStore` persists next to each
result row.

A module-level *current registry* (:func:`activate` / :func:`current`) lets
deep call stacks — e.g. a scenario cell runner three layers above
``ZLBSystem.create`` — enable telemetry without threading the registry through
every constructor.
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

# NOTE: this module must not import other repro packages at module level —
# the network simulator imports it, so a top-level import of e.g.
# repro.analysis would close an import cycle.  Summaries import
# repro.analysis.metrics lazily inside Histogram.snapshot instead.
# (repro.common.context is leaf-level — stdlib only — and therefore safe.)
from repro.common.context import ActivationScope

#: Labels are rendered into metric keys as ``name{k=v,k2=v2}``.
MetricKey = str


def metric_key(name: str, labels: Dict[str, Any]) -> MetricKey:
    """Canonical string key of a metric: ``name`` plus sorted labels."""
    if not labels:
        return name
    rendered = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{rendered}}}"


def split_metric_key(key: MetricKey) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`metric_key` (labels come back as strings)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for pair in rest.rstrip("}").split(","):
        if "=" in pair:
            label, _, value = pair.partition("=")
            labels[label] = value
    return name, labels


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Last-written value, plus the minimum and maximum ever written."""

    __slots__ = ("value", "min", "max", "writes")

    def __init__(self) -> None:
        self.value: Optional[float] = None
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.writes = 0

    def set(self, value: float) -> None:
        self.value = value
        self.writes += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "writes": self.writes,
        }


#: Default reservoir capacity.  At 4096 retained samples the standard error of
#: an estimated quantile ``q`` is ``sqrt(q(1-q)/4096)`` ranks — about ±0.8
#: percentile ranks at p50 and ±0.16 at p99 — well inside the run-to-run noise
#: of the latency series the registry records.
HISTOGRAM_RESERVOIR_SIZE = 4096


class Histogram:
    """A series of samples summarised as mean/ci95 and p50/p95/p99.

    Memory is bounded: up to ``capacity`` raw samples are retained exactly;
    beyond that the histogram switches to uniform reservoir sampling
    (Vitter's Algorithm R) so arbitrarily long open-loop runs hold a fixed
    ``capacity``-sized sample.  ``count``, ``mean``, ``min`` and ``max`` stay
    exact regardless (tracked incrementally); ``std``/``ci95`` and the
    p50/p95/p99 quantiles are exact until the reservoir saturates and
    unbiased estimates afterwards (see :data:`HISTOGRAM_RESERVOIR_SIZE` for
    the error bound).  The reservoir's RNG is seeded per-instance, never the
    global ``random`` state, so instrumented runs stay bit-reproducible.
    """

    __slots__ = ("samples", "capacity", "_observed", "_sum", "_min", "_max", "_rng")

    def __init__(self, capacity: int = HISTOGRAM_RESERVOIR_SIZE) -> None:
        if capacity < 1:
            raise ValueError(f"histogram capacity must be >= 1, got {capacity}")
        self.samples: List[float] = []
        self.capacity = capacity
        self._observed = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._rng: Optional[Any] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self._observed += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if len(self.samples) < self.capacity:
            self.samples.append(value)
            return
        if self._rng is None:
            import random

            self._rng = random.Random(self.capacity)
        slot = self._rng.randrange(self._observed)
        if slot < self.capacity:
            self.samples[slot] = value

    @property
    def count(self) -> int:
        """Total number of observations (not the retained-sample count)."""
        return self._observed

    def snapshot(self) -> Dict[str, float]:
        from repro.analysis.metrics import summarize_latencies

        summary = summarize_latencies(self.samples)
        # count/mean/min/max come from the exact incremental trackers; only
        # the dispersion and quantile fields are reservoir estimates.
        summary["count"] = self._observed
        if self._observed:
            summary["mean"] = self._sum / self._observed
        summary["min"] = self._min if self._min is not None else 0.0
        summary["max"] = self._max if self._max is not None else 0.0
        return summary


class Timeline:
    """Ordered ``(label, time)`` marks recording a cross-phase story.

    Multiple replicas mark the same label (every honest replica detects the
    coalition); :meth:`first` reduces that to the system-level time the event
    first happened anywhere, which is what the paper's detect/exclude/merge
    plots report.
    """

    __slots__ = ("marks",)

    def __init__(self) -> None:
        self.marks: List[Tuple[str, float]] = []

    def mark(self, label: str, at: float) -> None:
        self.marks.append((label, float(at)))

    def first(self, label: str) -> Optional[float]:
        """Earliest time ``label`` was marked, or None."""
        times = [at for mark, at in self.marks if mark == label]
        return min(times) if times else None

    def labels(self) -> List[str]:
        """Distinct labels in order of first occurrence."""
        seen: List[str] = []
        for label, _ in self.marks:
            if label not in seen:
                seen.append(label)
        return seen

    def snapshot(self) -> Dict[str, Any]:
        return {
            "first": {label: self.first(label) for label in self.labels()},
            "marks": len(self.marks),
        }


class TelemetryRegistry:
    """All metrics of one run, created lazily and snapshotted as plain JSON."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}
        self._timelines: Dict[MetricKey, Timeline] = {}

    # -- metric accessors ------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = metric_key(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = metric_key(name, labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = metric_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram()
        return histogram

    def timeline(self, name: str, **labels: Any) -> Timeline:
        key = metric_key(name, labels)
        timeline = self._timelines.get(key)
        if timeline is None:
            timeline = self._timelines[key] = Timeline()
        return timeline

    # -- scoped timing ---------------------------------------------------------

    @contextlib.contextmanager
    def phase_timer(
        self,
        name: str,
        clock: Callable[[], float] = time.perf_counter,
        **labels: Any,
    ) -> Iterator[None]:
        """Observe the duration of the enclosed block into a histogram.

        ``clock`` defaults to wall-clock; pass a simulated clock (e.g.
        ``lambda: host.now``) to time simulated phases instead.
        """
        started = clock()
        try:
            yield
        finally:
            self.histogram(name, **labels).observe(clock() - started)

    # -- snapshot --------------------------------------------------------------

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
            + len(self._timelines)
        )

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict form of every metric (JSON-serialisable, sorted keys)."""
        return {
            "counters": {
                key: self._counters[key].snapshot() for key in sorted(self._counters)
            },
            "gauges": {
                key: self._gauges[key].snapshot() for key in sorted(self._gauges)
            },
            "histograms": {
                key: self._histograms[key].snapshot()
                for key in sorted(self._histograms)
            },
            "timelines": {
                key: self._timelines[key].snapshot()
                for key in sorted(self._timelines)
            },
        }


# -- the current registry ------------------------------------------------------

#: Activation state shared with the tracing layer's equivalent scope (see
#: :mod:`repro.common.context` for the nesting/shielding semantics).
_SCOPE = ActivationScope("telemetry")


def current() -> Optional[TelemetryRegistry]:
    """The active registry installed by :func:`activate`, or ``None``.

    Instrumented constructors (``NetworkSimulator``, ``ZLBSystem.create``)
    default their ``telemetry`` argument to this, so activating a registry
    around a scenario cell instruments the whole stack it builds.
    """
    return _SCOPE.current()


def activate(registry: Optional[TelemetryRegistry]):
    """Install ``registry`` as the current registry for the enclosed block.

    ``activate(None)`` explicitly disables telemetry for the block (useful to
    shield a sub-run from an outer registry).
    """
    return _SCOPE.activate(registry)


def protocol_group(protocol: Any) -> str:
    """Low-cardinality protocol label for per-message counters.

    Protocol topics embed epochs, instances and slots
    (``("sbc", 0, 3, "rbc", 5)``, ``("asmr", "confirm", 2)``,
    ``("excl", 1, "bin", 4)``); grouping strips all of that so counters
    aggregate by protocol layer — ``sbc:rbc``, ``sbc:bin``, ``excl:rbc``,
    ``asmr:confirm`` — instead of exploding one counter per instance.

    Accepts a :class:`~repro.network.topic.Topic` (the hot path — the group
    is computed once per interned topic and cached on it) or a legacy
    protocol string.
    """
    from repro.network.topic import Topic, as_topic

    if isinstance(protocol, Topic):
        group = protocol._group
        if group is None:
            group = _group_of_segments(protocol.segments)
            protocol._group = group
        return group
    return _group_of_segments(as_topic(protocol).segments)


def _group_of_segments(segments: Tuple[Any, ...]) -> str:
    head = str(segments[0])
    # Legacy "sbc.e3" heads: the epoch is run-specific, not a layer.
    head = head.partition(".")[0]
    rest = segments[1:]
    if "rbc" in rest:
        return f"{head}:rbc"
    if "bin" in rest:
        return f"{head}:bin"
    if head == "asmr" and rest:
        return f"asmr:{rest[0]}"
    return head
