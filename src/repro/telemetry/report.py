"""Comparative telemetry reports across a scenario sweep.

Consumes the records of a :class:`~repro.scenarios.store.ResultStore` (each
holding a spec, a result row and — when the cell ran with telemetry enabled —
a snapshot) and renders aligned text tables comparing cells side by side:

* **messages by protocol** — per-protocol/kind message and byte counts from
  the network simulator;
* **latency histograms** — per-phase p50/p95/p99 + mean for every histogram
  metric (RBC echo/ready, binary consensus rounds, SBC decisions, membership
  phases);
* **timelines** — the detection → exclusion → merge marks of each cell.

This is the backend of ``python -m repro.scenarios report``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.telemetry.core import split_metric_key

Record = Dict[str, Any]
Table = Tuple[str, List[Dict[str, Any]]]


def cell_label(record: Record) -> str:
    """Compact cell identity: the spec label when available, else the hash."""
    spec = record.get("spec") or {}
    parts: List[str] = [str(record.get("family", spec.get("family", "?")))]
    if spec.get("n"):
        parts.append(f"n={spec['n']}")
    if spec.get("attack"):
        parts.append(f"attack={spec['attack']}")
        if spec.get("cross_partition_delay"):
            parts.append(f"cross={spec['cross_partition_delay']}")
    elif spec.get("delay") and spec.get("delay") != "aws":
        parts.append(f"delay={spec['delay']}")
    if spec.get("seed") is not None:
        parts.append(f"seed={spec['seed']}")
    return " ".join(parts)


def telemetry_cells(records: Iterable[Record]) -> List[Tuple[str, Dict[str, Any]]]:
    """``(label, snapshot)`` for every record that carries telemetry.

    Structurally empty snapshots — instrumented cells of model-only families
    that never build a simulator — are skipped: they contain nothing a report
    could render.
    """
    cells: List[Tuple[str, Dict[str, Any]]] = []
    for record in records:
        snapshot = record.get("telemetry")
        if snapshot and any(
            snapshot.get(section)
            for section in ("counters", "gauges", "histograms", "timelines")
        ):
            cells.append((cell_label(record), snapshot))
    return cells


def _matches(metric: str, metric_filter: Optional[str]) -> bool:
    return metric_filter is None or metric_filter in metric


def message_table(
    cells: List[Tuple[str, Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    """Per-cell, per-protocol message and byte counts."""
    rows: List[Dict[str, Any]] = []
    for label, snapshot in cells:
        counters = snapshot.get("counters", {})
        per_protocol: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for key, value in counters.items():
            name, labels = split_metric_key(key)
            if name not in ("net.messages_sent", "net.bytes_sent"):
                continue
            group = (labels.get("protocol", "?"), labels.get("kind", "?"))
            entry = per_protocol.setdefault(
                group, {"cell": label, "protocol": group[0], "kind": group[1],
                        "messages": 0, "bytes": 0}
            )
            if name == "net.messages_sent":
                entry["messages"] = int(value)
            else:
                entry["bytes"] = int(value)
        rows.extend(
            per_protocol[group] for group in sorted(per_protocol)
        )
    return rows


def counter_table(
    cells: List[Tuple[str, Dict[str, Any]]],
    metric_filter: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Per-cell event counters (commits, merges, exclusions, deliveries).

    ``net.messages_sent``/``net.bytes_sent`` are rendered by
    :func:`message_table` instead and skipped here.
    """
    rows: List[Dict[str, Any]] = []
    for label, snapshot in cells:
        for key, value in snapshot.get("counters", {}).items():
            name, _ = split_metric_key(key)
            if name in ("net.messages_sent", "net.bytes_sent"):
                continue
            if not _matches(name, metric_filter):
                continue
            rows.append({"cell": label, "counter": key, "value": value})
    rows.sort(key=lambda row: (row["counter"], row["cell"]))
    return rows


def histogram_table(
    cells: List[Tuple[str, Dict[str, Any]]],
    metric_filter: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Per-cell histogram summaries, comparable across the sweep."""
    rows: List[Dict[str, Any]] = []
    for label, snapshot in cells:
        for key, summary in snapshot.get("histograms", {}).items():
            name, labels = split_metric_key(key)
            if not _matches(name, metric_filter):
                continue
            rows.append(
                {
                    "cell": label,
                    "metric": key,
                    "count": summary.get("count", 0),
                    "mean": _fmt(summary.get("mean")),
                    "p50": _fmt(summary.get("p50")),
                    "p95": _fmt(summary.get("p95")),
                    "p99": _fmt(summary.get("p99")),
                    "max": _fmt(summary.get("max")),
                }
            )
    rows.sort(key=lambda row: (row["metric"], row["cell"]))
    return rows


def timeline_table(
    cells: List[Tuple[str, Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    """First-occurrence times of every timeline mark, per cell."""
    rows: List[Dict[str, Any]] = []
    for label, snapshot in cells:
        for key, summary in snapshot.get("timelines", {}).items():
            firsts = summary.get("first", {})
            ordered = sorted(
                (at, mark) for mark, at in firsts.items() if at is not None
            )
            for at, mark in ordered:
                rows.append(
                    {"cell": label, "timeline": key, "mark": mark,
                     "t_s": round(at, 3)}
                )
    return rows


def gauge_table(
    cells: List[Tuple[str, Dict[str, Any]]],
    metric_filter: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Per-cell gauge values (last/min/max)."""
    rows: List[Dict[str, Any]] = []
    for label, snapshot in cells:
        for key, summary in snapshot.get("gauges", {}).items():
            name, _ = split_metric_key(key)
            if not _matches(name, metric_filter):
                continue
            rows.append(
                {
                    "cell": label,
                    "metric": key,
                    "last": _fmt(summary.get("value")),
                    "min": _fmt(summary.get("min")),
                    "max": _fmt(summary.get("max")),
                    "writes": summary.get("writes", 0),
                }
            )
    rows.sort(key=lambda row: (row["metric"], row["cell"]))
    return rows


def build_tables(
    records: Iterable[Record],
    metric_filter: Optional[str] = None,
) -> List[Table]:
    """All report tables for the given records (empty tables are dropped)."""
    cells = telemetry_cells(records)
    tables: List[Table] = [
        ("messages by protocol", message_table(cells)),
        ("counters", counter_table(cells, metric_filter)),
        ("latency histograms (s)", histogram_table(cells, metric_filter)),
        ("gauges", gauge_table(cells, metric_filter)),
        ("timelines (simulated s)", timeline_table(cells)),
    ]
    return [(title, rows) for title, rows in tables if rows]


def render_report(
    records: Iterable[Record],
    metric_filter: Optional[str] = None,
) -> str:
    """Render the comparative report as aligned text tables."""
    from repro.analysis.metrics import format_table

    records = list(records)
    cells = telemetry_cells(records)
    if not cells:
        return (
            "no telemetry metrics in the store — run a simulation family with "
            "--telemetry (or ScenarioSpec(telemetry=True)) to record snapshots"
        )
    sections = [f"telemetry report — {len(cells)} instrumented cells"]
    for title, rows in build_tables(records, metric_filter):
        sections.append(f"\n== {title} ==\n{format_table(rows)}")
    return "\n".join(sections)


def _fmt(value: Optional[float]) -> Optional[float]:
    if value is None:
        return None
    return round(float(value), 4)
