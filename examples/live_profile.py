#!/usr/bin/env python3
"""Watch a small Figure 4 sweep live and print each cell's top-10 CPU report.

The run drives two attack cells through the scenario runner with the live
observability plane on:

* a :class:`~repro.obs.watch.SweepWatcher` renders an in-place progress
  table (percent of simulated time, events/sec, ETA) fed by the sampler's
  ticks — the same machinery behind
  ``python -m repro.scenarios run fig4 --obs --watch``;
* each cell's :class:`~repro.obs.profiler.HostProfiler` attributes the host
  CPU to named buckets (``dispatch:<protocol>``, ``timer``, ``sim.kernel``,
  ``crypto.verify``, ``ledger.append`` / ``ledger.merge``), printed as a
  top-10 table at the end.

Because obs is strictly observational, the cells' outcomes are byte-identical
to an unwatched run.

Run with::

    python examples/live_profile.py
"""

from repro.obs.profiler import render_report
from repro.obs.watch import SweepWatcher
from repro.scenarios import registry
from repro.scenarios.runner import ScenarioRunner


def main() -> None:
    # Two small attack cells: one per coalition attack kind.
    specs = [
        spec.with_overrides(obs=True)
        for spec in registry.expand("fig4", "small")
        if spec.n == 9 and (spec.cross_partition_delay or "") == "1000ms"
    ]
    print(f"running {len(specs)} watched fig4 cells (n=9, 1000ms cross delay)")

    watcher = SweepWatcher(total_cells=len(specs))
    report = ScenarioRunner(watch=watcher).run(specs)

    for outcome in report.outcomes:
        row = outcome.row
        print(
            f"\n{outcome.spec.label()}: disagreements={row.get('disagreements')} "
            f"committed={row.get('committed_transactions')} "
            f"wall={outcome.wall_clock_s:.1f}s"
        )
        profile = dict(outcome.obs["profile"])
        buckets = profile["buckets"]
        if len(buckets) > 10:
            profile["truncated_buckets"] = (
                profile.get("truncated_buckets", 0) + len(buckets) - 10
            )
            profile["buckets"] = buckets[:10]
        print(render_report(profile, title="top-10 host-CPU buckets"))

        totals = outcome.obs["totals"]
        print(
            f"sampler: {totals['ticks']} ticks, "
            f"{totals['events_processed']} events, "
            f"{totals['events_per_sec']:.0f} events/s overall"
        )


if __name__ == "__main__":
    main()
