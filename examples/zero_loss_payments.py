#!/usr/bin/env python3
"""Zero-loss payments: double spends are refunded from the attackers' deposits.

This example demonstrates the payment-level guarantees of Appendix B:

1. Alice tries to double-spend the same UTXO towards Bob and Carol and two
   branches of the chain each commit one of the conflicting transactions;
2. the Blockchain Manager merges the conflicting block (Algorithm 2), funding
   the conflicting input from the shared deposit so both recipients keep their
   coins — no honest participant loses anything;
3. the deposit policy of Theorem .5 tells us how large the deposit and the
   finalization blockdepth must be for this to hold in expectation.

Run with::

    python examples/zero_loss_payments.py
"""

from repro.analysis.metrics import format_table
from repro.ledger.block import Block
from repro.ledger.merge import BlockchainRecord
from repro.ledger.workload import double_spend_pair
from repro.zlb.payment import DepositPolicy, ZeroLossPaymentSystem


def demonstrate_block_merge() -> None:
    print("=== block merge (Algorithm 2) ===")
    tx_to_bob, tx_to_carol, allocations = double_spend_pair(amount=1_000_000)
    bob = tx_to_bob.outputs[0].account
    carol = tx_to_carol.outputs[0].account

    # Replica view that decided the branch paying Bob; the coalition's deposit
    # is staked up front (D = b * G).
    record = BlockchainRecord(genesis_allocations=allocations, initial_deposit=2_000_000)
    record.append_block([tx_to_bob])
    print(f"branch A committed Alice -> Bob   : Bob balance   = {record.utxos.balance(bob):>9}")

    # The conflicting branch (decided by the other partition) arrives.
    conflicting = Block(index=1, parent_hash="branch-B", transactions=(tx_to_carol,))
    outcome = record.merge_block(conflicting)
    print(f"merged branch B (Alice -> Carol)  : Carol balance = {record.utxos.balance(carol):>9}")
    print(f"conflicting inputs refunded       : {outcome.refunded_inputs} "
          f"({outcome.refunded_amount} coins taken from the deposit)")
    print(f"deposit after the merge           : {record.deposit}")
    print(f"honest loss (deposit shortfall)   : {record.deposit_shortfall()}")
    print()


def demonstrate_deposit_policy() -> None:
    print("=== deposit sizing (Theorem .5) ===")
    policy = DepositPolicy(gain_bound=1_000_000, deposit_factor=0.1,
                           finalization_blockdepth=5)
    payments = ZeroLossPaymentSystem(policy, branches=3)
    rows = []
    for rho in (0.1, 0.3, 0.5, 0.55, 0.7, 0.9):
        rows.append(
            {
                "attack success rho": rho,
                "zero loss at m=5?": payments.is_zero_loss(rho),
                "required blockdepth m": payments.required_blockdepth(rho),
                "expected flux (coins)": round(payments.expected_flux(rho)),
            }
        )
    print(format_table(rows))
    print()
    print(f"with D = G/10 and 3 branches, the configured m = 5 tolerates attacks "
          f"succeeding with probability up to {payments.tolerated_probability():.2f} per block")


if __name__ == "__main__":
    demonstrate_block_merge()
    demonstrate_deposit_policy()
