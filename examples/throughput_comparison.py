#!/usr/bin/env python3
"""Figure 3 walkthrough: ZLB vs Polygraph, HotStuff and Red Belly throughput.

Prints the calibrated phase-level model series over the paper's committee
sizes (the reproduction of Figure 3's shape) and, optionally, a measured
comparison of the actual message-level implementations at a small scale.

Run with::

    python examples/throughput_comparison.py
"""

from repro.analysis.metrics import format_table
from repro.experiments.fig3_throughput import run_fig3, run_measured_comparison


def main() -> None:
    print("=== Figure 3 (phase-level model, tx/s) ===")
    rows = run_fig3([10, 20, 30, 40, 50, 60, 70, 80, 90])
    print(format_table(rows))
    print()
    largest = rows[-1]
    print(f"at n = 90: ZLB is {largest['zlb_vs_hotstuff']}x HotStuff "
          f"(the paper reports 5.6x), Red Belly stays ahead of ZLB, and "
          f"Polygraph has fallen behind ZLB (crossover around 40 replicas).")
    print()

    print("=== measured comparison of the message-level implementations (n = 7) ===")
    measured = run_measured_comparison(n=7, transactions=120)
    table = [
        {
            "protocol": name,
            "tx/s (simulated)": round(detail["tx_per_sec"], 1),
            "tx per consensus instance": round(detail["tx_per_instance"], 1),
        }
        for name, detail in measured.items()
    ]
    print(format_table(table))
    print()
    print("SBC-style protocols (ZLB, Red Belly) decide one proposal per replica "
          "per instance; HotStuff decides a single proposal per view — the "
          "structural reason its throughput does not grow with the committee.")


if __name__ == "__main__":
    main()
