#!/usr/bin/env python3
"""Trace one Figure 4 attack cell and print its commit critical path.

The run replays the paper's binary consensus attack (n = 9, 1000 ms
cross-partition delay, seed 1) with causal tracing on: every message carries
a trace context, every protocol layer (mempool admission, RBC echo/ready,
binary rounds, commit/merge) records spans and point events, and the online
invariant monitors (agreement, validity, supply conservation, zero-loss
accounting) check the run as it happens.

Afterwards the critical-path analysis says which phase dominated
time-to-commit, per percentile — under the attack the answer is the mempool
wait: transactions stranded behind the partition sit in the mempool until
the membership change completes, while the consensus phases themselves stay
sub-second.

Run with::

    python examples/trace_critical_path.py
"""

from repro.experiments.fig4_disagreements import run_attack_cell
from repro.tracing import core as tracing_core
from repro.tracing.core import TraceRuntime
from repro.tracing.critical_path import critical_path, render_critical_path


def main() -> None:
    runtime = TraceRuntime.enabled()
    with tracing_core.activate(runtime):
        result = run_attack_cell(
            n=9, attack_kind="binary", cross_partition_delay="1000ms", seed=1
        )

    print(
        f"run: n={result.n} disagreements={result.disagreements} "
        f"committed={result.committed_transactions} recovered={result.recovered}"
    )

    # End-of-run zero-loss accounting: whatever the coalition realised must
    # be covered by what was seized from it.
    runtime.monitors.finalize(
        result.realized_gain, result.seized_deposit, result.deposit_shortfall
    )
    status = "all green" if runtime.monitors.ok else "VIOLATED"
    print(f"invariant monitors: {status}")
    for violation in runtime.monitors.violations:
        print(f"  {violation.describe()}")

    tracer = runtime.tracer
    print(
        f"traced: {tracer.trace_count()} traces, {len(tracer.spans)} spans, "
        f"{len(tracer.events)} events"
    )
    print()
    print(render_critical_path(critical_path(tracer)))


if __name__ == "__main__":
    main()
