#!/usr/bin/env python3
"""The headline scenario: a colluding majority attacks, ZLB recovers.

A coalition of d = ceil(5n/9) - 1 deceitful replicas mounts the *binary
consensus attack* of Appendix B: it equivocates its votes towards two
partitions of honest replicas while the network between those partitions is
slow.  The run shows the full Figure 2 pipeline:

* the partitions decide conflicting blocks (a disagreement / fork);
* the confirmation phase cross-checks certificates and extracts proofs of
  fraud incriminating the coalition;
* the exclusion consensus removes the deceitful replicas, the inclusion
  consensus adds fresh candidates from the pool;
* the reconciliation merges the forked branches so no payment is lost.

Run with::

    python examples/colluding_majority_recovery.py
"""

from repro.common.config import FaultConfig
from repro.zlb.system import AttackSpec, ZLBSystem


def main() -> None:
    n = 9
    fault_config = FaultConfig.paper_attack(n)  # d = ceil(5n/9) - 1 = 4, q = 0
    print(f"committee of {n} replicas, {fault_config.deceitful} of them deceitful "
          f"(deceitful ratio {fault_config.delta:.2f} > 1/3)")

    system = ZLBSystem.create(
        fault_config,
        seed=7,
        delay="aws",
        attack=AttackSpec(kind="binary", cross_partition_delay="1000ms"),
        workload_transactions=120,
        batch_size=10,
        max_time=600,
    )
    print("honest partitions under attack:", system.plan.partition.describe())

    result = system.run_instances(2)

    print()
    print("=== outcome ===")
    print(f"disagreeing proposals observed : {result.disagreements}")
    print(f"instances with a disagreement  : {sorted(result.disagreement_instances)}")
    print(f"time to detect >= n/3 culprits : "
          f"{result.detect_time:.2f} s" if result.detect_time else "not detected")
    print(f"excluded deceitful replicas    : {result.excluded}")
    print(f"included pool candidates       : {result.included}")
    print(f"exclusion consensus duration   : {result.exclusion_time:.2f} s"
          if result.exclusion_time else "exclusion did not finish")
    print(f"inclusion consensus duration   : {result.inclusion_time:.2f} s"
          if result.inclusion_time else "inclusion did not finish")
    print(f"final committee                : {result.final_committee}")
    print(f"deposit shortfall (honest loss): {result.deposit_shortfall}")

    recovered_ratio = len(set(result.final_committee) & set(range(fault_config.deceitful)))
    print()
    if result.recovered and recovered_ratio == 0:
        print("ZLB recovered: the colluding majority was excluded, the fork was "
              "merged and the deceitful ratio is back below 1/3.")
    else:
        print("Run again with a larger cross-partition delay to let the attack "
              "create a disagreement before detection.")


if __name__ == "__main__":
    main()
