#!/usr/bin/env python3
"""Scenario subsystem walkthrough: expand, run, cache, re-run.

Demonstrates the programmatic surface of ``repro.scenarios``:

1. list the registered families and expand one into its grid of specs;
2. run the grid through a :class:`ScenarioRunner` with a JSONL result store;
3. run it again and observe every cell served from cache;
4. aggregate the stored rows without re-running anything.

Run with::

    python examples/scenario_sweep.py
"""

import tempfile
from pathlib import Path

from repro.analysis.metrics import format_table
from repro.scenarios import ResultStore, ScenarioRunner, expand, family_names


def main() -> None:
    print("registered families:", ", ".join(family_names()))

    specs = expand("fig3", "small") + expand("appendix-b", "small")
    print(f"\nexpanded {len(specs)} cells; first cell:")
    print(" ", specs[0].label(), f"(hash {specs[0].spec_hash})")

    store_path = Path(tempfile.mkdtemp()) / "results.jsonl"
    first = ScenarioRunner(store=ResultStore(store_path)).run(specs)
    print(
        f"\nfirst sweep : {first.executed} executed, {first.cache_hits} cache hits "
        f"({first.wall_clock_s:.2f}s)"
    )

    second = ScenarioRunner(store=ResultStore(store_path)).run(specs)
    print(
        f"second sweep: {second.executed} executed, {second.cache_hits} cache hits "
        f"({second.wall_clock_s:.2f}s)"
    )

    print("\nappendix-b rows straight from the store:")
    print(format_table(ResultStore(store_path).rows("appendix-b")))


if __name__ == "__main__":
    main()
