#!/usr/bin/env python3
"""Telemetry walkthrough: profile a coalition attack end to end.

Demonstrates the instrumentation subsystem:

1. activate a :class:`TelemetryRegistry` and run one Figure-4 style
   coalition-attack cell — the whole stack (simulator, reliable broadcast,
   binary/set consensus, membership change, blockchain managers) records
   into the active registry;
2. read the headline numbers straight off the snapshot: per-protocol message
   and byte counts, per-phase latency percentiles, and the
   detection → exclusion → merge recovery timeline;
3. export the snapshot as JSON and flattened CSV — the same artefacts
   ``python -m repro.scenarios sweep --telemetry`` stores per cell and
   ``python -m repro.scenarios report`` renders.

Run with::

    python examples/telemetry_profile.py
"""

import tempfile
from pathlib import Path

from repro import telemetry
from repro.analysis.metrics import format_table
from repro.experiments.fig4_disagreements import run_attack_cell
from repro.telemetry.report import build_tables


def main() -> None:
    registry = telemetry.TelemetryRegistry()
    print("running one instrumented coalition-attack cell (n=9, binary attack)...")
    with telemetry.activate(registry):
        result = run_attack_cell(
            n=9,
            attack_kind="binary",
            cross_partition_delay="1000ms",
            seed=1,
            instances=2,
        )
    print(
        f"recovered={result.recovered}  excluded={result.excluded}  "
        f"committed={result.committed_transactions}"
    )

    snapshot = registry.snapshot()
    records = [
        {"family": "fig4", "spec": {"family": "fig4", "n": 9, "attack": "binary",
                                    "seed": 1}, "telemetry": snapshot}
    ]

    for title, rows in build_tables(records, metric_filter="rbc."):
        print(f"\n== {title} ==")
        print(format_table(rows[:12]))

    timeline = snapshot["timelines"]["zlb.recovery"]["first"]
    print("\nrecovery timeline (simulated seconds):")
    for mark, at in sorted(timeline.items(), key=lambda item: item[1]):
        print(f"  {at:8.3f}s  {mark}")

    out_dir = Path(tempfile.mkdtemp())
    json_path = telemetry.write_json(snapshot, out_dir / "profile.json")
    csv_path = telemetry.write_csv(
        telemetry.snapshot_rows(snapshot, cell="fig4 n=9"), out_dir / "profile.csv"
    )
    print(f"\nexported {json_path} and {csv_path}")


if __name__ == "__main__":
    main()
