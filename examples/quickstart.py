#!/usr/bin/env python3
"""Quickstart: run a small fault-free ZLB committee and submit payments.

This walks through the public API end to end:

1. configure a committee with ``FaultConfig``;
2. deploy it on the network simulator with ``ZLBSystem.create``;
3. submit client transfers (the workload generator funds the accounts);
4. run a few consensus instances and inspect the resulting chain.

Run with::

    python examples/quickstart.py
"""

from repro.analysis.metrics import format_table
from repro.common.config import FaultConfig
from repro.zlb.system import ZLBSystem


def main() -> None:
    # A committee of 7 replicas, all honest, over AWS-like WAN delays.
    fault_config = FaultConfig(n=7)
    system = ZLBSystem.create(
        fault_config,
        seed=42,
        delay="aws",
        workload_transactions=200,  # client transfers spread across replicas
        batch_size=25,              # transactions per proposal
    )

    # Run three consensus instances (three blocks).
    result = system.run_instances(3)

    print("=== ZLB quickstart ===")
    print(f"committee size          : {result.n}")
    print(f"simulated time          : {result.simulated_time:.2f} s")
    print(f"decided instances       : {sorted(result.disagreement_instances) or result.per_replica[0]['decided_instances']}")
    print(f"committed transactions  : {result.committed_transactions}")
    print(f"throughput              : {result.throughput_tx_per_sec:.0f} tx/s (simulated)")
    print(f"disagreements           : {result.disagreements}")
    print()
    print("chain summary of replica 0:")
    rows = [dict(metric=key, value=value) for key, value in result.chain_summary().items()]
    print(format_table(rows))

    # Every honest replica holds the same chain.
    digests = {
        detail["chain"]["height"]
        for detail in result.per_replica.values()
        if detail["fault"] == "honest"
    }
    print()
    print(f"all honest replicas at height {digests} — no forks, as expected with f = 0")


if __name__ == "__main__":
    main()
