"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-use-pep517`` falls back to ``setup.py develop``, which
works offline without building a wheel.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
