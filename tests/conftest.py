"""Shared fixtures: flight recorder attached to simulation-heavy suites.

Tests under ``tests/zlb`` and ``tests/integration`` run whole committees
through the simulator; when one fails, the assertion message alone rarely
says *which* message or timer led up to the bad state.  The autouse fixture
below activates a :class:`~repro.tracing.TraceRuntime` (tracing is strictly
observational — it consumes no randomness and schedules no events, so
seeded runs are byte-identical with or without it) and, on failure, the
flight recorder's causally-ordered tail of delivery/timer events is appended
to the test report.

Opt out with ``REPRO_NO_FLIGHT_RECORDER=1`` (e.g. when benchmarking).
"""

import os

import pytest

from repro.tracing import core as tracing_core
from repro.tracing.core import TraceRuntime

#: Suites that get the recorder; everything else runs untouched.
_FLIGHT_SUITES = ("tests/zlb", "tests/integration")


def _wants_recorder(item) -> bool:
    if os.environ.get("REPRO_NO_FLIGHT_RECORDER"):
        return False
    path = str(item.fspath).replace(os.sep, "/")
    return any(f"/{suite}/" in path or path.endswith(suite) for suite in _FLIGHT_SUITES)


@pytest.fixture(autouse=True)
def flight_recorder(request):
    """Activate a trace runtime around simulation-heavy tests (else no-op)."""
    if not _wants_recorder(request.node):
        yield None
        return
    runtime = TraceRuntime.enabled(recorder_capacity=256)
    request.node._flight_recorder = runtime.recorder
    with tracing_core.activate(runtime):
        yield runtime


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    recorder = getattr(item, "_flight_recorder", None)
    if recorder is not None and report.when == "call" and report.failed:
        report.sections.append(("flight recorder", recorder.render()))
