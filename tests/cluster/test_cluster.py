"""Real-cluster backend tests: in-process committee plus subprocess smoke.

The in-process tests boot a full n=4 ZLB committee on asyncio transports
inside one event loop — real sockets, real codec frames, real wall-clock
timers, no subprocesses — and drive the payment workload to full commit.
The subprocess tests exercise ``python -m repro.cluster`` end to end,
including crash detection and SIGTERM draining.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cluster.fixture import ClusterSpec, build_node, endpoints_for
from repro.network.asyncio_transport import AsyncioTransport


def _spec(tmp_path, **overrides):
    defaults = dict(
        n=4,
        transport="uds",
        transactions=40,
        batch_size=10,
        accounts=8,
        seed=0,
        socket_dir=str(tmp_path),
        timeout=30.0,
    )
    defaults.update(overrides)
    return ClusterSpec(**defaults)


class TestFixture:
    def test_workers_rebuild_identical_genesis(self, tmp_path):
        spec = _spec(tmp_path)
        nodes = [build_node(spec, replica_id) for replica_id in spec.committee]
        hashes = {
            node.replica.blockchain.record.blocks[0].block_hash for node in nodes
        }
        assert len(hashes) == 1
        assert len({node.conserved_baseline for node in nodes}) == 1

    def test_workload_share_partitions_exactly(self, tmp_path):
        spec = _spec(tmp_path)
        nodes = [build_node(spec, replica_id) for replica_id in spec.committee]
        all_ids = [tx.tx_id for node in nodes for tx in node.share]
        assert len(all_ids) == spec.transactions
        assert len(set(all_ids)) == spec.transactions

    def test_cross_replica_signatures_verify(self, tmp_path):
        spec = _spec(tmp_path)
        node0 = build_node(spec, 0)
        node1 = build_node(spec, 1)
        # Replica 1 must accept transactions signed under replica 0's build.
        for transaction in node0.share:
            assert node1.replica.blockchain.submit_transaction(transaction)

    def test_instances_needed_covers_largest_share(self, tmp_path):
        assert _spec(tmp_path).instances_needed == 1
        assert _spec(tmp_path, transactions=200, batch_size=10).instances_needed == 5
        assert _spec(tmp_path, transactions=0).instances_needed == 0


class TestInProcessCluster:
    def test_uds_cluster_commits_whole_workload_zero_loss(self, tmp_path):
        spec = _spec(tmp_path)

        async def scenario():
            transports, nodes = [], []
            for replica_id in spec.committee:
                node = build_node(spec, replica_id)
                transport = AsyncioTransport(replica_id, endpoints_for(spec))
                transport.add_process(node.replica)
                await transport.start()
                transports.append(transport)
                nodes.append(node)
            for transport in transports:
                await transport.connect(timeout=10)
            for node in nodes:
                node.replica.submit_transactions(node.share)
            for transport in transports:
                transport.start_processes()
            for node in nodes:
                node.replica.submit_instances(node.instances_needed)

            deadline = asyncio.get_running_loop().time() + spec.timeout
            try:
                while asyncio.get_running_loop().time() < deadline:
                    done = all(
                        node.replica.blockchain.transactions_committed
                        >= node.total_transactions
                        for node in nodes
                    )
                    if done:
                        break
                    for node in nodes:
                        replica = node.replica
                        if (
                            replica.blockchain.transactions_committed
                            < node.total_transactions
                            and replica.next_instance >= replica.target_instances
                            and len(replica.decided_instances())
                            >= replica.target_instances
                        ):
                            replica.submit_instances(1)
                    await asyncio.sleep(0.02)
                for node in nodes:
                    blockchain = node.replica.blockchain
                    assert (
                        blockchain.transactions_committed >= node.total_transactions
                    )
                    assert blockchain.conserved_total() == node.conserved_baseline
                    assert blockchain.stats.commit_rejected == 0
                # Every replica commits the same chain.
                heights = {
                    node.replica.blockchain.chain_height() for node in nodes
                }
                assert len(heights) == 1
            finally:
                for transport in transports:
                    await transport.close()

        asyncio.run(scenario())


def _run_cluster_cli(args, timeout=120):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.run(
        [sys.executable, "-m", "repro.cluster", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


class TestClusterCLI:
    def test_uds_smoke_commits_and_reports(self, tmp_path):
        out_path = tmp_path / "cluster.json"
        proc = _run_cluster_cli(
            [
                "--n", "4",
                "--transport", "uds",
                "--transactions", "40",
                "--batch-size", "10",
                "--timeout", "60",
                "--json", str(out_path),
            ]
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "zero-loss accounting: ok" in proc.stdout
        result = json.loads(out_path.read_text())
        assert result["ok"] is True
        assert result["committed"] == 40
        assert result["zero_loss"] is True
        assert result["latency_p50_s"] > 0
        assert result["latency_p99_s"] >= result["latency_p50_s"]
        # Disabled-mode satellite: a no-obs run streams zero obs frames.
        assert result["obs_frames"] == 0
        assert result["violations"] == []
        assert len(result["replicas"]) == 4
        for report in result["replicas"].values():
            assert report["status"] == "ok"
            assert report["transport"]["messages_sent"] > 0
            assert report["latency_p50_s"] > 0
            # Compact form: counters only, no raw arrays or snapshots.
            assert "telemetry" not in report
            assert "commit_latencies_s" not in report

    def test_no_obs_report_shape_is_unchanged(self, tmp_path):
        # Acceptance pin: with observability off, the worker report carries
        # exactly the pre-obs key set — no trace fields leak in, and the
        # JSON bytes a no-obs consumer parses are structurally identical.
        from repro.cluster.launcher import run_cluster

        spec = _spec(tmp_path, n=2, transactions=10, batch_size=5)
        result = run_cluster(spec)
        assert result.ok, result.crashes
        assert result.obs_frames == 0
        for report in result.reports.values():
            assert set(report.keys()) == {
                "event",
                "status",
                "replica_id",
                "accepted",
                "committed",
                "total_transactions",
                "blocks",
                "duration_s",
                "commit_latencies_s",
                "conserved_ok",
                "commit_rejected",
                "transport",
                "chain",
                "telemetry",
            }

    def test_obs_cluster_merges_one_trace_across_processes(self, tmp_path):
        # Tentpole acceptance: an n=4 run with tracing produces ONE merged
        # span tree whose root-to-commit path crosses >= 3 distinct worker
        # OS processes (pid = replica in the Chrome trace).
        artifacts = tmp_path / "artifacts"
        out_path = tmp_path / "cluster.json"
        proc = _run_cluster_cli(
            [
                "--n", "4",
                "--transport", "uds",
                "--transactions", "40",
                "--batch-size", "10",
                "--timeout", "60",
                "--obs",
                "--artifacts", str(artifacts),
                "--json", str(out_path),
            ]
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        result = json.loads(out_path.read_text())
        assert result["ok"] is True
        assert result["obs_frames"] > 0
        for report in result["replicas"].values():
            assert report["obs_frames_sent"] > 0
            assert report["spans"] > 0

        trace = json.loads((artifacts / "cluster-trace.json").read_text())
        events = trace["traceEvents"]
        assert events
        # Group every span/instant by trace id; the consensus instance's
        # causal tree must span at least 3 of the 4 worker processes.
        pids_by_trace = {}
        for event in events:
            if event["ph"] == "X":
                trace_id = event["args"]["trace"]
            else:
                trace_id = event.get("tid")
            if trace_id:
                pids_by_trace.setdefault(trace_id, set()).add(event["pid"])
        assert max(len(pids) for pids in pids_by_trace.values()) >= 3
        # The commit events themselves land on >= 3 distinct processes and
        # are attributed to a trace (the proposer's causal chain).
        commits = [e for e in events if e["name"] == "zlb.commit"]
        assert len({e["pid"] for e in commits}) >= 3
        assert all(e["tid"] for e in commits)

    def test_serve_exposes_live_metrics_and_state(self, tmp_path):
        # The launcher's HTTP plane, polled while the cluster is running:
        # per-replica committed counters and p99 time-to-commit series.
        import threading
        import urllib.request

        from repro.cluster.launcher import _free_tcp_port, run_cluster

        port = _free_tcp_port()
        spec = _spec(tmp_path, transactions=600, batch_size=30, timeout=90.0,
                     obs=True)
        results = {}

        def _drive():
            results["result"] = run_cluster(spec, serve_port=port)

        thread = threading.Thread(target=_drive, daemon=True)
        thread.start()
        metrics = state = None
        deadline = time.monotonic() + 60
        try:
            while time.monotonic() < deadline:
                try:
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/metrics", timeout=2
                    ) as response:
                        text = response.read().decode()
                except OSError:
                    time.sleep(0.05)
                    continue
                if (
                    'repro_cluster_replica_committed_total{replica="0"}' in text
                    and 'quantile="p99"' in text
                ):
                    metrics = text
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/state", timeout=2
                    ) as response:
                        state = json.loads(response.read().decode())
                    break
                time.sleep(0.05)
        finally:
            thread.join(timeout=120)
        assert metrics is not None, "never saw live per-replica series"
        for replica_id in range(4):
            assert (
                f'repro_cluster_replica_committed_total{{replica="{replica_id}"}}'
                in metrics
            )
        assert "repro_cluster_commit_latency_seconds" in metrics
        assert state["n"] == 4
        assert len(state["replicas"]) == 4
        result = results["result"]
        assert result.ok
        assert result.serve_port == port

    def test_killed_replica_is_detected_not_hung(self, tmp_path):
        # Satellite: a killed replica must surface as a crash report (exit
        # code + log line), never as a hang until the outer test timeout —
        # and, with obs on, the launcher must write a causally merged flight
        # dump that still carries the dead replica's last shipped events.
        artifacts = tmp_path / "artifacts"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cluster",
                "--n", "4",
                "--transport", "uds",
                "--transactions", "4000",
                "--batch-size", "10",
                "--accounts", "64",
                "--timeout", "90",
                "--obs",
                "--artifacts", str(artifacts),
                "--log-level", "error",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            # Give the cluster time to boot its workers, then kill one.
            victim = None
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and victim is None:
                pgrep = subprocess.run(
                    ["pgrep", "-f", "repro.cluster.worker.*--replica-id 3"],
                    capture_output=True,
                    text=True,
                )
                pids = [int(p) for p in pgrep.stdout.split()]
                if pids:
                    victim = pids[0]
                time.sleep(0.1)
            assert victim is not None, "worker 3 never appeared"
            # Let the victim finish its startup (keys + 4000-tx workload
            # build) and ship a few obs frames (flight-ring increments), so
            # forensics have something to say about it when it dies.
            time.sleep(8.0)
            os.kill(victim, signal.SIGKILL)
            stdout, stderr = proc.communicate(timeout=120)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise
        assert proc.returncode != 0
        assert "crashed" in stdout + stderr
        # The merged flight dump exists and names the dead replica's last
        # causal events (its increments survived it at the launcher).
        flight_path = artifacts / "cluster-flight.jsonl"
        assert flight_path.exists(), stdout + stderr
        events = [json.loads(line) for line in flight_path.open()]
        victim_events = [event for event in events if event["worker"] == 3]
        assert victim_events, "dead replica left no events in the dump"
        assert all("t_cluster" in event for event in events)
        # Causal order on the shared cluster clock.
        times = [event["t_cluster"] for event in events]
        assert times == sorted(times)
