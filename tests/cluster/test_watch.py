"""ClusterWatcher unit tests: ingestion, monitors, stall tolerance, merging.

These run without any subprocesses — frames are hand-built dicts in the
:mod:`repro.cluster.protocol` shapes — so the aggregation plane's invariants
(cross-replica agreement, stalled-row degradation, causal merging onto the
shared cluster clock) are pinned fast and deterministically.
"""

import io
import json
import queue
import time
from time import perf_counter

from repro.cluster import protocol as wire
from repro.cluster.watch import STALL_AFTER_S, ClusterWatcher


def _obs_frame(replica_id, **overrides):
    frame = {
        "event": wire.EVENT_OBS,
        "replica_id": replica_id,
        "t": 1.0,
        "committed": 10,
        "blocks": 1,
        "tx_per_s": 5.0,
        "events_per_sec": 100.0,
        "mempool": 3,
        "peers": 3,
        "messages_delivered": 42,
        "commit_latency": {"p50": 0.1, "p99": 0.4},
        "spans": 7,
        "commits": {},
        "violations": [],
        "ring": [],
    }
    frame.update(overrides)
    return frame


class TestIngestion:
    def test_frames_update_rows_and_serve_surface(self):
        watcher = ClusterWatcher(n=2, total_transactions=40)
        watcher.ingest(wire.ready_frame(0, offset=100.0))
        watcher.ingest(wire.connected_frame(0, [1]))
        watcher.ingest(_obs_frame(0))

        state = watcher.state()
        assert state["obs_frames"] == 1
        row = state["replicas"][0]
        assert row["status"] == "running"
        assert row["committed"] == 10
        assert row["latency"]["p99"] == 0.4
        assert row["frame_age_s"] is not None

        text = watcher.prometheus_text()
        assert 'repro_cluster_replica_committed_total{replica="0"} 10' in text
        assert (
            'repro_cluster_commit_latency_seconds{replica="0",quantile="p99"}'
            in text
        )
        assert "repro_cluster_obs_frames_total 1" in text

    def test_report_frame_finishes_row(self):
        watcher = ClusterWatcher(n=1)
        watcher.ingest(
            {
                "event": wire.EVENT_REPORT,
                "replica_id": 0,
                "status": "ok",
                "committed": 40,
                "total_transactions": 40,
                "blocks": 4,
            }
        )
        row = watcher.state()["replicas"][0]
        assert row["status"] == "done"
        assert row["committed"] == 40

    def test_worker_violations_are_attributed(self):
        watcher = ClusterWatcher(n=2)
        watcher.ingest(
            _obs_frame(
                1,
                violations=[{"invariant": "zero-loss", "detail": "supply drift"}],
            )
        )
        assert len(watcher.violations) == 1
        assert watcher.violations[0]["replica_id"] == 1
        assert watcher.violations[0]["invariant"] == "zero-loss"


class TestAgreementMonitor:
    def test_matching_digests_are_fine(self):
        watcher = ClusterWatcher(n=2)
        watcher.ingest(_obs_frame(0, commits={"0": "abc", "1": "def"}))
        watcher.ingest(_obs_frame(1, commits={"0": "abc", "1": "def"}))
        assert watcher.violations == []

    def test_conflicting_digest_trips_once(self):
        watcher = ClusterWatcher(n=3)
        watcher.ingest(_obs_frame(0, commits={"2": "aaaaaaaaaaaaaaaa"}))
        watcher.ingest(_obs_frame(1, commits={"2": "bbbbbbbbbbbbbbbb"}))
        # A third sighting of the same disagreement must not duplicate it.
        watcher.ingest(_obs_frame(2, commits={"2": "aaaaaaaaaaaaaaaa"}))
        agreement = [
            v for v in watcher.violations if v["invariant"] == "commit-agreement"
        ]
        assert len(agreement) == 1
        assert agreement[0]["instance"] == 2
        assert "conflicting" in agreement[0]["detail"]

    def test_lagging_replica_is_not_a_violation(self):
        # Safety, not liveness: one replica being instances behind is fine.
        watcher = ClusterWatcher(n=2)
        watcher.ingest(_obs_frame(0, commits={"0": "abc", "5": "xyz"}))
        watcher.ingest(_obs_frame(1, commits={"0": "abc"}))
        assert watcher.violations == []


class TestStallTolerance:
    def test_fresh_row_is_not_stalled(self):
        watcher = ClusterWatcher(n=1)
        watcher.ingest(_obs_frame(0))
        assert watcher.state()["replicas"][0]["stalled"] is False

    def test_old_frame_age_degrades_the_row(self):
        watcher = ClusterWatcher(n=1)
        watcher.ingest(_obs_frame(0))
        row = watcher.rows[0]
        row.last_frame_wall = perf_counter() - (STALL_AFTER_S + 1.0)
        snapshot = watcher.state()["replicas"][0]
        assert snapshot["stalled"] is True
        assert snapshot["frame_age_s"] > STALL_AFTER_S
        assert "stalled" in "\n".join(watcher._table_lines())

    def test_finished_row_never_reports_stalled(self):
        watcher = ClusterWatcher(n=1)
        watcher.ingest(_obs_frame(0))
        watcher.ingest(
            {
                "event": wire.EVENT_REPORT,
                "replica_id": 0,
                "status": "ok",
                "committed": 1,
                "total_transactions": 1,
                "blocks": 1,
            }
        )
        watcher.rows[0].last_frame_wall = perf_counter() - (STALL_AFTER_S + 1.0)
        assert watcher.state()["replicas"][0]["stalled"] is False

    def test_pump_keeps_rendering_with_an_empty_queue(self):
        # The satellite fix: a wedged worker must not freeze the dashboard.
        # The pump drains with a timeout and refreshes on *every* timeout, so
        # frame ages keep climbing with zero frames arriving.
        out = io.StringIO()
        watcher = ClusterWatcher(n=2, out=out, render=True, poll_s=0.05)
        frames = queue.Queue()
        watcher.start(frames)
        try:
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline and not out.getvalue():
                time.sleep(0.02)
        finally:
            watcher.finish()
        assert "cluster:" in out.getvalue()


class TestCausalMerge:
    def test_flight_events_merge_onto_cluster_clock(self):
        watcher = ClusterWatcher(n=2)
        # Worker 1's monotonic clock started 5s "later" on the wall clock.
        watcher.ingest(wire.ready_frame(0, offset=1000.0))
        watcher.ingest(wire.ready_frame(1, offset=1005.0))
        watcher.ingest(
            _obs_frame(
                0,
                ring=[
                    {"seq": 1, "t": 10.0, "replica": 0, "type": "send",
                     "detail": "a", "trace": None},
                    {"seq": 2, "t": 12.0, "replica": 0, "type": "deliver",
                     "detail": "b", "trace": None},
                ],
            )
        )
        watcher.ingest(
            _obs_frame(
                1,
                ring=[
                    {"seq": 1, "t": 6.0, "replica": 1, "type": "send",
                     "detail": "c", "trace": None},
                ],
            )
        )
        merged = watcher.merged_flight_events()
        assert [event["worker"] for event in merged] == [0, 1, 0]
        assert merged[0]["t_cluster"] == 0.0  # normalised to a zero base
        assert merged[1]["t_cluster"] == 1.0  # 6 + 1005 vs 10 + 1000
        assert merged[2]["t_cluster"] == 2.0

    def test_dead_workers_events_survive_in_the_dump(self, tmp_path):
        watcher = ClusterWatcher(n=2)
        watcher.ingest(wire.ready_frame(1, offset=0.0))
        watcher.ingest(
            _obs_frame(
                1,
                ring=[
                    {"seq": 9, "t": 3.0, "replica": 1, "type": "send",
                     "detail": "last words", "trace": "t1:s1"},
                ],
            )
        )
        watcher.note_crash(1, -9)
        path = watcher.write_flight_dump(tmp_path / "flight.jsonl")
        lines = [json.loads(line) for line in open(path)]
        assert any(
            line["worker"] == 1 and line["detail"] == "last words"
            for line in lines
        )
        assert watcher.state()["replicas"][1]["status"] == "crashed"

    def test_merged_spans_and_chrome_trace(self, tmp_path):
        watcher = ClusterWatcher(n=2)
        watcher.ingest(wire.ready_frame(0, offset=100.0))
        watcher.ingest(wire.ready_frame(1, offset=104.0))
        for replica_id, start in ((0, 10.0), (1, 7.0)):
            watcher.ingest(
                {
                    "event": wire.EVENT_REPORT,
                    "replica_id": replica_id,
                    "status": "ok",
                    "committed": 1,
                    "total_transactions": 1,
                    "blocks": 1,
                    "epoch_offset": 100.0 + 4.0 * replica_id,
                    "obs": {
                        "spans": [
                            {
                                "trace": 7,
                                "span": replica_id + 1,
                                "parent": None,
                                "name": "asmr.instance",
                                "replica": replica_id,
                                "start": start,
                                "end": start + 1.0,
                            }
                        ],
                        "events": [
                            {
                                "name": "zlb.commit",
                                "replica": replica_id,
                                "t": start + 0.5,
                                "trace": 7,
                                "attrs": {},
                            }
                        ],
                    },
                }
            )
        merged = watcher.merged_spans()
        # Worker 0's span lands at wall 110, worker 1's at 111; base is 110.
        assert [span["start"] for span in merged["spans"]] == [0.0, 1.0]
        assert [span["replica"] for span in merged["spans"]] == [0, 1]
        path = watcher.write_chrome_trace(tmp_path / "trace.json")
        trace = json.load(open(path))
        names = {event["name"] for event in trace["traceEvents"]}
        assert {"asmr.instance", "zlb.commit"} <= names
        pids = {event["pid"] for event in trace["traceEvents"]}
        assert pids == {0, 1}
