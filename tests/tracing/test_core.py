"""Trace-context propagation through the simulator, router and timers."""

import timeit

import pytest

from repro.common.config import SimulationConfig
from repro.network.message import Message
from repro.network.simulator import NetworkSimulator, Process
from repro.network.router import RoutedProcess
from repro.tracing.core import TraceContext, TraceRuntime, Tracer, topic_trace_attrs


def make_simulator(runtime=None, delay="200ms"):
    from repro.network.delays import delay_model_from_name

    return NetworkSimulator(
        delay_model=delay_model_from_name(delay),
        config=SimulationConfig(seed=1),
        tracing=runtime,
    )


class Echo(Process):
    """Bounces PING back until hops run out; records active ctx per delivery."""

    def __init__(self, replica_id):
        super().__init__(replica_id)
        self.seen = []

    def on_message(self, message):
        self.seen.append((message.trace_ctx, self.tracing.tracer.current_ctx))
        if message.body["hops"] > 0:
            self.send_to(
                message.sender, "ping", "PING", {"hops": message.body["hops"] - 1}
            )


class TestUnicastPropagation:
    def test_context_stamped_and_chained_across_hops(self):
        runtime = TraceRuntime.enabled()
        simulator = make_simulator(runtime)
        a, b = Echo(0), Echo(1)
        simulator.add_process(a)
        simulator.add_process(b)

        root = runtime.tracer.start_trace("client", replica=0, at=0.0)
        previous = runtime.tracer.activate(root.ctx)
        simulator.submit(
            Message(sender=0, recipient=1, protocol="ping", kind="PING", body={"hops": 3})
        )
        runtime.tracer.restore(previous)
        simulator.run()

        # Every delivery ran under a span whose trace is the client's root.
        spans = runtime.tracer.spans
        assert all(span.trace_id == root.trace_id for span in spans)
        # 4 deliveries (hops 3,2,1,0) → 4 delivery spans + the root.
        assert len(spans) == 5
        # The chain is causal: each delivery span's parent is the span that
        # was active when the message was sent.
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id

    def test_message_describe_includes_trace_id(self):
        message = Message(sender=0, recipient=1, protocol="p", kind="K")
        assert "[" not in message.describe()
        message.trace_ctx = TraceContext(trace_id=7, span_id=3)
        assert message.describe().endswith("[t7:s3]")
        assert "t7:s3" in repr(message)

    def test_with_recipient_copies_trace_ctx(self):
        message = Message(sender=0, recipient=None, protocol="p", kind="K")
        message.trace_ctx = TraceContext(trace_id=1, span_id=2)
        assert message.with_recipient(4).trace_ctx is message.trace_ctx


class TestBroadcastPropagation:
    def test_each_recipient_gets_a_child_span(self):
        runtime = TraceRuntime.enabled()
        simulator = make_simulator(runtime)

        class Sink(Process):
            def on_message(self, message):
                pass

        class Caster(Process):
            def on_start(self):
                root = self.tracing.tracer.start_trace("root", self.replica_id, self.now)
                previous = self.tracing.tracer.activate(root.ctx)
                self.broadcast("fanout", "HELLO", {}, include_self=False)
                self.tracing.tracer.restore(previous)

        caster = Caster(0)
        sinks = [Sink(i) for i in (1, 2, 3)]
        simulator.add_process(caster)
        for sink in sinks:
            simulator.add_process(sink)
        simulator.run()

        root = next(s for s in runtime.tracer.spans if s.name == "root")
        children = [
            s for s in runtime.tracer.spans if s.parent_id == root.span_id
        ]
        # One shared envelope, but one delivery span per recipient.
        assert sorted(span.replica for span in children) == [1, 2, 3]
        assert all(span.name == "fanout/HELLO" for span in children)


class TestTimerPropagation:
    def test_timer_callback_runs_on_scheduling_context(self):
        runtime = TraceRuntime.enabled()
        simulator = make_simulator(runtime)
        observed = []

        class Armer(Process):
            def on_start(self):
                root = self.tracing.tracer.start_trace("root", self.replica_id, self.now)
                previous = self.tracing.tracer.activate(root.ctx)
                self.set_timer(1.0, lambda: observed.append(
                    self.tracing.tracer.current_ctx
                ))
                self.tracing.tracer.restore(previous)
                # Outside the activation the context is gone again.
                assert self.tracing.tracer.current_ctx is None

        simulator.add_process(Armer(0))
        simulator.run()

        assert len(observed) == 1
        root = next(s for s in runtime.tracer.spans if s.name == "root")
        assert observed[0] is root.ctx

    def test_timer_without_context_fires_plainly(self):
        runtime = TraceRuntime.enabled()
        simulator = make_simulator(runtime)
        fired = []

        class Armer(Process):
            def on_start(self):
                self.set_timer(1.0, lambda: fired.append(self.tracing.tracer.current_ctx))

        simulator.add_process(Armer(0))
        simulator.run()
        assert fired == [None]


class TestRouterPropagation:
    def test_routed_dispatch_sees_active_context(self):
        runtime = TraceRuntime.enabled()
        simulator = make_simulator(runtime)
        observed = []

        class Routed(RoutedProcess):
            def __init__(self, replica_id):
                super().__init__(replica_id)
                self.router.register(
                    ("proto", "deep"),
                    lambda topic, sender, kind, body: observed.append(
                        ("deep", self.tracing.tracer.current_ctx)
                    ),
                )
                self.router.register(
                    ("proto",),
                    lambda topic, sender, kind, body: observed.append(
                        ("shallow", self.tracing.tracer.current_ctx)
                    ),
                )

        class Sender(Process):
            def on_start(self):
                root = self.tracing.tracer.start_trace("root", self.replica_id, self.now)
                previous = self.tracing.tracer.activate(root.ctx)
                self.send_to(1, ("proto", "deep", 5), "K", {})
                self.send_to(1, ("proto", "other"), "K", {})
                self.tracing.tracer.restore(previous)

        simulator.add_process(Sender(0))
        simulator.add_process(Routed(1))
        simulator.run()

        assert sorted(kind for kind, _ in observed) == ["deep", "shallow"]
        # Longest-prefix dispatch happens *inside* the delivery span.
        assert all(ctx is not None for _, ctx in observed)
        root_trace = runtime.tracer.spans[0].trace_id
        assert all(ctx.trace_id == root_trace for _, ctx in observed)


class TestTopicTraceAttrs:
    def test_rbc_topic(self):
        attrs = topic_trace_attrs(("asmr", 0, 3, "rbc", 2))
        assert attrs == {"head": "asmr", "instance": 3, "slot": 2}

    def test_bin_topic(self):
        attrs = topic_trace_attrs(("asmr", 0, 4, "bin", 1))
        assert attrs == {"head": "asmr", "instance": 4, "slot": 1}

    def test_sbc_topic(self):
        attrs = topic_trace_attrs(("sbc", 0, 7))
        assert attrs == {"head": "sbc", "instance": 7}


class TestDisabledModeNoOp:
    """The zero-overhead-when-disabled contract, mirroring telemetry's."""

    def test_disabled_simulator_stamps_nothing(self):
        simulator = make_simulator(None)
        assert simulator.tracing is None
        seen = []

        class Probe(Process):
            def on_message(self, message):
                seen.append(message.trace_ctx)

        simulator.add_process(Probe(1))
        probe_message = Message(
            sender=0, recipient=1, protocol="ping", kind="PING", body={}
        )
        sender = Process(0)
        simulator.add_process(sender)
        simulator.submit(probe_message)
        simulator.run()
        assert seen == [None]
        assert probe_message.trace_ctx is None

    def test_disabled_guard_overhead_is_a_pointer_check(self):
        """The hot-path guard must cost no more than a None comparison."""
        tracing = None
        tracer = Tracer()

        def disabled():
            if tracing is not None:
                tracer.event("x", 0, 0.0)

        def bare():
            pass

        def enabled():
            if tracer is not None:
                tracer.event("x", 0, 0.0)

        iterations = 50_000
        bare_s = min(timeit.repeat(bare, number=iterations, repeat=5))
        disabled_s = min(timeit.repeat(disabled, number=iterations, repeat=5))
        enabled_s = min(timeit.repeat(enabled, number=iterations, repeat=5))
        # The disabled guard stays within noise of an empty call; the margin
        # is deliberately loose (5x) because both sides are nanoseconds.
        assert disabled_s < bare_s * 5
        # Sanity: actually recording is the expensive side.
        assert enabled_s > disabled_s
