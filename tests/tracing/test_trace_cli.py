"""The ``trace`` subcommand, spec/runner integration and logging wiring."""

import json
import logging

import pytest

from repro.scenarios import registry
from repro.scenarios.cli import main
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import ResultStore


class TestSpecTracingFlag:
    def test_flag_absent_from_dict_when_disabled(self):
        spec = ScenarioSpec(family="fig3", n=10)
        assert "tracing" not in spec.to_dict()

    def test_hash_unchanged_for_bare_cells(self):
        # Cells without the flag keep their pre-flag hashes (cache validity).
        bare = ScenarioSpec(family="fig3", n=10)
        explicit = ScenarioSpec(family="fig3", n=10, tracing=False)
        assert bare.spec_hash == explicit.spec_hash

    def test_traced_cell_hashes_separately(self):
        bare = ScenarioSpec(family="fig3", n=10)
        traced = bare.with_overrides(tracing=True)
        assert bare.spec_hash != traced.spec_hash
        assert "tracing" in traced.label()

    def test_json_round_trip(self):
        traced = ScenarioSpec(family="fig3", n=10, tracing=True)
        assert ScenarioSpec.from_json(traced.to_json()) == traced


class TestRunnerTracePersistence:
    def test_trace_summary_persisted_and_cache_served(self, tmp_path):
        path = tmp_path / "results.jsonl"
        spec = registry.expand("fig3", "small")[0].with_overrides(tracing=True)

        first = ScenarioRunner(store=ResultStore(path)).run([spec])
        outcome = first.outcomes[0]
        assert not outcome.cached
        assert isinstance(outcome.trace, dict)
        assert {"traces", "spans", "events", "critical_path"} <= set(outcome.trace)

        # The JSONL record carries the summary verbatim.
        record = json.loads(path.read_text().strip().splitlines()[-1])
        assert record["trace"] == outcome.trace

        second = ScenarioRunner(store=ResultStore(path)).run([spec])
        assert second.outcomes[0].cached
        assert second.outcomes[0].trace == outcome.trace

    def test_untraced_cells_carry_no_trace(self, tmp_path):
        path = tmp_path / "results.jsonl"
        spec = registry.expand("fig3", "small")[0]
        report = ScenarioRunner(store=ResultStore(path)).run([spec])
        assert report.outcomes[0].trace is None
        record = json.loads(path.read_text().strip().splitlines()[-1])
        assert "trace" not in record


class TestTraceSubcommand:
    def test_traced_quickstart_cell(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        tree = tmp_path / "tree.json"
        dump = tmp_path / "flight.jsonl"
        code = main(
            [
                "trace",
                "quickstart",
                "--out",
                str(out),
                "--tree",
                str(tree),
                "--dump",
                str(dump),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "dominant phase:" in captured.out
        assert "invariant monitors: all green" in captured.out
        # Monitors stayed green → no flight-recorder dump.
        assert not dump.exists()

        chrome = json.loads(out.read_text())
        assert chrome["traceEvents"]
        phases = {event["ph"] for event in chrome["traceEvents"]}
        assert "X" in phases  # spans
        assert "i" in phases  # point events
        names = {event["name"] for event in chrome["traceEvents"]}
        assert "zlb.commit" in names

        spans = json.loads(tree.read_text())
        assert spans  # per-transaction span trees, roots at depth 0
        assert all("children" in root for root in spans)

    def test_cell_index_out_of_range(self, capsys):
        code = main(["trace", "quickstart", "--cell", "99"])
        assert code == 2
        assert "out of range" in capsys.readouterr().err


class TestLoggingWiring:
    def test_run_accepts_log_level(self, capsys):
        code = main(["run", "fig3", "--quiet", "--log-level", "warning"])
        assert code == 0
        assert logging.getLogger("repro").level == logging.WARNING

    def test_unknown_log_level_is_a_cli_error(self, capsys):
        code = main(["run", "fig3", "--quiet", "--log-level", "loud"])
        assert code == 2
        assert "unknown log level" in capsys.readouterr().err

    def test_replica_logger_prefixes_time_and_replica(self):
        from repro.common.config import SimulationConfig
        from repro.common.logging import replica_logger
        from repro.network.simulator import NetworkSimulator, Process

        simulator = NetworkSimulator(config=SimulationConfig(seed=1))
        process = Process(7)
        simulator.add_process(process)
        message, _ = process.log.process("hello", {})
        assert message.startswith("[t=0.000000s r=7]")

    def test_replica_logger_includes_active_trace(self):
        from repro.common.config import SimulationConfig
        from repro.network.simulator import NetworkSimulator, Process
        from repro.tracing.core import TraceRuntime

        runtime = TraceRuntime.enabled()
        simulator = NetworkSimulator(config=SimulationConfig(seed=1), tracing=runtime)
        process = Process(3)
        simulator.add_process(process)
        span = runtime.tracer.start_trace("root", replica=3, at=0.0)
        previous = runtime.tracer.activate(span.ctx)
        try:
            message, _ = process.log.process("hello", {})
        finally:
            runtime.tracer.restore(previous)
        assert f"trace=t{span.trace_id}:s{span.span_id}" in message
