"""Flight recorder and online invariant monitors."""

import json

import pytest

from repro.network.message import Message
from repro.tracing.core import TraceContext, TraceRuntime
from repro.tracing.monitors import (
    InvariantViolationError,
    MonitorSet,
)
from repro.tracing.recorder import FlightRecorder


class TestFlightRecorder:
    def test_capacity_bounds_per_replica_buffers(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record(float(i), replica=0, kind="timer", detail=f"e{i}")
        assert len(recorder) == 3
        assert recorder.recorded == 10
        # Oldest events were evicted; the last three survive.
        assert [event["detail"] for event in recorder.events()] == ["e7", "e8", "e9"]

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_events_merge_replicas_in_causal_order(self):
        recorder = FlightRecorder()
        # Interleave replicas with out-of-order insertion times per buffer.
        recorder.record(2.0, replica=1, kind="send", detail="late")
        recorder.record(1.0, replica=0, kind="send", detail="early")
        recorder.record(2.0, replica=0, kind="deliver", detail="tie-second")
        merged = recorder.events()
        assert [event["detail"] for event in merged] == [
            "early",
            "late",
            "tie-second",
        ]
        # Ties on time break by global sequence — insertion (causal) order in
        # the single-threaded simulator.
        assert merged[1]["seq"] < merged[2]["seq"]

    def test_record_message_uses_describe_and_trace(self):
        recorder = FlightRecorder()
        message = Message(sender=0, recipient=1, protocol="p", kind="K")
        message.trace_ctx = TraceContext(trace_id=3, span_id=9)
        recorder.record_message(0.5, replica=0, kind="send", message=message)
        event = recorder.events()[0]
        assert event["trace"] == "t3:s9"
        assert "K" in event["detail"]
        rendered = recorder.render()
        # The trace id shows up exactly once per line (describe embeds it).
        assert rendered.count("t3:s9") == 1

    def test_dump_jsonl_round_trips(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record(1.0, replica=0, kind="send", detail="a")
        recorder.record(2.0, replica=1, kind="deliver", detail="b")
        path = recorder.dump_jsonl(tmp_path / "dump.jsonl")
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if line.strip()
        ]
        assert [line["detail"] for line in lines] == ["a", "b"]
        assert lines[0]["t"] <= lines[1]["t"]


class TestAgreementMonitor:
    def test_matching_decisions_stay_green(self):
        monitors = MonitorSet()
        monitors.on_decision(0, epoch=0, instance=1, digest="d", at=1.0)
        monitors.on_decision(1, epoch=0, instance=1, digest="d", at=1.1)
        assert monitors.ok

    def test_divergent_decisions_trip(self):
        monitors = MonitorSet()
        monitors.on_decision(0, epoch=0, instance=1, digest="d1", at=1.0)
        monitors.on_decision(1, epoch=0, instance=1, digest="d2", at=1.1)
        assert not monitors.ok
        assert monitors.violations[0].name == "agreement"

    def test_expected_disagreement_is_not_a_violation(self):
        monitors = MonitorSet(expect_disagreement=True)
        monitors.on_decision(0, epoch=0, instance=1, digest="d1", at=1.0)
        monitors.on_decision(1, epoch=0, instance=1, digest="d2", at=1.1)
        monitors.on_disagreement(0, instance=1, at=1.2)
        assert monitors.ok

    def test_deceitful_replicas_do_not_count(self):
        monitors = MonitorSet()
        monitors.configure(honest={0, 1})
        monitors.on_decision(0, epoch=0, instance=1, digest="d1", at=1.0)
        monitors.on_decision(5, epoch=0, instance=1, digest="d2", at=1.1)
        assert monitors.ok


class TestValidityAndSupplyMonitors:
    def test_invalid_commit_trips_validity(self):
        monitors = MonitorSet()
        monitors.register_ledger(0, conserved_total=100)
        monitors.on_commit(0, instance=1, invalid=2, phantom=0, conserved_total=100, at=1.0)
        assert not monitors.ok
        assert monitors.violations[0].name == "validity"

    def test_forged_double_spend_mints_value_and_trips_supply(self, tmp_path):
        """A deceitful mint — value from nowhere — must trip the supply
        monitor and produce a causally-ordered flight-recorder dump."""
        from repro.ledger.block import make_genesis_block
        from repro.ledger.merge import BlockchainRecord
        from repro.ledger.utxo import UTXO

        genesis_block, genesis_utxos = make_genesis_block([("alice", 1_000)])
        record = BlockchainRecord(
            initial_deposit=500, genesis=(genesis_block, genesis_utxos)
        )
        baseline = record.utxos.total_supply() + record.deposit

        recorder = FlightRecorder()
        recorder.record(0.5, replica=0, kind="deliver", detail="PROPOSE batch-1")
        recorder.record(1.0, replica=0, kind="deliver", detail="DECIDE batch-1")
        dump_path = tmp_path / "flight.jsonl"
        monitors = MonitorSet(recorder=recorder, dump_path=dump_path)
        monitors.register_ledger(0, baseline)

        # Forge a coin: an output no transaction ever created.
        record.utxos.add(UTXO(utxo_id="forged:0", account="mallory", amount=777))
        monitors.on_commit(
            0,
            instance=1,
            invalid=0,
            phantom=0,
            conserved_total=record.utxos.total_supply() + record.deposit,
            at=1.5,
        )

        assert not monitors.ok
        violation = monitors.violations[0]
        assert violation.name == "supply-conservation"
        assert violation.detail["minted"] == 777
        # The first violation dumped the recorder, causally ordered.
        assert monitors.dump_written
        events = [
            json.loads(line)
            for line in open(dump_path, encoding="utf-8")
            if line.strip()
        ]
        assert [event["detail"] for event in events] == [
            "PROPOSE batch-1",
            "DECIDE batch-1",
        ]
        assert events[0]["t"] <= events[1]["t"]

    def test_burning_value_is_allowed(self):
        monitors = MonitorSet()
        monitors.register_ledger(0, conserved_total=100)
        monitors.on_commit(0, instance=1, invalid=0, phantom=0, conserved_total=90, at=1.0)
        monitors.on_merge(0, instance=1, conserved_total=80, at=2.0)
        monitors.on_punish(0, conserved_total=70, at=3.0)
        assert monitors.ok

    def test_strict_mode_raises(self):
        monitors = MonitorSet(strict=True)
        monitors.register_ledger(0, conserved_total=100)
        with pytest.raises(InvariantViolationError):
            monitors.on_commit(
                0, instance=1, invalid=0, phantom=0, conserved_total=101, at=1.0
            )


class TestZeroLossFinalize:
    def test_gain_within_seizure_is_green(self):
        monitors = MonitorSet()
        monitors.finalize(realized_gain=100, seized_deposit=500)
        assert monitors.ok

    def test_gain_exceeding_seizure_trips(self):
        monitors = MonitorSet()
        monitors.finalize(realized_gain=600, seized_deposit=500)
        assert not monitors.ok
        assert monitors.violations[0].name == "zero-loss"

    def test_deposit_shortfall_trips(self):
        monitors = MonitorSet()
        monitors.finalize(realized_gain=0, seized_deposit=0, deposit_shortfall=10)
        assert not monitors.ok

    def test_status_is_json_serialisable(self):
        monitors = MonitorSet()
        monitors.register_ledger(0, conserved_total=100)
        monitors.on_decision(0, epoch=0, instance=1, digest="d", at=1.0)
        monitors.finalize(realized_gain=1, seized_deposit=0)
        status = monitors.status()
        assert status["ok"] is False
        json.dumps(status)


class TestRuntimeWiring:
    def test_enabled_builds_recorder_and_monitors(self):
        runtime = TraceRuntime.enabled(recorder_capacity=16)
        assert runtime.recorder is not None
        assert runtime.monitors is not None
        assert runtime.monitors.ok

    def test_summary_is_json_serialisable(self):
        runtime = TraceRuntime.enabled()
        runtime.tracer.event("zlb.commit", 0, 1.0, instance=0)
        json.dumps(runtime.summary())
