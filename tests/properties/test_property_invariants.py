"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.analysis.zero_loss import branch_bound, g_function, minimum_blockdepth
from repro.common.types import max_branches, quorum_size, recovery_threshold
from repro.crypto.hashing import canonical_bytes, hash_payload
from repro.crypto.merkle import MerkleTree
from repro.ledger.block import make_genesis_block
from repro.ledger.transaction import build_transfer
from repro.ledger.utxo import UTXOTable
from repro.ledger.wallet import Wallet

# Reusable strategy for canonically-encodable payloads.
payloads = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(10**12), 10**12)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


class TestQuorumProperties:
    @given(st.integers(min_value=1, max_value=10_000))
    def test_two_quorums_intersect_in_more_than_a_third(self, n):
        # 2 * ceil(2n/3) - n >= ceil(n/3): the overlap of two certificates is
        # large enough to contain n/3 equivocators after a disagreement.
        assert 2 * quorum_size(n) - n >= recovery_threshold(n) - (1 if n % 3 == 0 else 0)
        assert 2 * quorum_size(n) - n >= math.floor(n / 3)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_quorum_tolerates_classic_byzantine_bound(self, n):
        f = recovery_threshold(n) - 1  # largest f < n/3
        assert quorum_size(n) <= n - f

    @given(st.integers(min_value=2, max_value=500))
    def test_paper_attack_coalition_cannot_reach_quorum_alone(self, n):
        d = math.ceil(5 * n / 9) - 1
        assert d < quorum_size(n)

    @given(st.integers(min_value=1, max_value=300), st.data())
    def test_branch_bound_consistency(self, n, data):
        d = data.draw(st.integers(min_value=0, max_value=n))
        assert max_branches(n, d) == branch_bound(n, d)
        assert branch_bound(n, d) >= 1


class TestCanonicalHashing:
    @given(payloads)
    def test_encoding_is_deterministic(self, payload):
        assert canonical_bytes(payload) == canonical_bytes(payload)
        assert hash_payload(payload) == hash_payload(payload)

    @given(st.dictionaries(st.text(max_size=8), st.integers(), max_size=6))
    def test_dict_order_never_matters(self, mapping):
        items = list(mapping.items())
        reordered = dict(reversed(items))
        assert hash_payload(mapping) == hash_payload(reordered)

    @given(st.lists(st.integers(), min_size=2, max_size=8, unique=True))
    def test_list_order_always_matters(self, values):
        assert hash_payload(values) != hash_payload(list(reversed(values)))


class TestMerkleProperties:
    @settings(max_examples=25)
    @given(st.lists(st.text(max_size=12), min_size=1, max_size=32))
    def test_every_leaf_proof_verifies(self, leaves):
        tree = MerkleTree(leaves)
        for index in range(len(leaves)):
            assert tree.proof(index).verify(tree.root)

    @settings(max_examples=25)
    @given(st.lists(st.integers(), min_size=1, max_size=16), st.integers(), st.data())
    def test_changing_a_leaf_changes_the_root(self, leaves, replacement, data):
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        if leaves[index] == replacement:
            return
        modified = list(leaves)
        modified[index] = replacement
        assert MerkleTree(leaves).root != MerkleTree(modified).root


class TestLedgerInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(1, 50)), min_size=1, max_size=12
        )
    )
    def test_total_supply_conserved_by_transfers(self, transfers):
        wallets = [Wallet(f"prop-{i}") for i in range(6)]
        _, utxos = make_genesis_block([(w.address, 1_000) for w in wallets])
        table = UTXOTable(utxos)
        supply_before = table.total_supply()
        nonces = {w.address: 0 for w in wallets}
        for sender_index, amount in transfers:
            sender = wallets[sender_index]
            recipient = wallets[(sender_index + 1) % len(wallets)]
            if table.balance(sender.address) < amount:
                continue
            inputs = table.select_inputs(sender.address, amount)
            tx = build_transfer(
                sender, inputs, [(recipient.address, amount)], nonce=nonces[sender.address]
            )
            nonces[sender.address] += 1
            table.apply_transaction(tx)
        assert table.total_supply() == supply_before

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=500))
    def test_select_inputs_covers_requested_amount(self, amount):
        wallet = Wallet("prop-cover")
        _, utxos = make_genesis_block([(wallet.address, 100)] * 6)
        table = UTXOTable(
            [u for i, u in enumerate(utxos)]
        ) if False else None
        # Six separate 100-coin outputs under distinct ids.
        from repro.ledger.utxo import UTXO

        table = UTXOTable(
            [UTXO(f"g:{i}", wallet.address, 100) for i in range(6)]
        )
        if amount > 600:
            return
        selected = table.select_inputs(wallet.address, amount)
        assert sum(i.amount for i in selected) >= amount


class TestZeroLossProperties:
    @settings(max_examples=60)
    @given(
        st.integers(min_value=1, max_value=20),
        st.floats(min_value=0.01, max_value=5.0),
        st.floats(min_value=0.0, max_value=0.99),
    )
    def test_minimum_blockdepth_is_minimal_and_sufficient(self, a, b, rho):
        m = minimum_blockdepth(a, b, rho)
        assert g_function(a, b, rho, m) >= 0
        if m > 0:
            assert g_function(a, b, rho, m - 1) < 0

    @settings(max_examples=60)
    @given(
        st.integers(min_value=2, max_value=10),
        st.floats(min_value=0.05, max_value=2.0),
        st.floats(min_value=0.0, max_value=0.95),
        st.integers(min_value=0, max_value=50),
    )
    def test_g_monotone_in_blockdepth(self, a, b, rho, m):
        assert g_function(a, b, rho, m + 1) >= g_function(a, b, rho, m)
