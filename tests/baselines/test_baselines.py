"""Tests for the HotStuff, Red Belly and Polygraph baselines."""

import pytest

from repro.baselines.hotstuff import HotStuffCluster
from repro.baselines.polygraph_chain import PolygraphCluster
from repro.baselines.redbelly import RedBellyCluster
from repro.common.config import FaultConfig
from repro.network.delays import UniformDelay


class TestHotStuff:
    def test_commits_are_prefix_consistent(self):
        cluster = HotStuffCluster(4, seed=1)
        cluster.submit_payloads([{"batch": i} for i in range(8)])
        cluster.run_views(8)
        committed = cluster.committed_views()
        reference = committed[0]
        assert reference, "at least one view must commit"
        for other in committed[1:]:
            shared = min(len(reference), len(other))
            assert reference[:shared] == other[:shared]

    def test_three_chain_rule_lags_by_two_views(self):
        cluster = HotStuffCluster(4, seed=2)
        cluster.submit_payloads([{"batch": i} for i in range(6)])
        cluster.run_views(6)
        committed = cluster.committed_views()[0]
        # With 6 views at most 4 can head a completed three-chain.
        assert len(committed) <= 4
        assert committed == sorted(committed)

    def test_one_proposal_per_view(self):
        cluster = HotStuffCluster(4, seed=3)
        cluster.submit_payloads([{"batch": i} for i in range(4)])
        cluster.run_views(4)
        replica = cluster.replicas[0]
        assert all(view in replica.blocks for view in replica.committed_views)

    def test_leader_rotation(self):
        cluster = HotStuffCluster(4, seed=4)
        replica = cluster.replicas[0]
        assert [replica.leader_of(v) for v in range(4)] == [0, 1, 2, 3]
        assert replica.leader_of(4) == 0


class TestRedBelly:
    def test_chains_agree(self):
        cluster = RedBellyCluster(4, seed=1, workload_transactions=40, batch_size=10)
        cluster.run_instances(2)
        assert len(set(cluster.chain_heights())) == 1
        assert min(cluster.committed_transactions()) > 0

    def test_no_membership_change_machinery(self):
        cluster = RedBellyCluster(4, seed=2, workload_transactions=20, batch_size=10)
        cluster.run_instances(1)
        assert all(r.membership_outcomes == [] for r in cluster.replicas)


class TestPolygraphChain:
    def test_detects_but_does_not_recover(self):
        cluster = PolygraphCluster(
            FaultConfig.paper_attack(9),
            seed=2,
            cross_partition_delay=UniformDelay.from_mean(1.0),
            workload_transactions=40,
            batch_size=10,
        )
        cluster.run_instances(1, until=120)
        # Accountability detects the coalition...
        assert cluster.detection_times(), "expected at least one detection"
        # ...but there is no membership change, so the committee never shrinks
        # and the forked branches are never merged.
        for replica in cluster.honest_replicas():
            assert replica.membership_outcomes == []
            assert len(replica.committee()) == 9

    def test_fault_free_operation(self):
        cluster = PolygraphCluster(
            FaultConfig(n=4), seed=1, workload_transactions=20, batch_size=10
        )
        cluster.run_instances(1)
        assert all(
            r.decided_instances() == [0] for r in cluster.honest_replicas()
        )
