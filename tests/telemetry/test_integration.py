"""Telemetry wired through the stack, the scenario runner and the report CLI.

A tiny instrumented family (one fault-free committee cell) keeps the module
fast; the full coalition-attack telemetry (recovery timeline included) runs
once and is shared by the assertions that need it.
"""

import json

import pytest

from repro import telemetry
from repro.common.config import FaultConfig
from repro.experiments.fig4_disagreements import run_attack_cell
from repro.scenarios import registry
from repro.scenarios.registry import ScenarioFamily
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import ResultStore
from repro.telemetry.export import snapshot_rows, write_csv, write_json
from repro.telemetry.report import build_tables, render_report, telemetry_cells
from repro.zlb.system import ZLBSystem

TINY_FAMILY = "telemetry-tiny"


def _tiny_grid(scale):
    return [
        ScenarioSpec(
            family=TINY_FAMILY,
            n=4,
            workload_transactions=20,
            batch_size=10,
            instances=1,
            seed=7,
            max_time=60.0,
        )
    ]


def _run_tiny_cell(spec):
    system = ZLBSystem.create(
        spec.fault_config(),
        seed=spec.seed,
        workload_transactions=spec.workload_transactions,
        batch_size=spec.batch_size,
        max_time=spec.max_time,
    )
    result = system.run_instances(spec.instances, until=spec.max_time)
    return {"n": spec.n, "committed": result.committed_transactions}


@pytest.fixture(autouse=True)
def _register_tiny_family():
    registry.register(
        ScenarioFamily(
            name=TINY_FAMILY,
            description="tiny instrumented committee (test-only)",
            build=_tiny_grid,
            run=_run_tiny_cell,
        )
    )
    yield


@pytest.fixture(scope="module")
def attack_snapshot():
    """One instrumented coalition-attack run (shared across tests)."""
    registry_ = telemetry.TelemetryRegistry()
    with telemetry.activate(registry_):
        result = run_attack_cell(
            n=9,
            attack_kind="binary",
            cross_partition_delay="1000ms",
            seed=1,
            instances=2,
            max_time=300.0,
        )
    return result, registry_.snapshot()


class TestStackInstrumentation:
    def test_fault_free_run_records_core_metrics(self):
        registry_ = telemetry.TelemetryRegistry()
        system = ZLBSystem.create(
            FaultConfig(n=4),
            seed=3,
            workload_transactions=20,
            batch_size=10,
            telemetry=registry_,
        )
        result = system.run_instances(1)
        snapshot = result.telemetry
        assert snapshot is not None
        counters = snapshot["counters"]
        assert any(key.startswith("net.messages_sent") for key in counters)
        assert any("protocol=sbc:rbc" in key for key in counters)
        assert any("protocol=sbc:bin" in key for key in counters)
        histograms = snapshot["histograms"]
        for metric in (
            "rbc.deliver_s",
            "consensus.binary.rounds",
            "consensus.sbc.decide_s",
            "asmr.instance_decide_s",
        ):
            assert histograms[metric]["count"] > 0
        for field in ("mean", "ci95", "p50", "p95", "p99"):
            assert field in histograms["rbc.deliver_s"]
        assert any(key.startswith("mempool.pending{") for key in snapshot["gauges"])

    def test_disabled_run_has_no_snapshot(self):
        system = ZLBSystem.create(
            FaultConfig(n=4), seed=3, workload_transactions=10, batch_size=10
        )
        assert system.telemetry is None
        result = system.run_instances(1)
        assert result.telemetry is None

    def test_attack_run_records_recovery_timeline(self, attack_snapshot):
        result, snapshot = attack_snapshot
        assert result.recovered
        timeline = snapshot["timelines"]["zlb.recovery"]["first"]
        for mark in ("disagreement", "detected", "exclusion_started", "excluded", "included"):
            assert timeline[mark] is not None
        assert timeline["detected"] <= timeline["excluded"] <= timeline["included"]
        # Membership phases and merge activity were measured too.
        assert snapshot["histograms"]["membership.exclusion_s"]["count"] > 0
        assert snapshot["counters"]["zlb.merges"] > 0
        assert snapshot["histograms"]["net.queue_depth"]["count"] > 0

    def test_attack_messages_by_protocol_and_bytes(self, attack_snapshot):
        _, snapshot = attack_snapshot
        counters = snapshot["counters"]
        sent = {
            key: value
            for key, value in counters.items()
            if key.startswith("net.messages_sent")
        }
        assert any("protocol=excl:rbc" in key for key in sent)
        bytes_sent = {
            key: value
            for key, value in counters.items()
            if key.startswith("net.bytes_sent")
        }
        # Sizes are exact wire-codec frame lengths; every frame carries at
        # least the length header plus the encoded envelope scaffolding.
        for key, value in bytes_sent.items():
            matching = key.replace("net.bytes_sent", "net.messages_sent")
            assert value >= sent[matching] * 32


class TestScenarioIntegration:
    def test_spec_hash_stable_without_telemetry(self):
        bare = ScenarioSpec(family=TINY_FAMILY, n=4)
        assert "telemetry" not in bare.to_dict()
        instrumented = bare.with_overrides(telemetry=True)
        assert instrumented.to_dict()["telemetry"] is True
        assert bare.spec_hash != instrumented.spec_hash
        round_tripped = ScenarioSpec.from_json(instrumented.to_json())
        assert round_tripped == instrumented

    def test_runner_persists_and_replays_snapshot(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        specs = [
            spec.with_overrides(telemetry=True) for spec in _tiny_grid("small")
        ]
        report = ScenarioRunner(store=store).run(specs)
        outcome = report.outcomes[0]
        assert not outcome.cached
        assert outcome.telemetry is not None
        assert outcome.telemetry["histograms"]["rbc.deliver_s"]["count"] > 0

        # Cache hit serves the stored snapshot.
        replay = ScenarioRunner(store=ResultStore(store.path)).run(specs)
        assert replay.cache_hits == 1
        assert replay.outcomes[0].telemetry == outcome.telemetry

        # The JSONL record itself carries the snapshot (self-describing).
        record = json.loads(open(store.path, encoding="utf-8").readline())
        assert record["telemetry"] == outcome.telemetry

    def test_uninstrumented_cell_stores_no_snapshot(self, tmp_path):
        store = ResultStore(tmp_path / "bare.jsonl")
        ScenarioRunner(store=store).run(_tiny_grid("small"))
        (record,) = store.records()
        assert "telemetry" not in record

    def test_report_cli_renders_tables(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        out = str(tmp_path / "results.jsonl")
        store = ResultStore(out)
        specs = [
            spec.with_overrides(telemetry=True) for spec in _tiny_grid("small")
        ]
        ScenarioRunner(store=store).run(specs)

        csv_path = str(tmp_path / "metrics.csv")
        json_path = str(tmp_path / "metrics.json")
        assert main(["report", out, "--csv", csv_path, "--json", json_path]) == 0
        printed = capsys.readouterr().out
        assert "messages by protocol" in printed
        assert "latency histograms" in printed
        assert "rbc.deliver_s" in printed
        header = open(csv_path, encoding="utf-8").readline()
        assert header.startswith("cell,type,metric")
        exported = json.load(open(json_path, encoding="utf-8"))
        assert isinstance(exported, list) and exported[0]["histograms"]

    def test_report_cli_without_telemetry_explains(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        out = str(tmp_path / "bare.jsonl")
        ScenarioRunner(store=ResultStore(out)).run(_tiny_grid("small"))
        assert main(["report", out]) == 0
        assert "no telemetry" in capsys.readouterr().out

    def test_metric_filter_restricts_histograms(self, attack_snapshot):
        _, snapshot = attack_snapshot
        records = [
            {"family": "fig4", "spec": {"family": "fig4", "n": 9, "seed": 1},
             "telemetry": snapshot}
        ]
        tables = dict(build_tables(records, metric_filter="rbc."))
        histogram_rows = tables["latency histograms (s)"]
        assert histogram_rows
        assert all(row["metric"].startswith("rbc.") for row in histogram_rows)
        rendered = render_report(records, metric_filter="rbc.")
        assert "timelines" in rendered  # timelines are not filtered away


class TestExporters:
    def test_snapshot_rows_cover_every_metric_type(self):
        registry_ = telemetry.TelemetryRegistry()
        registry_.counter("c", protocol="rbc").inc(2)
        registry_.gauge("g").set(4)
        registry_.histogram("h").observe(1.0)
        registry_.timeline("t").mark("start", 0.5)
        rows = snapshot_rows(registry_, cell="cell-a")
        by_type = {row["type"] for row in rows}
        assert by_type == {"counter", "gauge", "histogram", "timeline"}
        assert all(row["cell"] == "cell-a" for row in rows)
        timeline_row = next(row for row in rows if row["type"] == "timeline")
        assert timeline_row["metric"] == "t.start"
        assert timeline_row["value"] == 0.5

    def test_write_json_and_csv(self, tmp_path):
        registry_ = telemetry.TelemetryRegistry()
        registry_.histogram("lat").observe(2.0)
        json_path = write_json(registry_, tmp_path / "snap.json")
        loaded = json.load(open(json_path, encoding="utf-8"))
        assert loaded["histograms"]["lat"]["count"] == 1
        csv_path = write_csv(
            snapshot_rows(registry_, cell="x"), tmp_path / "snap.csv"
        )
        lines = open(csv_path, encoding="utf-8").read().splitlines()
        assert len(lines) == 2 and lines[1].startswith("x,histogram,lat")

    def test_telemetry_cells_skips_bare_records(self):
        records = [
            {"family": "a", "spec": {"family": "a"}},
            {"family": "b", "spec": {"family": "b", "n": 3},
             "telemetry": {"counters": {"c": 1}}},
        ]
        cells = telemetry_cells(records)
        assert len(cells) == 1
        assert cells[0][0].startswith("b")
