"""Unit tests for the telemetry primitives and registry."""

import math
import timeit

import pytest

from repro.analysis.metrics import percentiles, summarize_latencies
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    TelemetryRegistry,
    Timeline,
    activate,
    current,
    metric_key,
    protocol_group,
    split_metric_key,
)


class TestPercentiles:
    def test_empty_returns_zeros(self):
        assert percentiles(()) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_single_sample(self):
        assert percentiles([7.0]) == {"p50": 7.0, "p95": 7.0, "p99": 7.0}

    def test_interpolated_median(self):
        assert percentiles([1.0, 2.0], points=(50.0,)) == {"p50": 1.5}

    def test_known_distribution(self):
        values = list(range(1, 101))  # 1..100
        result = percentiles(values)
        assert result["p50"] == pytest.approx(50.5)
        assert result["p95"] == pytest.approx(95.05)
        assert result["p99"] == pytest.approx(99.01)

    def test_order_independent(self):
        assert percentiles([3, 1, 2]) == percentiles([1, 2, 3])

    def test_custom_point_key(self):
        assert set(percentiles([1.0], points=(99.9,))) == {"p99.9"}

    def test_summarize_includes_percentiles(self):
        summary = summarize_latencies([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["p50"] == 2.0
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["ci95"] == pytest.approx(1.96 * 1.0 / math.sqrt(3))

    def test_summarize_empty_keeps_percentile_keys(self):
        summary = summarize_latencies([])
        assert summary["p50"] == 0.0 and summary["p99"] == 0.0


class TestMetricKeys:
    def test_plain_name(self):
        assert metric_key("net.messages", {}) == "net.messages"

    def test_labels_sorted(self):
        key = metric_key("m", {"b": 2, "a": 1})
        assert key == "m{a=1,b=2}"

    def test_round_trip(self):
        key = metric_key("m", {"kind": "ECHO", "protocol": "sbc:rbc"})
        name, labels = split_metric_key(key)
        assert name == "m"
        assert labels == {"kind": "ECHO", "protocol": "sbc:rbc"}

    def test_protocol_group(self):
        assert protocol_group("sbc.e0:3:rbc:5") == "sbc:rbc"
        assert protocol_group("sbc.e2:1:bin:0") == "sbc:bin"
        assert protocol_group("excl:1:rbc:4") == "excl:rbc"
        assert protocol_group("incl:1:bin:4") == "incl:bin"
        assert protocol_group("asmr:confirm:7") == "asmr:confirm"
        assert protocol_group("asmr:pofs") == "asmr:pofs"
        assert protocol_group("ping") == "ping"


class TestPrimitives:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.snapshot() == 6

    def test_gauge_tracks_min_max(self):
        gauge = Gauge()
        for value in (5, 2, 9):
            gauge.set(value)
        snapshot = gauge.snapshot()
        assert snapshot == {"value": 9, "min": 2, "max": 9, "writes": 3}

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.snapshot()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["min"] == 1.0 and summary["max"] == 100.0

    def test_empty_histogram(self):
        summary = Histogram().snapshot()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_timeline_first_and_labels(self):
        timeline = Timeline()
        timeline.mark("detected", 3.0)
        timeline.mark("detected", 1.5)
        timeline.mark("excluded", 9.0)
        assert timeline.first("detected") == 1.5
        assert timeline.first("missing") is None
        assert timeline.labels() == ["detected", "excluded"]
        assert timeline.snapshot()["first"] == {"detected": 1.5, "excluded": 9.0}


class TestRegistry:
    def test_metrics_are_memoised(self):
        registry = TelemetryRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.counter("c", a=1) is not registry.counter("c", a=2)
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.timeline("t") is registry.timeline("t")

    def test_len_counts_all_metrics(self):
        registry = TelemetryRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        registry.timeline("d")
        assert len(registry) == 4

    def test_snapshot_is_json_serialisable(self):
        import json

        registry = TelemetryRegistry()
        registry.counter("msgs", protocol="rbc").inc(3)
        registry.gauge("depth").set(17)
        registry.histogram("lat").observe(0.5)
        registry.timeline("story").mark("start", 0.0)
        snapshot = registry.snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["counters"]["msgs{protocol=rbc}"] == 3
        assert round_tripped["histograms"]["lat"]["count"] == 1
        assert round_tripped["timelines"]["story"]["first"]["start"] == 0.0

    def test_phase_timer_wall_clock(self):
        registry = TelemetryRegistry()
        with registry.phase_timer("phase"):
            pass
        summary = registry.histogram("phase").snapshot()
        assert summary["count"] == 1
        assert summary["mean"] >= 0.0

    def test_phase_timer_custom_clock(self):
        registry = TelemetryRegistry()
        ticks = iter([10.0, 12.5])
        with registry.phase_timer("sim", clock=lambda: next(ticks)):
            pass
        assert registry.histogram("sim").snapshot()["mean"] == pytest.approx(2.5)

    def test_phase_timer_observes_on_exception(self):
        registry = TelemetryRegistry()
        with pytest.raises(RuntimeError):
            with registry.phase_timer("failing"):
                raise RuntimeError("boom")
        assert registry.histogram("failing").count == 1


class TestActivation:
    def test_default_is_disabled(self):
        assert current() is None

    def test_activate_installs_and_restores(self):
        registry = TelemetryRegistry()
        with activate(registry) as active:
            assert active is registry
            assert current() is registry
        assert current() is None

    def test_nested_activation_restores_outer(self):
        outer, inner = TelemetryRegistry(), TelemetryRegistry()
        with activate(outer):
            with activate(inner):
                assert current() is inner
            assert current() is outer

    def test_activate_none_shields_block(self):
        outer = TelemetryRegistry()
        with activate(outer):
            with activate(None):
                assert current() is None
            assert current() is outer


class TestDisabledModeNoOp:
    """The zero-overhead-when-disabled contract."""

    def test_disabled_simulator_records_nothing(self):
        from repro.common.config import SimulationConfig
        from repro.network.message import Message
        from repro.network.simulator import NetworkSimulator, Process

        class Echo(Process):
            def on_message(self, message):
                if message.body["hops"] > 0:
                    self.send_to(
                        message.sender,
                        "ping",
                        "PING",
                        {"hops": message.body["hops"] - 1},
                    )

        simulator = NetworkSimulator(config=SimulationConfig(seed=1))
        assert simulator.telemetry is None
        a, b = Echo(0), Echo(1)
        simulator.add_process(a)
        simulator.add_process(b)
        assert a.telemetry is None
        simulator.submit(
            Message(sender=0, recipient=1, protocol="ping", kind="PING", body={"hops": 10})
        )
        simulator.run()
        assert simulator.messages_delivered == 11

    def test_disabled_guard_overhead_is_a_pointer_check(self):
        """The instrumented-but-disabled hot path must cost no more than a
        None comparison: benchmark the guard against a bare loop body and
        allow a generous margin so the test never flakes on CI."""
        telemetry = None
        registry = TelemetryRegistry()

        def disabled():
            if telemetry is not None:
                telemetry.counter("x").inc()

        def bare():
            pass

        def enabled():
            if registry is not None:
                registry.counter("x").inc()

        iterations = 50_000
        bare_s = min(timeit.repeat(bare, number=iterations, repeat=5))
        disabled_s = min(timeit.repeat(disabled, number=iterations, repeat=5))
        enabled_s = min(timeit.repeat(enabled, number=iterations, repeat=5))
        # The disabled guard stays within noise of an empty call; the margin
        # is deliberately loose (5x) because both sides are nanoseconds.
        assert disabled_s < bare_s * 5
        # Sanity: actually recording is the expensive side.
        assert enabled_s > disabled_s
