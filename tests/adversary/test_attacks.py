"""Unit tests for coalition plans and attack strategies."""

import pytest

from repro.adversary.attacks import (
    BinaryConsensusAttack,
    ReliableBroadcastAttack,
    attack_from_name,
)
from repro.adversary.behaviors import PassiveStrategy
from repro.adversary.coalition import CoalitionPlan
from repro.common.config import FaultConfig
from repro.common.errors import ConfigurationError
from repro.common.types import FaultKind


@pytest.fixture
def plan():
    return CoalitionPlan.from_fault_config(FaultConfig.paper_attack(9))


class TestCoalitionPlan:
    def test_paper_attack_layout(self, plan):
        assert plan.deceitful == frozenset(range(4))
        assert plan.honest == frozenset(range(4, 9))
        assert plan.num_branches >= 2
        assert plan.fault_of(0) is FaultKind.DECEITFUL
        assert plan.fault_of(8) is FaultKind.HONEST

    def test_deceitful_bridge_partitions(self, plan):
        for replica in plan.deceitful:
            assert plan.partition.partition_of(replica) is None

    def test_benign_replicas_marked(self):
        plan = CoalitionPlan.from_fault_config(FaultConfig(n=9, deceitful=4, benign=1))
        assert plan.fault_of(4) is FaultKind.BENIGN

    def test_explicit_branch_count(self):
        plan = CoalitionPlan.from_fault_config(FaultConfig.paper_attack(9), branches=2)
        assert plan.num_branches == 2


class TestBinaryConsensusAttack:
    def test_values_differ_across_partitions(self, plan):
        attack = BinaryConsensusAttack(plan)
        slot = next(iter(plan.deceitful))
        values = {p: attack.value_for(slot, p) for p in range(plan.num_branches)}
        assert len(set(values.values())) > 1

    def test_non_attacked_protocols_untouched(self, plan):
        attack = BinaryConsensusAttack(plan)
        handled = attack.rewrite_broadcast(
            replica=None,
            protocol="sbc.e0:0:rbc:1",
            kind="ECHO",
            body={},
            recipients=list(range(9)),
        )
        assert not handled

    def test_honest_slot_not_attacked(self, plan):
        attack = BinaryConsensusAttack(plan)
        handled = attack.rewrite_broadcast(
            replica=None,
            protocol="sbc.e0:0:bin:8",
            kind="AUX",
            body={"round": 0, "value": 1},
            recipients=list(range(9)),
        )
        assert not handled

    def test_requires_attacked_slots(self):
        honest_plan = CoalitionPlan.from_fault_config(FaultConfig(n=4))
        with pytest.raises(ConfigurationError):
            BinaryConsensusAttack(honest_plan)

    def test_filter_drops_decide_on_attacked_slot(self, plan):
        from repro.network.message import Message

        attack = BinaryConsensusAttack(plan)
        decide = Message(sender=5, recipient=0, protocol="sbc.e0:0:bin:1", kind="DECIDE")
        aux = Message(sender=5, recipient=0, protocol="sbc.e0:0:bin:1", kind="AUX")
        assert not attack.filter_incoming(None, decide)
        assert attack.filter_incoming(None, aux)


class TestReliableBroadcastAttack:
    def test_variant_selection(self, plan):
        attack = ReliableBroadcastAttack(plan, {0: ["variant-a", "variant-b"]})
        assert attack.variant_for(0, 0) == "variant-a"
        assert attack.variant_for(0, 1) == "variant-b"
        assert attack.variant_for(0, 2) == "variant-a"  # wraps around

    def test_requires_variants(self, plan):
        with pytest.raises(ConfigurationError):
            ReliableBroadcastAttack(plan, {})

    def test_untouched_when_slot_not_attacked(self, plan):
        attack = ReliableBroadcastAttack(plan, {0: ["a", "b"]})
        handled = attack.rewrite_broadcast(
            replica=None,
            protocol="sbc.e0:0:rbc:7",
            kind="ECHO",
            body={},
            recipients=list(range(9)),
        )
        assert not handled


class TestAttackFactory:
    def test_names(self, plan):
        assert isinstance(attack_from_name("binary", plan), BinaryConsensusAttack)
        assert isinstance(
            attack_from_name("rbbcast", plan, variants={0: ["a", "b"]}),
            ReliableBroadcastAttack,
        )

    def test_rbbcast_requires_variants(self, plan):
        with pytest.raises(ConfigurationError):
            attack_from_name("rbbcast", plan)

    def test_unknown_name(self, plan):
        with pytest.raises(ConfigurationError):
            attack_from_name("eclipse", plan)

    def test_passive_strategy_never_interferes(self):
        strategy = PassiveStrategy()
        assert not strategy.rewrite_broadcast(None, "p", "K", {}, [])
        assert strategy.filter_incoming(None, None)
