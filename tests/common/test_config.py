"""Unit tests for FaultConfig / ProtocolConfig / SimulationConfig."""

import math

import pytest

from repro.common.config import (
    FaultConfig,
    ProtocolConfig,
    SimulationConfig,
    experiment_scale,
)
from repro.common.errors import ConfigurationError
from repro.common.types import FaultKind


class TestFaultConfig:
    def test_all_honest(self):
        cfg = FaultConfig(n=10)
        assert cfg.honest == 10
        assert cfg.faulty == 0
        assert cfg.delta == 0.0
        assert cfg.consensus_safe()

    def test_classic_bound_admissible(self):
        cfg = FaultConfig(n=10, deceitful=1, benign=2)
        assert cfg.is_admissible()
        assert cfg.consensus_safe()

    def test_paper_attack_configuration(self):
        # §5: d = ceil(5n/9) - 1, q = 0.
        for n in (20, 40, 60, 90, 100):
            cfg = FaultConfig.paper_attack(n)
            assert cfg.deceitful == math.ceil(5 * n / 9) - 1
            assert cfg.benign == 0
            assert cfg.is_admissible()
            assert not cfg.consensus_safe()

    def test_extended_region_boundaries(self):
        # d < 5n/9 and 3q + d < n with n = 9: d <= 4, and with d = 4, q <= 1.
        FaultConfig(n=9, deceitful=4, benign=1)
        with pytest.raises(ConfigurationError):
            FaultConfig(n=9, deceitful=5, benign=1)
        with pytest.raises(ConfigurationError):
            FaultConfig(n=9, deceitful=4, benign=2)

    def test_enforcement_can_be_disabled(self):
        cfg = FaultConfig(n=9, deceitful=6, benign=0, enforce_model=False)
        assert not cfg.is_admissible()

    def test_counts_validation(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(n=0)
        with pytest.raises(ConfigurationError):
            FaultConfig(n=5, deceitful=-1)
        with pytest.raises(ConfigurationError):
            FaultConfig(n=5, deceitful=3, benign=3, enforce_model=False)

    def test_canonical_fault_assignment(self):
        cfg = FaultConfig(n=9, deceitful=2, benign=1)
        kinds = [cfg.fault_of(i) for i in range(9)]
        assert kinds[:2] == [FaultKind.DECEITFUL] * 2
        assert kinds[2] == FaultKind.BENIGN
        assert all(k is FaultKind.HONEST for k in kinds[3:])
        with pytest.raises(ConfigurationError):
            cfg.fault_of(9)


class TestProtocolConfig:
    def test_defaults_match_paper(self):
        cfg = ProtocolConfig()
        assert cfg.batch_size == 10_000
        assert cfg.accountability_enabled
        assert cfg.confirmation_enabled

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(pof_threshold=0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(max_pending_instances=0)


class TestSimulationConfig:
    def test_defaults(self):
        cfg = SimulationConfig()
        assert cfg.seed == 0
        assert cfg.max_time > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(max_time=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(max_events=0)


class TestExperimentScale:
    def test_default_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert experiment_scale() == "small"

    def test_full_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert experiment_scale() == "full"

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ConfigurationError):
            experiment_scale()
