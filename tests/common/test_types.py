"""Unit tests for the quorum/threshold arithmetic in repro.common.types."""

import pytest

from repro.common.types import (
    FaultKind,
    byzantine_tolerance,
    committee,
    deceitful_ratio,
    max_branches,
    quorum_size,
    recovery_threshold,
)


class TestQuorumSize:
    def test_small_committees(self):
        assert quorum_size(1) == 1
        assert quorum_size(3) == 2
        assert quorum_size(4) == 3
        assert quorum_size(6) == 4
        assert quorum_size(7) == 5

    def test_paper_sizes(self):
        # The paper runs 90-machine WAN experiments: ceil(2*90/3) = 60.
        assert quorum_size(90) == 60
        assert quorum_size(100) == 67

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            quorum_size(0)
        with pytest.raises(ValueError):
            quorum_size(-3)


class TestRecoveryThreshold:
    def test_matches_paper_default(self):
        # Alg. 1 line 12: f_d = ceil(n/3).
        assert recovery_threshold(3) == 1
        assert recovery_threshold(4) == 2
        assert recovery_threshold(90) == 30
        assert recovery_threshold(100) == 34

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            recovery_threshold(0)


class TestByzantineTolerance:
    def test_classic_bound(self):
        assert byzantine_tolerance(4) == 1
        assert byzantine_tolerance(7) == 2
        assert byzantine_tolerance(10) == 3
        assert byzantine_tolerance(100) == 33

    def test_f_strictly_below_third(self):
        for n in range(1, 200):
            f = byzantine_tolerance(n)
            assert f < n / 3
            assert f + 1 >= n / 3


class TestDeceitfulRatio:
    def test_basic(self):
        assert deceitful_ratio(0, 10) == 0.0
        assert deceitful_ratio(5, 10) == 0.5

    def test_bounds(self):
        with pytest.raises(ValueError):
            deceitful_ratio(11, 10)
        with pytest.raises(ValueError):
            deceitful_ratio(-1, 10)
        with pytest.raises(ValueError):
            deceitful_ratio(0, 0)


class TestMaxBranches:
    def test_paper_example(self):
        # Appendix B: for a deceitful ratio of 0.5 the bound gives a = 3.
        n = 18
        d = 9
        assert max_branches(n, d) == 3

    def test_no_deceitful_single_branch(self):
        assert max_branches(10, 0) == 1

    def test_five_ninths_gives_three_branches(self):
        # d = ceil(5n/9) - 1 (the configuration of §5) yields 3 branches for
        # the sizes the paper sweeps.
        import math

        for n in (18, 36, 54, 90):
            d = math.ceil(5 * n / 9) - 1
            assert max_branches(n, d) == 3

    def test_degenerate_when_coalition_reaches_quorum(self):
        # With d >= ceil(2n/3) the denominator vanishes; the cap falls back to
        # the number of honest replicas.
        assert max_branches(9, 6) == 3

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            max_branches(10, 11)
        with pytest.raises(ValueError):
            max_branches(10, 5, benign=6)


class TestCommittee:
    def test_contains_all_ids(self):
        assert committee(4) == frozenset({0, 1, 2, 3})

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            committee(0)


class TestFaultKind:
    def test_members(self):
        assert FaultKind.HONEST.value == "honest"
        assert FaultKind.DECEITFUL.value == "deceitful"
        assert FaultKind.BENIGN.value == "benign"
