"""Unit tests for the throughput model and metrics helpers."""

import pytest

from repro.analysis.metrics import RunMetrics, format_table, summarize_latencies
from repro.analysis.throughput import (
    ProtocolCostModel,
    ThroughputModel,
    available_protocols,
    protocol_model,
)
from repro.common.errors import ConfigurationError


class TestProtocolCostModel:
    def test_lookup_aliases(self):
        assert protocol_model("ZLB").name == "ZLB"
        assert protocol_model("red belly").name == "Red Belly"
        assert protocol_model("Libra").name == "HotStuff"
        with pytest.raises(ConfigurationError):
            protocol_model("bitcoin")

    def test_sbc_throughput_grows_with_n(self):
        model = ThroughputModel()
        assert model.throughput("ZLB", 90) > model.throughput("ZLB", 10)
        assert model.throughput("Red Belly", 90) > model.throughput("Red Belly", 10)

    def test_hotstuff_throughput_flat_or_declining(self):
        model = ThroughputModel()
        assert model.throughput("HotStuff", 90) <= model.throughput("HotStuff", 10)

    def test_figure3_ordering_at_90(self):
        model = ThroughputModel()
        series = {p: model.throughput(p, 90) for p in available_protocols()}
        assert series["Red Belly"] > series["ZLB"] > series["Polygraph"] > series["HotStuff"]
        assert 4.0 <= series["ZLB"] / series["HotStuff"] <= 8.0

    def test_polygraph_crossover(self):
        model = ThroughputModel()
        assert model.throughput("Polygraph", 10) > model.throughput("ZLB", 10)
        assert model.throughput("Polygraph", 90) < model.throughput("ZLB", 90)

    def test_invalid_committee_size(self):
        with pytest.raises(ConfigurationError):
            ProtocolCostModel(name="x", decides_all_proposals=True).instance_latency(
                0, 0.01
            )

    def test_figure3_series_shape(self):
        rows = ThroughputModel().figure3([10, 50, 90])
        assert set(rows) == set(available_protocols())
        assert all(len(v) == 3 for v in rows.values())


class TestMetrics:
    def test_summarize_latencies(self):
        summary = summarize_latencies([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["count"] == 3
        assert summary["ci95"] > 0

    def test_summarize_empty_and_single(self):
        assert summarize_latencies([])["count"] == 0
        single = summarize_latencies([5.0])
        assert single["std"] == 0.0 and single["ci95"] == 0.0

    def test_run_metrics_throughput(self):
        metrics = RunMetrics(n=4, simulated_time=2.0, committed_transactions=100)
        assert metrics.throughput_tx_per_sec == 50.0
        assert RunMetrics(n=4).throughput_tx_per_sec == 0.0
        assert metrics.to_row()["n"] == 4

    def test_format_table(self):
        table = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        assert "a" in table and "22" in table
        assert format_table([]) == "(no rows)"
