"""Unit tests for the zero-loss theory (Appendix B, Theorem .5)."""

import pytest

from repro.analysis.zero_loss import (
    attack_success_probability,
    branch_bound,
    deceitful_ratio_to_branches,
    expected_gain,
    expected_punishment,
    g_function,
    minimum_blockdepth,
    tolerated_attack_probability,
)
from repro.common.errors import ConfigurationError


class TestGFunction:
    def test_zero_loss_boundary(self):
        # Exactly Thm .5: g >= 0 <=> zero loss.
        assert g_function(a=3, b=0.1, rho=0.3, m=5) > 0
        assert g_function(a=3, b=0.1, rho=0.99, m=5) < 0

    def test_single_branch_always_zero_loss(self):
        for rho in (0.0, 0.5, 1.0):
            assert g_function(a=1, b=0.1, rho=rho, m=0) >= 0

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            g_function(a=0, b=0.1, rho=0.5, m=1)
        with pytest.raises(ConfigurationError):
            g_function(a=3, b=0.0, rho=0.5, m=1)
        with pytest.raises(ConfigurationError):
            g_function(a=3, b=0.1, rho=1.5, m=1)
        with pytest.raises(ConfigurationError):
            g_function(a=3, b=0.1, rho=0.5, m=-1)


class TestExpectedGainAndPunishment:
    def test_gain_grows_with_branches(self):
        assert expected_gain(3, 100, 0.5, 2) > expected_gain(2, 100, 0.5, 2)

    def test_punishment_grows_with_deposit(self):
        assert expected_punishment(200, 0.5, 2) > expected_punishment(100, 0.5, 2)

    def test_deeper_finalization_reduces_gain(self):
        assert expected_gain(3, 100, 0.5, 10) < expected_gain(3, 100, 0.5, 1)

    def test_flux_is_punishment_minus_gain(self):
        # With b = D/G the g-function times G equals the flux.
        a, b, rho, m, gain = 3, 0.5, 0.6, 4, 1_000
        flux = expected_punishment(b * gain, rho, m) - expected_gain(a, gain, rho, m)
        assert flux == pytest.approx(g_function(a, b, rho, m) * gain)


class TestMinimumBlockdepth:
    def test_paper_values_within_rounding(self):
        # Appendix B: m = 4 (rho=.55) and m = 28 (rho=.9) for delta=.5, D=G/10.
        assert abs(minimum_blockdepth(a=3, b=0.1, rho=0.55) - 4) <= 1
        assert abs(minimum_blockdepth(a=3, b=0.1, rho=0.9) - 28) <= 1

    def test_monotone_in_rho(self):
        depths = [minimum_blockdepth(3, 0.1, rho) for rho in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert depths == sorted(depths)

    def test_monotone_in_deposit(self):
        assert minimum_blockdepth(3, 1.0, 0.9) < minimum_blockdepth(3, 0.05, 0.9)

    def test_boundary_is_tight(self):
        m = minimum_blockdepth(a=3, b=0.1, rho=0.8)
        assert g_function(3, 0.1, 0.8, m) >= 0
        assert g_function(3, 0.1, 0.8, m - 1) < 0

    def test_degenerate_cases(self):
        assert minimum_blockdepth(a=1, b=0.1, rho=0.99) == 0
        assert minimum_blockdepth(a=3, b=0.1, rho=0.0) == 0
        with pytest.raises(ConfigurationError):
            minimum_blockdepth(a=3, b=0.1, rho=1.0)


class TestToleratedProbability:
    def test_consistent_with_blockdepth(self):
        rho = tolerated_attack_probability(a=3, b=0.1, m=5)
        assert g_function(3, 0.1, rho, 5) >= -1e-9
        assert g_function(3, 0.1, min(1.0, rho + 0.05), 5) < 0

    def test_single_branch(self):
        assert tolerated_attack_probability(a=1, b=0.1, m=0) == 1.0


class TestBranchBound:
    def test_paper_ratio_half_gives_three(self):
        assert branch_bound(18, 9) == 3
        assert deceitful_ratio_to_branches(0.5, n=18) == 3

    def test_no_deceitful_single_branch(self):
        assert branch_bound(10, 0) == 1

    def test_explodes_near_two_thirds(self):
        assert branch_bound(900, 594) > branch_bound(900, 540) > branch_bound(900, 450)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            branch_bound(0, 0)
        with pytest.raises(ConfigurationError):
            branch_bound(10, 11)


class TestAttackSuccessProbability:
    def test_laplace_smoothing_avoids_endpoints(self):
        assert 0 < attack_success_probability(0, 10) < 1
        assert 0 < attack_success_probability(10, 10) < 1

    def test_unsmoothed(self):
        assert attack_success_probability(5, 10, laplace_smoothing=False) == 0.5
        assert attack_success_probability(0, 0, laplace_smoothing=False) == 0.0

    def test_invalid_counts(self):
        with pytest.raises(ConfigurationError):
            attack_success_probability(5, 3)
