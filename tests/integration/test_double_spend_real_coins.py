"""Integration regression: the reliable broadcast attack spends *real* coins.

Before the execution-validated ledger pipeline, `_build_double_spend_variants`
derived the coalition's inputs from a throwaway single-allocation genesis, so
every "double spend" referenced UTXO ids that did not exist on the deployment
chain and the zero-loss accounting measured nothing.  These tests pin the fix:

* the conflicting transfers reference UTXOs present in the deployment genesis,
* both partitions' variants contest the *same* real UTXO,
* committed attack transactions execute against the honest replicas' tables,
* the realised gain is real (and covered by the seized deposits: zero loss).
"""

import pytest

from repro.common.config import FaultConfig
from repro.zlb.system import AttackSpec, ZLBSystem


@pytest.fixture(scope="module")
def rbbcast_run():
    """One reliable-broadcast-attack run at n=9, d=4, shared by the assertions."""
    fault_config = FaultConfig.paper_attack(9)
    system = ZLBSystem.create(
        fault_config,
        seed=5,
        delay="aws",
        attack=AttackSpec(kind="rbbcast", cross_partition_delay="2000ms"),
        workload_transactions=60,
        batch_size=10,
        max_time=900,
    )
    # Genesis UTXO ids, captured before the run mutates the tables (the
    # highest-id replica is a standby pool member whose table stays pristine).
    genesis_ids = {
        utxo.utxo_id
        for utxo in system.replicas[max(system.replicas)].blockchain.record.utxos
    }
    result = system.run_instances(2)
    return fault_config, system, genesis_ids, result


def _attack_variants(system):
    strategy = next(
        replica.attack_strategy
        for replica in system.replicas.values()
        if getattr(replica, "attack_strategy", None) is not None
    )
    return strategy.variants


class TestDoubleSpendSpendsRealCoins:
    def test_variant_inputs_exist_in_deployment_genesis(self, rbbcast_run):
        _, system, genesis_ids, _ = rbbcast_run
        for slot_variants in _attack_variants(system).values():
            for variant in slot_variants:
                for transaction in variant:
                    for tx_input in transaction.inputs:
                        assert tx_input.utxo_id in genesis_ids, (
                            f"attack input {tx_input.utxo_id} is not a "
                            "deployment-genesis UTXO (phantom double spend)"
                        )

    def test_conflicting_variants_contest_the_same_utxo(self, rbbcast_run):
        _, system, _, _ = rbbcast_run
        for slot, slot_variants in _attack_variants(system).items():
            input_sets = [
                frozenset(
                    tx_input.utxo_id
                    for transaction in variant
                    for tx_input in transaction.inputs
                )
                for variant in slot_variants
            ]
            assert len(slot_variants) >= 2
            assert len(set(input_sets)) == 1, (
                f"slot {slot}: partitions were given non-conflicting variants"
            )

    def test_committed_attack_transactions_reference_real_utxos(self, rbbcast_run):
        _, system, genesis_ids, result = rbbcast_run
        attack_inputs = {
            tx_input.utxo_id
            for slot_variants in _attack_variants(system).values()
            for variant in slot_variants
            for transaction in variant
            for tx_input in transaction.inputs
        }
        assert result.disagreements > 0
        committed_attack_txs = 0
        for replica in system.honest_replicas():
            record = replica.blockchain.record
            for block in record.blocks[1:] + record.merged_blocks:
                for transaction in block.transactions:
                    inputs = {i.utxo_id for i in transaction.inputs}
                    if inputs & attack_inputs:
                        committed_attack_txs += 1
                        assert inputs <= genesis_ids
        assert committed_attack_txs > 0, "no attack transaction ever committed"

    def test_no_phantom_rejections_in_attack_run(self, rbbcast_run):
        """The fixed variants execute cleanly: nothing the coalition sent is
        screened out as phantom by honest replicas."""
        _, system, _, _ = rbbcast_run
        for replica in system.honest_replicas():
            assert replica.blockchain.stats.merge_phantom_inputs == 0
            assert replica.blockchain.stats.commit_phantom == 0

    def test_realized_gain_is_real_and_covered(self, rbbcast_run):
        fault_config, system, _, result = rbbcast_run
        # The coalition genuinely double-spent: honest replicas funded the
        # conflicting inputs from the deposit, so the realised gain is the
        # double-spend amount times the number of landed conflicts.
        assert result.realized_gain > 0
        assert result.realized_gain % 1_000 == 0  # multiples of the attack amount
        # Zero loss: seizures cover the realised gain, deposit never negative.
        assert result.recovered
        assert result.seized_deposit >= result.realized_gain
        assert result.deposit_shortfall == 0
        metrics = result.to_metrics()
        assert metrics.realized_gain == result.realized_gain
        assert metrics.attacker_net_gain <= 0
        assert metrics.zero_loss

    def test_honest_replicas_agree_on_merged_wealth(self, rbbcast_run):
        """After reconciliation every honest replica that observed the fork
        accounts the same realised gain (they merged the same conflicting
        decisions).  Replicas included after recovery start fresh chains and
        are excluded from the comparison."""
        _, system, _, _ = rbbcast_run
        gains = {
            replica.blockchain.record.realized_attack_gain
            for replica in system.honest_replicas()
            if replica.blockchain.merge_outcomes
        }
        assert len(gains) == 1
        assert gains.pop() > 0
